"""Ablation — translation overhead vs memory-consistency overhead.

Paper §5.3: "address translation is a significant part of the memory
latency in the traditional L0-TLB system and … its effect is at least
comparable to the effect of memory consistency models."  This bench
quantifies the comparison on our machine: the time sequential
consistency loses to a relaxed write model (stores hidden behind a
write buffer) versus the time L0-TLB translation loses to V-COMA.
"""

from bench_common import BENCH_PARAMS, INTENSITY, report
from repro import Machine, Scheme, Simulator, make_workload
from repro.system.taps import TimingAgent

BENCHES = ("radix", "fft", "ocean")


def run_pair(name):
    out = {}
    for label, relaxed in (("SC", False), ("relaxed", True)):
        agent = TimingAgent(BENCH_PARAMS, Scheme.L0_TLB, entries=8)
        machine = Machine(
            BENCH_PARAMS,
            Scheme.L0_TLB,
            make_workload(name, intensity=INTENSITY[name]),
            agent=agent,
            relaxed_writes=relaxed,
        )
        out[label] = Simulator(machine).run()
    return out


def run_all():
    return {name: run_pair(name) for name in BENCHES}


def test_ablation_consistency_vs_translation(benchmark):
    stats = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report()
    report("Ablation: consistency-model slack vs translation overhead (L0-TLB/8)")
    report(f"{'bench':8s} {'SC time':>12s} {'relaxed':>12s} {'consistency':>12s} {'translation':>12s}")
    for name, runs in stats.items():
        sc = runs["SC"].total_time
        rel = runs["relaxed"].total_time
        consistency_slack = sc - rel
        translation = runs["SC"].aggregate_breakdown().tlb_stall // BENCH_PARAMS.nodes
        report(
            f"{name:8s} {sc:>12,} {rel:>12,} {consistency_slack:>12,} {translation:>12,}"
        )
        # Relaxing writes never slows the machine down.
        assert rel <= sc, name
        # The paper's comparability claim: translation overhead is the
        # same order of magnitude as the consistency-model effect.
        if consistency_slack > 0:
            assert translation > 0.04 * consistency_slack, name
