"""Ablation — DLB organization: fully vs set associative vs direct.

Paper Figure 7: "Accesses to the DLB are fully or set associative."
Figure 9 only plots FA vs DM; this bench fills in the middle point the
hardware designer actually cares about (4-way set associative is what a
fast DLB would be built as) and confirms the paper's conclusion that
"the large coverage makes the organization of the DLB less important".
"""

from bench_common import BENCHMARKS, BENCH_PARAMS, bench_workload, report
from repro import TapPoint
from repro.analysis import run_miss_sweep
from repro.core.tlb import Organization

SIZES = (8, 32, 128)
ORGS = (
    Organization.FULLY_ASSOCIATIVE,
    Organization.SET_ASSOCIATIVE,  # 4-way (TranslationBank.SET_ASSOC_WAYS)
    Organization.DIRECT_MAPPED,
)


def run_all():
    studies = {}
    for name in ("radix", "fmm", "ocean"):
        result = run_miss_sweep(
            BENCH_PARAMS, bench_workload(name), sizes=SIZES, orgs=ORGS
        )
        studies[name] = result.study_results()
    return studies


def test_ablation_dlb_organization(benchmark):
    studies = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report()
    report("Ablation: DLB organization (misses per node, V-COMA home tap)")
    report(f"{'bench':8s}{'size':>6s}{'FA':>12s}{'SA4':>12s}{'DM':>12s}")
    for name, study in studies.items():
        for size in SIZES:
            fa = study.misses_per_node(TapPoint.HOME, size, Organization.FULLY_ASSOCIATIVE)
            sa = study.misses_per_node(TapPoint.HOME, size, Organization.SET_ASSOCIATIVE)
            dm = study.misses_per_node(TapPoint.HOME, size, Organization.DIRECT_MAPPED)
            report(f"{name:8s}{size:>6d}{fa:>12.1f}{sa:>12.1f}{dm:>12.1f}")
            # Associativity ordering holds within noise from 32 entries
            # up; at 8 entries random replacement can lose to DM on
            # sequential sweeps (same artifact as FA-vs-DM there).
            if size >= 32:
                assert sa <= dm * 1.25, (name, size)
                assert fa <= sa * 1.25, (name, size)
    # At the largest size the three organizations converge for the DLB
    # (the paper's "organization … less important" claim).
    for name, study in studies.items():
        fa = study.misses(TapPoint.HOME, 128, Organization.FULLY_ASSOCIATIVE)
        dm = study.misses(TapPoint.HOME, 128, Organization.DIRECT_MAPPED)
        assert dm <= fa * 1.5 + 100, name
