"""Ablation — isolate the DLB's sharing/prefetching contribution.

Beyond the paper's figures: feed the same home-node translation stream
into (a) the real shared per-home DLB and (b) per-(home, requester)
private slices of the same size.  The partitioned variant has P times
the aggregate capacity, so whenever the shared structure misses *less*,
the entire difference is the sharing + prefetching effect the paper
credits for V-COMA's results.

Expected outcome (and what the paper reports qualitatively): the win is
decisive for RADIX, whose permutation writes share every output page
across all nodes, and fades toward parity for the benchmarks with
little cross-node page sharing ("all other benchmarks show similar
trends, albeit not as pronounced").  Where sharing is absent the
partitioned variant's P-fold capacity may win — that residue is the
multiplexing cost of concentrating streams at the home.
"""

from bench_common import BENCHMARKS, BENCH_PARAMS, bench_workload, report
from repro.analysis.ablation import sharing_ablation

ENTRIES = 8


def run_all():
    return {
        name: sharing_ablation(BENCH_PARAMS, bench_workload(name), entries=ENTRIES)
        for name in BENCHMARKS
    }


def test_ablation_sharing(benchmark):
    stats = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report()
    report(f"Ablation: shared vs per-requester partitioned DLB ({ENTRIES} entries)")
    report(f"{'bench':10s} {'accesses':>10s} {'shared':>10s} {'partitioned':>12s} {'sharing win':>12s}")
    wins = 0
    for name, s in stats.items():
        win = s["partitioned_misses"] / max(1, s["shared_misses"])
        report(
            f"{name:10s} {s['accesses']:>10,} {s['shared_misses']:>10,} "
            f"{s['partitioned_misses']:>12,} {win:>11.2f}x"
        )
        if s["shared_misses"] <= s["partitioned_misses"]:
            wins += 1
    report(f"shared wins or ties in {wins}/{len(stats)} benchmarks")
    # RADIX — the paper's showcase — must win decisively despite the
    # partitioned variant's P-fold aggregate capacity.
    radix = stats["radix"]
    assert radix["shared_misses"] * 1.2 < radix["partitioned_misses"]
    # Elsewhere the multiplexing cost is bounded: the shared structure
    # never misses more than twice the P-fold-capacity variant.
    for name, s in stats.items():
        assert s["shared_misses"] <= 2 * s["partitioned_misses"], name
