"""Ablation — TLB-consistency cost vs node count (paper §1 motivation).

The paper motivates moving translation to the home node partly through
the TLB consistency problem: per-node TLBs must be shot down on every
mapping/protection change, and the cost grows with the machine.  V-COMA
changes one home-side entry.  This bench sweeps the node count and
prints both costs.
"""

from bench_common import report
from repro.analysis.ablation import shootdown_scaling

NODE_COUNTS = (2, 4, 8, 16, 32)


def test_ablation_shootdown_scaling(benchmark):
    rows = benchmark.pedantic(shootdown_scaling, args=(NODE_COUNTS,), rounds=1, iterations=1)
    report()
    report("Mapping-change cost (cycles) vs node count")
    report(f"{'nodes':>6s} {'per-node TLBs':>15s} {'V-COMA':>10s}")
    for nodes, tlb_cost, vcoma_cost in rows:
        report(f"{nodes:>6d} {tlb_cost:>15,} {vcoma_cost:>10,}")

    tlb_costs = [t for _, t, _ in rows]
    vcoma_costs = [v for _, _, v in rows]
    assert tlb_costs == sorted(tlb_costs) and tlb_costs[-1] > tlb_costs[0]
    assert len(set(vcoma_costs)) == 1
    # At 32 nodes (the paper's machine) the gap is an order of magnitude.
    assert tlb_costs[-1] > 10 * vcoma_costs[-1]
