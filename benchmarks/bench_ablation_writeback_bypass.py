"""Ablation — L2-TLB writeback bypass (paper §2.2.2 / §5.2).

The paper: "it may be preferable to keep physical pointers in a virtual
SLC so that writebacks can bypass the TLB."  This bench quantifies the
suggestion with coupled timing runs of L2-TLB with and without the
bypass, for the two benchmarks the paper singles out (FFT, OCEAN) plus
the rest.
"""

from bench_common import BENCHMARKS, BENCH_PARAMS, INTENSITY, report
from repro.analysis.ablation import writeback_bypass_ablation
from repro.workloads import WORKLOADS


def run_all():
    out = {}
    for name in BENCHMARKS:
        factory = lambda name=name: WORKLOADS[name](intensity=INTENSITY[name])
        out[name] = writeback_bypass_ablation(BENCH_PARAMS, factory, entries=8)
    return out


def test_ablation_writeback_bypass(benchmark):
    stats = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report()
    report("Ablation: L2-TLB with writebacks vs writeback bypass (8 entries)")
    report(f"{'bench':10s} {'tlb stall (wb)':>15s} {'tlb stall (byp)':>16s} {'saved':>10s}")
    for name, s in stats.items():
        wb = s["with_writebacks"].aggregate_breakdown().tlb_stall
        byp = s["bypass"].aggregate_breakdown().tlb_stall
        report(f"{name:10s} {wb:>15,} {byp:>16,} {s['stall_saved']:>10,}")
        # Bypassing always removes TLB accesses...
        assert (
            s["bypass"].timing_summary()["accesses"]
            <= s["with_writebacks"].timing_summary()["accesses"]
        ), name
        # ...but the stall can move either way: writeback lookups also
        # prefetch translations for later demand accesses, so a small
        # negative saving is legitimate (bounded at 25%).
        assert s["stall_saved"] >= -0.25 * max(1, wb), name
    savers = [n for n, s in stats.items() if s["stall_saved"] > 0]
    report(f"bypass saves stall for: {savers}")
    assert len(savers) >= 3
