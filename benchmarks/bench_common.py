"""Shared configuration for the benchmark harness.

Every benchmark runs on the same scaled-down machine (8 nodes with the
paper's cache/AM geometry, 512-byte pages so data sets span thousands of
pages like the paper's do) and the six SPLASH-2-shaped workloads in the
paper's presentation order.  Sweep simulations are cached per workload
so the four miss-count artifacts (Figure 8, Figure 9, Table 2, Table 3)
share one simulation each.

Scaling note: absolute miss counts and percentages differ from the
paper's 32-node SPARC testbed; what the harness reproduces — and what
EXPERIMENTS.md records — are the orderings and effect directions.
"""

from __future__ import annotations

import functools
from typing import Dict

from repro import MachineParams, Scheme, make_workload
from repro.analysis import run_miss_sweep, run_timing
from repro.core.tlb import Organization
from repro.system.taps import StudyResults
from repro.workloads import PAPER_ORDER

#: 8 nodes, 512 KB AM / 8 KB SLC / 2 KB FLC per node, 512 B pages.
BENCH_PARAMS = MachineParams.scaled_down(factor=8, nodes=8, page_size=512)

#: TLB/DLB sizes on Figure 8's x-axis / Table 2's columns.
SWEEP_SIZES = (8, 32, 128, 512)

#: Runs execute each workload's COMPLETE stream — truncating would
#: distort the phase mix (e.g. cutting FFT during its TLB-friendly
#: local phase).  Stream lengths are instead controlled per workload:
#: these intensities give ~12-20k references per node on BENCH_PARAMS.
INTENSITY = {
    "radix": 0.45,
    "fft": 0.25,
    "fmm": 1.0,
    "ocean": 0.2,
    "raytrace": 3.0,
    "barnes": 1.0,
}

SWEEP_REFS = None
TIMING_REFS = None

BENCHMARKS = PAPER_ORDER

#: Rendered artifacts collected during the run; the benchmarks'
#: conftest prints them in the terminal summary (immune to pytest's
#: capture), so `pytest benchmarks/ --benchmark-only` always shows the
#: regenerated tables and figures.
REPORTS: list = []


def report(*lines: str) -> None:
    """Queue artifact text for the end-of-run report (also printed
    inline when pytest runs with -s)."""
    text = "\n".join(str(line) for line in lines)
    REPORTS.append(text)
    print(text)


def bench_workload(name: str, **overrides):
    """A paper benchmark instance sized for the bench machine."""
    overrides.setdefault("intensity", INTENSITY[name])
    return make_workload(name, **overrides)


@functools.lru_cache(maxsize=None)
def sweep_study(name: str) -> StudyResults:
    """Run (once) the full-taps sweep for one benchmark."""
    result = run_miss_sweep(
        BENCH_PARAMS,
        bench_workload(name),
        sizes=SWEEP_SIZES,
        orgs=(Organization.FULLY_ASSOCIATIVE, Organization.DIRECT_MAPPED),
        max_refs_per_node=SWEEP_REFS,
    )
    return result.study_results()


def all_studies() -> Dict[str, StudyResults]:
    return {name: sweep_study(name) for name in BENCHMARKS}


@functools.lru_cache(maxsize=None)
def timing_run(name: str, scheme_value: str, entries: int, org_value: str):
    """Run (once) a coupled timing simulation."""
    scheme = Scheme(scheme_value)
    org = Organization(org_value)
    return run_timing(
        BENCH_PARAMS,
        scheme,
        bench_workload(name),
        entries,
        organization=org,
        max_refs_per_node=TIMING_REFS,
    )
