"""Shared configuration for the benchmark harness.

Every benchmark runs on the same scaled-down machine (8 nodes with the
paper's cache/AM geometry, 512-byte pages so data sets span thousands of
pages like the paper's do) and the six SPLASH-2-shaped workloads in the
paper's presentation order.  Simulations execute through the batch
runner (:mod:`repro.runner`): results are memoized in-process *and* in
the persistent on-disk result cache, so the four miss-count artifacts
(Figure 8, Figure 9, Table 2, Table 3) share one simulation each and a
re-run of the harness reuses every simulation from the previous one.

Environment knobs:

* ``REPRO_BENCH_JOBS`` — worker processes used when :func:`all_studies`
  has to simulate several cold sweeps; default 1 (serial).  Clamped to
  the CPU count by the runner.
* ``REPRO_CACHE_DIR`` — relocate the persistent cache (honoured by
  :func:`repro.runner.default_cache_dir`; the tap-trace store lives
  under it).
* ``REPRO_NO_CACHE`` — set non-empty to disable the persistent cache
  and trace store (in-process memoization still applies).
* ``REPRO_NO_REPLAY`` — set non-empty to force sweeps down the coupled
  scalar reference path instead of record/replay (bit-identical,
  slower; used to cross-check the pipeline).
* ``REPRO_NO_NUMPY`` — honoured by :mod:`repro.core.replay`: forces the
  pure-Python replay kernels even when numpy is importable.
* ``REPRO_BENCH_RETRIES`` — retry budget for transient job failures
  (I/O errors, corrupt traces, worker death, timeouts); default 2, so
  an unattended harness run survives a flaky filesystem.
* ``REPRO_BENCH_TIMEOUT`` — per-job wall-clock limit in seconds
  (default: none); a hung simulation is killed, retried, and — if it
  keeps hanging — reported instead of wedging the harness.
* ``REPRO_HISTORY_DIR`` — run-history store directory (default: the
  shared cache root).  ``bench_throughput.py`` appends one
  :class:`~repro.obs.history.HistoryEntry` per run there when asked
  (``--history-dir`` or this variable), feeding the ``repro history``
  regression detector; see ``docs/observability.md``.

Scaling note: absolute miss counts and percentages differ from the
paper's 32-node SPARC testbed; what the harness reproduces — and what
EXPERIMENTS.md records — are the orderings and effect directions.
"""

from __future__ import annotations

import functools
import os
from typing import Dict

from repro import MachineParams, Scheme, make_workload
from repro.core.tlb import Organization
from repro.runner import BatchRunner, JobSpec, ResultCache, TraceStore
from repro.system.taps import StudyResults
from repro.workloads import PAPER_ORDER

#: 8 nodes, 512 KB AM / 8 KB SLC / 2 KB FLC per node, 512 B pages.
BENCH_PARAMS = MachineParams.scaled_down(factor=8, nodes=8, page_size=512)

#: TLB/DLB sizes on Figure 8's x-axis / Table 2's columns.
SWEEP_SIZES = (8, 32, 128, 512)

#: Organizations swept for Figures 8/9.
SWEEP_ORGS = (Organization.FULLY_ASSOCIATIVE, Organization.DIRECT_MAPPED)

#: Runs execute each workload's COMPLETE stream — truncating would
#: distort the phase mix (e.g. cutting FFT during its TLB-friendly
#: local phase).  Stream lengths are instead controlled per workload:
#: these intensities give ~12-20k references per node on BENCH_PARAMS.
INTENSITY = {
    "radix": 0.45,
    "fft": 0.25,
    "fmm": 1.0,
    "ocean": 0.2,
    "raytrace": 3.0,
    "barnes": 1.0,
}

SWEEP_REFS = None
TIMING_REFS = None

BENCHMARKS = PAPER_ORDER

#: Rendered artifacts collected during the run; the benchmarks'
#: conftest prints them in the terminal summary (immune to pytest's
#: capture), so `pytest benchmarks/ --benchmark-only` always shows the
#: regenerated tables and figures.
REPORTS: list = []


def report(*lines: str) -> None:
    """Queue artifact text for the end-of-run report (also printed
    inline when pytest runs with -s)."""
    text = "\n".join(str(line) for line in lines)
    REPORTS.append(text)
    print(text)


def bench_workload(name: str, **overrides):
    """A paper benchmark instance sized for the bench machine."""
    overrides.setdefault("intensity", INTENSITY[name])
    return make_workload(name, **overrides)


@functools.lru_cache(maxsize=None)
def bench_runner() -> BatchRunner:
    """The harness's shared runner: persistent cache + trace store +
    optional workers."""
    no_cache = bool(os.environ.get("REPRO_NO_CACHE"))
    cache = None if no_cache else ResultCache()
    trace_store = None if no_cache else TraceStore()
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    timeout = os.environ.get("REPRO_BENCH_TIMEOUT")
    return BatchRunner(
        jobs=jobs,
        cache=cache,
        trace_store=trace_store,
        replay=not os.environ.get("REPRO_NO_REPLAY"),
        retries=int(os.environ.get("REPRO_BENCH_RETRIES", "2")),
        timeout=float(timeout) if timeout else None,
    )


def bench_history(root: str = None):
    """The run-history store the harness appends measured runs to.

    ``root`` (or ``REPRO_HISTORY_DIR``) overrides the location; the
    default is the shared cache root, so local bench runs and CI runs
    against a checked-out ``.history`` directory use the same code
    path.
    """
    from repro.obs.history import RunHistory

    return RunHistory(root or os.environ.get("REPRO_HISTORY_DIR") or None)


def record_bench_history(payload: dict, root: str = None):
    """Append one throughput-bench payload to the run history.

    Returns the recorded :class:`~repro.obs.history.HistoryEntry`; its
    config key hashes the bench machine shape and the smoke flag, so
    smoke and full runs keep separate trajectories.
    """
    from repro.obs.history import entry_from_bench

    return bench_history(root).append(entry_from_bench(payload))


def _sweep_spec(name: str) -> JobSpec:
    return JobSpec.sweep(
        BENCH_PARAMS,
        name,
        sizes=SWEEP_SIZES,
        orgs=SWEEP_ORGS,
        max_refs_per_node=SWEEP_REFS,
        overrides={"intensity": INTENSITY[name]},
        label=name,
    )


#: In-process memo for sweep studies; :func:`all_studies` fills it in
#: one batched runner call so cold entries shard across workers.
_STUDIES: Dict[str, StudyResults] = {}


def sweep_study(name: str) -> StudyResults:
    """The full-taps sweep for one benchmark.

    Simulated at most once — in this process via the memo, across
    processes via the persistent cache."""
    if name not in _STUDIES:
        (job,) = bench_runner().run([_sweep_spec(name)])
        _STUDIES[name] = job.summary.study_results()
    return _STUDIES[name]


def all_studies() -> Dict[str, StudyResults]:
    """Every benchmark's sweep, batched through one runner call."""
    missing = [name for name in BENCHMARKS if name not in _STUDIES]
    if missing:
        jobs = bench_runner().run([_sweep_spec(name) for name in missing])
        for name, job in zip(missing, jobs):
            _STUDIES[name] = job.summary.study_results()
    return {name: _STUDIES[name] for name in BENCHMARKS}


@functools.lru_cache(maxsize=None)
def timing_run(name: str, scheme_value: str, entries: int, org_value: str):
    """A coupled timing simulation, memoized in-process and on disk.

    Returns a :class:`~repro.runner.summary.RunSummary`, which exposes
    the same read surface as :class:`~repro.system.results.RunResult`.
    """
    spec = JobSpec.timing(
        BENCH_PARAMS,
        Scheme(scheme_value),
        name,
        entries,
        organization=Organization(org_value),
        max_refs_per_node=TIMING_REFS,
        overrides={"intensity": INTENSITY[name]},
    )
    (job,) = bench_runner().run([spec])
    return job.summary
