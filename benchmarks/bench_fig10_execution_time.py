"""Figure 10 — execution-time breakdown.

For every benchmark: TLB/8 (physical COMA baseline), TLB/8/DM, DLB/8
(V-COMA), DLB/8/DM bars split into busy / local stall / remote stall /
translation / sync, normalized to the TLB/8 baseline; for RAYTRACE the
extra DLB/8/V2 bar with the page-aligned padding (the paper's virtual-
layout optimization).
"""

import pytest

from bench_common import report, BENCHMARKS, BENCH_PARAMS, TIMING_REFS, bench_workload
from repro import Organization, Scheme
from repro.analysis import render_breakdown_bars, run_timing
from repro.workloads import RaytraceWorkload

CONFIGS = (
    ("TLB/8", Scheme.L0_TLB, Organization.FULLY_ASSOCIATIVE),
    ("TLB/8/DM", Scheme.L0_TLB, Organization.DIRECT_MAPPED),
    ("DLB/8", Scheme.V_COMA, Organization.FULLY_ASSOCIATIVE),
    ("DLB/8/DM", Scheme.V_COMA, Organization.DIRECT_MAPPED),
)


def run_bars(name):
    # RAYTRACE's padding pathology is bandwidth-borne (injection
    # storms), so its bars run with port contention enabled; the other
    # benchmarks use the paper's latency-only model.
    contention = name == "raytrace"
    bars = {}
    for label, scheme, org in CONFIGS:
        result = run_timing(
            BENCH_PARAMS,
            scheme,
            bench_workload(name),
            8,
            organization=org,
            max_refs_per_node=TIMING_REFS,
            contention=contention,
        )
        bars[label] = result.average_breakdown()
    if name == "raytrace":
        from bench_common import INTENSITY

        result = run_timing(
            BENCH_PARAMS,
            Scheme.V_COMA,
            RaytraceWorkload.v2(intensity=INTENSITY["raytrace"]),
            8,
            max_refs_per_node=TIMING_REFS,
            contention=True,
        )
        bars["DLB/8/V2"] = result.average_breakdown()
    return bars


@pytest.mark.parametrize("name", BENCHMARKS)
def test_fig10_breakdown(benchmark, name):
    bars = benchmark.pedantic(run_bars, args=(name,), rounds=1, iterations=1)
    report()
    report(render_breakdown_bars(name, bars, baseline_label="TLB/8"))

    # Translation stall is negligible in V-COMA and visible in L0-TLB.
    assert bars["DLB/8"].tlb_stall < bars["TLB/8"].tlb_stall
    # The DM gap is much smaller for the DLB than for the L0 TLB.
    tlb_dm_extra = bars["TLB/8/DM"].tlb_stall - bars["TLB/8"].tlb_stall
    dlb_dm_extra = bars["DLB/8/DM"].tlb_stall - bars["DLB/8"].tlb_stall
    assert dlb_dm_extra <= max(tlb_dm_extra, 0) + 0.1 * bars["TLB/8"].total

    if name == "raytrace":
        # The paper's virtual-layout fix: V2 beats the pathological V1.
        assert bars["DLB/8/V2"].total < bars["DLB/8"].total
