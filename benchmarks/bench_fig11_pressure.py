"""Figure 11 — memory-pressure profile across global page sets.

The profile is fixed by the preloaded page placement, so this bench
builds machines (no reference simulation) and renders pressure per
global page set for every benchmark, checking the paper's observation:
"without even trying we observe a very uniform pressure on every global
set" — except for RAYTRACE's pathological padding, which the V2 layout
fixes.
"""

import pytest

from bench_common import report, BENCHMARKS, BENCH_PARAMS, bench_workload
from repro.analysis import pressure_profile, render_pressure_profile
from repro.workloads import RaytraceWorkload


@pytest.mark.parametrize("name", BENCHMARKS)
def test_fig11_pressure_profile(benchmark, name):
    profile = benchmark.pedantic(
        pressure_profile, args=(BENCH_PARAMS, bench_workload(name)), rounds=1, iterations=1
    )
    report()
    report(render_pressure_profile(name, profile))
    mean = sum(profile) / len(profile)
    assert mean > 0
    if name != "raytrace":
        # Near-uniform without any placement effort (paper Figure 11).
        assert max(profile) <= mean * 1.7
        assert min(profile) >= mean * 0.3


def test_fig11_raytrace_v1_vs_v2(benchmark):
    def profiles():
        return (
            pressure_profile(BENCH_PARAMS, RaytraceWorkload()),
            pressure_profile(BENCH_PARAMS, RaytraceWorkload.v2()),
        )

    v1, v2 = benchmark.pedantic(profiles, rounds=1, iterations=1)
    report()
    report(render_pressure_profile("raytrace V1 (way-aligned padding)", v1))
    report(render_pressure_profile("raytrace V2 (page-aligned padding)", v2))
    imbalance = lambda prof: max(prof) / (sum(prof) / len(prof))
    report(f"imbalance: V1 {imbalance(v1):.2f}  V2 {imbalance(v2):.2f}")
    assert imbalance(v1) > imbalance(v2)
