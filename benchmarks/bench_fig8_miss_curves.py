"""Figure 8 — address-translation misses per node vs TLB/DLB size.

Regenerates, for each of the six benchmarks, the six lines of the
paper's Figure 8 (L0/L1/L2/L2-no_wback/L3/V-COMA) over the size axis
8..512, and checks the headline shapes: filtering down the hierarchy and
V-COMA at the bottom.
"""

import pytest

from bench_common import report, BENCHMARKS, all_studies, sweep_study
from repro import TapPoint
from repro.analysis import render_miss_curves


@pytest.mark.parametrize("name", BENCHMARKS)
def test_fig8_curves(benchmark, name):
    study = benchmark.pedantic(sweep_study, args=(name,), rounds=1, iterations=1)
    report()
    report(render_miss_curves(name, study))
    # Shape: deeper translation points see fewer misses.
    for size in (8, 32, 128):
        assert study.misses(TapPoint.L3, size) <= study.misses(
            TapPoint.L2_NO_WBACK, size
        )


def test_fig8_vcoma_wins_overall(benchmark):
    studies = benchmark.pedantic(all_studies, rounds=1, iterations=1)
    wins = 0
    cells = 0
    for name, study in studies.items():
        for size in (32, 128, 512):
            cells += 1
            if study.misses(TapPoint.HOME, size) <= study.misses(TapPoint.L3, size):
                wins += 1
    report(f"\nV-COMA <= L3-TLB in {wins}/{cells} (benchmark, size>=32) cells")
    assert wins >= cells * 0.8
