"""Figure 9 — direct-mapped vs fully-associative TLB/DLB.

Renders both organizations' miss curves for every benchmark and checks
the paper's observation: the DM-FA gap is large for L0-TLB (making
L0-TLB/DM impractical) and becomes small in the deep schemes, smallest
in V-COMA, whose growing shared coverage makes the DLB's organization
unimportant.
"""

import pytest

from bench_common import report, BENCHMARKS, all_studies, sweep_study
from repro import Organization, TapPoint
from repro.analysis import render_dm_vs_fa


def relative_gap(study, tap, size):
    fa = study.misses(tap, size, Organization.FULLY_ASSOCIATIVE)
    dm = study.misses(tap, size, Organization.DIRECT_MAPPED)
    return (dm - fa) / max(1, fa)


@pytest.mark.parametrize("name", BENCHMARKS)
def test_fig9_dm_vs_fa(benchmark, name):
    study = benchmark.pedantic(sweep_study, args=(name,), rounds=1, iterations=1)
    report()
    report(render_dm_vs_fa(name, study))
    # DM is never dramatically better than FA at the same size (random
    # replacement can lose to DM on cyclic sequential page streams, so
    # a modest negative gap is legitimate).
    for tap in (TapPoint.L0, TapPoint.L3, TapPoint.HOME):
        for size in (32, 128):
            assert relative_gap(study, tap, size) >= -0.35


def test_fig9_gap_shrinks_toward_vcoma(benchmark):
    """The paper's claim is about the absolute curves converging: the
    shared DLB's coverage grows with P*size, so by the largest size the
    DM and FA DLBs miss (almost) identically, while the L0 TLB still
    shows a real organization gap.  Measured in percentage points of
    all processor references."""
    studies = benchmark.pedantic(all_studies, rounds=1, iterations=1)

    def ppt_gap(study, tap, size):
        fa = study.misses(tap, size, Organization.FULLY_ASSOCIATIVE)
        dm = study.misses(tap, size, Organization.DIRECT_MAPPED)
        return (dm - fa) / study.total_references * 100

    report()
    report("DM-FA gap at 512 entries, in % of all references:")
    shrinks = 0
    for name, study in studies.items():
        size = max(study.sizes)
        l0_gap = ppt_gap(study, TapPoint.L0, size)
        home_gap = ppt_gap(study, TapPoint.HOME, size)
        report(f"  {name:10s}  L0 {l0_gap:7.3f}   V-COMA {home_gap:7.3f}")
        if home_gap <= l0_gap + 0.2:
            shrinks += 1
    assert shrinks >= len(studies) - 1
