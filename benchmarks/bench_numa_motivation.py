"""The paper's motivating CC-NUMA comparison (Section 2 / Figure 1).

Why does the paper move from CC-NUMA to COMA before placing translation
at the memory?  Because in a CC-NUMA, "the sharing of TLBs is not
efficient because of the lack of data migration and replication …
capacity misses are remote most of the time".  This bench runs the same
workloads on both machines, everything else equal:

* remote-vs-local stall split — the attraction memory localizes the
  capacity misses a CC-NUMA keeps paying the network for;
* SHARED-TLB translation misses — the stream reaching a NUMA home is
  *every* cache miss, while V-COMA's home only sees attraction-memory
  misses, so the same shared structure works far less in V-COMA.
"""

from bench_common import BENCHMARKS, BENCH_PARAMS, bench_workload, report
from repro import Scheme, Simulator, TapPoint
from repro.numa import NumaMachine, SHARED_TLB
from repro.system.machine import Machine
from repro.system.taps import StudyAgent


from repro.core.tlb import Organization


def run_pair(name):
    out = {}
    for label, cls in (("numa", NumaMachine), ("coma", Machine)):
        agent = StudyAgent(
            BENCH_PARAMS, sizes=(8, 32), orgs=(Organization.FULLY_ASSOCIATIVE,)
        )
        machine = cls(BENCH_PARAMS, Scheme.V_COMA, bench_workload(name), agent=agent)
        result = Simulator(machine).run()
        out[label] = result
    return out


#: Capacity/locality-dominated workloads, where migration+replication
#: pays off; RADIX is coherence-dominated (write-once permutation) and
#: the classic NUMA-vs-COMA literature has NUMA winning there.
CAPACITY_BENCHES = ("fft", "ocean")


def run_all():
    return {name: run_pair(name) for name in ("radix",) + CAPACITY_BENCHES}


def test_numa_motivation(benchmark):
    stats = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report()
    report("CC-NUMA (SHARED-TLB) vs V-COMA, same workloads and constants")
    report(
        f"{'bench':8s} {'numa rem':>12s} {'coma rem':>12s} "
        f"{'numa time':>12s} {'coma time':>12s} {'home misses n/c':>16s}"
    )
    for name, runs in stats.items():
        numa_b = runs["numa"].aggregate_breakdown()
        coma_b = runs["coma"].aggregate_breakdown()
        numa_home = runs["numa"].study_results().misses(TapPoint.HOME, 8)
        coma_home = runs["coma"].study_results().misses(TapPoint.HOME, 8)
        report(
            f"{name:8s} {numa_b.rem_stall:>12,} {coma_b.rem_stall:>12,} "
            f"{runs['numa'].total_time:>12,} {runs['coma'].total_time:>12,} "
            f"{numa_home:>7,}/{coma_home:<8,}"
        )
        if name in CAPACITY_BENCHES:
            # Migration/replication localizes the capacity misses that
            # the CC-NUMA keeps paying the network for (paper §2).
            assert coma_b.rem_stall < numa_b.rem_stall, name
            assert runs["coma"].total_time < runs["numa"].total_time, name
        # The home of a CC-NUMA serves every cache miss; the COMA home
        # only attraction-memory misses (the AM filters the stream).
        numa_accesses = runs["numa"].study_results().accesses(TapPoint.HOME)
        coma_accesses = runs["coma"].study_results().accesses(TapPoint.HOME)
        assert coma_accesses < numa_accesses, name
