"""Scalability — "V-COMA scales well and works better in systems with
large number of processors" (paper abstract / §6).

Two scaling facts are measured as the node count grows (with per-node
memory fixed, so the machine and its data set grow together):

* the shared DLB's effective capacity grows P-fold while each node's
  TLB stays fixed — the DLB miss *rate* falls with P while the L0 TLB
  rate does not;
* a mapping change costs per-node-TLB schemes a machine-wide shootdown
  that grows linearly with P, and V-COMA a constant home-side update
  (see bench_ablation_shootdown.py for the cost table).
"""

from bench_common import report
from repro import MachineParams, TapPoint, make_workload
from repro.analysis import run_miss_sweep

NODE_COUNTS = (2, 4, 8, 16)
ENTRIES = 8


def run_scaling():
    rows = []
    for nodes in NODE_COUNTS:
        params = MachineParams.scaled_down(factor=8, nodes=nodes, page_size=512)
        result = run_miss_sweep(
            params,
            make_workload("radix", intensity=0.45),
            sizes=(ENTRIES,),
        )
        study = result.study_results()
        rows.append(
            (
                nodes,
                study.miss_rate(TapPoint.L0, ENTRIES),
                study.miss_rate(TapPoint.HOME, ENTRIES),
            )
        )
    return rows


def test_scaling_dlb_improves_with_nodes(benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    report()
    report(f"RADIX miss rate per reference vs node count ({ENTRIES}-entry structures)")
    report(f"{'nodes':>6s} {'L0-TLB':>10s} {'V-COMA DLB':>12s} {'ratio':>8s}")
    for nodes, l0, dlb in rows:
        ratio = l0 / max(1e-9, dlb)
        report(f"{nodes:>6d} {l0 * 100:>9.2f}% {dlb * 100:>11.2f}% {ratio:>7.1f}x")

    # The DLB's advantage over L0 grows with the machine.
    ratios = [l0 / max(1e-9, dlb) for _, l0, dlb in rows]
    assert ratios[-1] > ratios[0]
    # Both rates rise with P (the data set grows with the machine and
    # coherence traffic per reference with it), but the DLB's rate must
    # grow strictly slower than the per-node TLB's.
    l0_growth = rows[-1][1] / max(1e-9, rows[0][1])
    dlb_growth = rows[-1][2] / max(1e-9, rows[0][2])
    assert dlb_growth < l0_growth
