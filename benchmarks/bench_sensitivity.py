"""Seed sensitivity — the reproduction's shapes are not one lucky draw.

Random replacement, injection-target choice, and the workload generators
all draw from seeded streams.  This bench re-checks the core shape
claims under different seeds on a 4-node machine; the contract is that
the claims hold for (almost) every seed, not just the default 1998.
"""

from bench_common import report
from repro import MachineParams
from repro.analysis import validate_reproduction

SEEDS = (1998, 7, 424242)
CORE_CLAIMS = ("filtering", "overhead", "pressure", "padding-pressure")


def run_all():
    results = {}
    for seed in SEEDS:
        params = MachineParams.scaled_down(factor=32, nodes=4, page_size=256).replace(
            seed=seed
        )
        results[seed] = validate_reproduction(params, quick=True)
    return results


def test_sensitivity_across_seeds(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report()
    report("Shape-claim scorecard vs seed (4 nodes)")
    for seed, rep in results.items():
        marks = " ".join(
            f"{c.name}:{'ok' if c.passed else 'FAIL'}" for c in rep.claims
        )
        report(f"  seed {seed:>7}: {rep.score}  {marks}")

    # The scale-robust core claims must hold for every seed.
    for seed, rep in results.items():
        by_name = {c.name: c for c in rep.claims}
        for claim in CORE_CLAIMS:
            assert by_name[claim].passed, (seed, claim, by_name[claim].detail)
    # And overall, the large majority of all (seed, claim) cells pass.
    cells = [(s, c) for s, r in results.items() for c in r.claims]
    good = sum(1 for s, c in cells if c.passed)
    report(f"  total: {good}/{len(cells)} (seed, claim) cells hold")
    assert good >= len(cells) * 0.75
