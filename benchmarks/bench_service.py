"""Service-tier load test: concurrent clients, coalescing, remote workers.

Run as a script (it is not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke] [--out PATH]

Three measurements against one live in-process server (real sockets on
an ephemeral loopback port), written to ``BENCH_service.json`` at the
repo root:

* **warm load** — ``--clients`` (default 1200; ``--smoke`` drops to
  120) concurrent asyncio clients, released simultaneously, each
  opening its own connection, POSTing a grid whose specs are already
  in the result cache and GETting the results.  Records POST and
  whole-session latency percentiles, aggregate requests/sec, and
  ``warm_hit_rate`` — the fraction of POSTs answered ``state=done``
  synchronously (gated at ``REPRO_BENCH_SERVICE_MIN_HIT``, default
  0.95).  p99 POST latency is gated at ``REPRO_BENCH_SERVICE_P99``
  milliseconds widened by ``REPRO_BENCH_SERVICE_TOL``.
* **dedupe proof** — the server is given a deterministic pre-execution
  delay, then K clients POST the *same cold spec* at once.  Asserted
  exactly: one run id, ``repro_coalesced_requests_total`` grew by
  K - 1, ``repro_service_simulations_total`` grew by 1, and the run's
  manifest holds exactly one ``ok`` line.  ``coalesced_rate`` is the
  follower fraction (K - 1) / K.
* **remote workers** — two loopback ``repro worker`` subprocesses dial
  the hub; a cold grid must report ``effective_jobs == 2`` (the pool
  path skips the cpu-count clamp, so jobs > 1 is real even on a 1-CPU
  host) with every worker landing jobs.  ``speedup_vs_serial``
  compares against a direct serial :class:`BatchRunner` of the same
  specs — recorded honestly; on a single CPU the workers timeshare,
  so the row demonstrates dispatch across real processes rather than
  a wall-clock win.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import repro
from repro import MachineParams, Scheme, __version__
from repro.obs.runtime import counter_value
from repro.runner import BatchRunner, JobSpec
from repro.service import ServiceClient, ServiceThread, SimulationService, WorkerHub

#: Tiny 2-node machine: the load test measures the service, not the
#: simulator, so each spec must be cheap enough to warm in seconds.
PARAMS = MachineParams.scaled_down(factor=256, nodes=2, page_size=256)

WORKLOADS = ("fft", "radix", "ocean", "fmm")
#: Share of load-phase clients that hammer the single hottest grid.
HOT_EVERY = 4


def warm_grids():
    """Eight single-spec grids the load phase requests over and over."""
    return [
        [JobSpec.timing(PARAMS, Scheme.V_COMA, name, entries,
                        max_refs_per_node=300,
                        overrides={"intensity": 0.2})]
        for name in WORKLOADS
        for entries in (8, 32)
    ]


def cold_spec(intensity: float, name: str = "radix", entries: int = 16):
    """A spec guaranteed absent from the cache (unique intensity)."""
    return JobSpec.timing(PARAMS, Scheme.V_COMA, name, entries,
                          max_refs_per_node=300,
                          overrides={"intensity": intensity})


def percentile(values, fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def raise_fd_limit(needed: int) -> int:
    """Lift RLIMIT_NOFILE toward the hard cap; returns the soft limit."""
    try:
        import resource
    except ImportError:  # non-POSIX: run with whatever the OS gives
        return needed
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    target = needed if hard == resource.RLIM_INFINITY else min(hard, needed)
    if target > soft:
        with contextlib.suppress(ValueError, OSError):
            resource.setrlimit(resource.RLIMIT_NOFILE, (target, hard))
        soft = resource.getrlimit(resource.RLIMIT_NOFILE)[0]
    return soft


# ----------------------------------------------------------------------
# minimal asyncio HTTP client (connection volume is the point here)
# ----------------------------------------------------------------------
async def _read_response(reader):
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed mid-response")
    status = int(status_line.split()[1])
    length, ctype = 0, ""
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        key = name.strip().lower()
        if key == "content-length":
            length = int(value.strip())
        elif key == "content-type":
            ctype = value.strip()
    body = await reader.readexactly(length) if length else b""
    data = json.loads(body) if "json" in ctype and body else body
    return status, data


async def _connect(host, port, attempts: int = 60):
    """Open a connection, retrying while the accept backlog overflows."""
    for attempt in range(attempts):
        try:
            return await asyncio.open_connection(host, port)
        except (ConnectionRefusedError, OSError):
            if attempt == attempts - 1:
                raise
            await asyncio.sleep(0.05 * (attempt + 1))


async def _session(host, port, requests, start_gate):
    """One client: wait for the gate, connect, run requests in order.

    Returns (session_seconds, [(latency_seconds, status, data), ...]).
    """
    await start_gate.wait()
    began = time.perf_counter()
    reader, writer = await _connect(host, port)
    replies = []
    try:
        for method, path, payload in requests:
            body = json.dumps(payload).encode() if payload is not None else b""
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode("ascii")
            sent = time.perf_counter()
            writer.write(head + body)
            await writer.drain()
            status, data = await _read_response(reader)
            replies.append((time.perf_counter() - sent, status, data))
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()
    return time.perf_counter() - began, replies


# ----------------------------------------------------------------------
# phases
# ----------------------------------------------------------------------
def phase_warm_up(client: ServiceClient, grids) -> float:
    began = time.perf_counter()
    for grid in grids:
        payload = client.run(grid, timeout=300)
        assert payload["state"] == "done", payload
    return time.perf_counter() - began


async def _load(host, port, grids, clients):
    gate = asyncio.Event()
    bodies = [{"specs": [spec.key() for spec in grid]} for grid in grids]

    # The GET path depends on the POST answer (results_url), so the
    # session is written out by hand rather than through _session.
    async def one_full(i):
        await gate.wait()
        began = time.perf_counter()
        reader, writer = await _connect(host, port)
        try:
            body = bodies[0] if i % HOT_EVERY else bodies[(i // HOT_EVERY) % len(bodies)]
            encoded = json.dumps(body).encode()
            head = (
                f"POST /runs HTTP/1.1\r\nHost: {host}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(encoded)}\r\n\r\n"
            ).encode("ascii")
            sent = time.perf_counter()
            writer.write(head + encoded)
            await writer.drain()
            status, info = await _read_response(reader)
            post_s = time.perf_counter() - sent
            assert status in (200, 202), (status, info)
            get = (
                f"GET {info['results_url']} HTTP/1.1\r\nHost: {host}\r\n"
                f"Content-Length: 0\r\n\r\n"
            ).encode("ascii")
            writer.write(get)
            await writer.drain()
            got, results = await _read_response(reader)
            assert got in (200, 202), (got, results)
            return {
                "post_s": post_s,
                "session_s": time.perf_counter() - began,
                "hit": info.get("state") == "done" and got == 200,
            }
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    tasks = [asyncio.ensure_future(one_full(i)) for i in range(clients)]
    await asyncio.sleep(0)  # let every task reach the gate
    began = time.perf_counter()
    gate.set()
    outcomes = await asyncio.gather(*tasks)
    wall = time.perf_counter() - began
    return wall, outcomes


def phase_load(service, host, port, grids, clients):
    service.submissions.clear()  # force the ResultCache rung, not replay
    cache_before = counter_value("repro_service_spec_results_total",
                                 source="cache")
    sims_before = counter_value("repro_service_simulations_total")
    wall, outcomes = asyncio.run(_load(host, port, grids, clients))
    post = [o["post_s"] * 1000.0 for o in outcomes]
    session = [o["session_s"] * 1000.0 for o in outcomes]
    hits = sum(1 for o in outcomes if o["hit"])
    return {
        "clients": clients,
        "requests": 2 * clients,
        "wall_seconds": wall,
        "requests_per_sec": (2 * clients) / wall,
        "post_latency_ms": {
            "p50": percentile(post, 0.50),
            "p99": percentile(post, 0.99),
            "max": max(post),
        },
        "session_latency_ms": {
            "p50": percentile(session, 0.50),
            "p99": percentile(session, 0.99),
            "max": max(session),
        },
        "warm_hit_rate": hits / clients,
        "cache_spec_hits": counter_value(
            "repro_service_spec_results_total", source="cache") - cache_before,
        "new_simulations": counter_value(
            "repro_service_simulations_total") - sims_before,
    }


async def _dedupe_storm(host, port, spec, clients):
    gate = asyncio.Event()
    body = {"specs": [spec.key()]}
    tasks = [
        asyncio.ensure_future(
            _session(host, port, [("POST", "/runs", body)], gate))
        for _ in range(clients)
    ]
    await asyncio.sleep(0)
    gate.set()
    outcomes = await asyncio.gather(*tasks)
    return [replies[0] for _, replies in outcomes]


def phase_dedupe(service, client, host, port, clients, intensity):
    service.execute_delay = 0.4  # hold the spec in flight past the storm
    spec = cold_spec(intensity)
    coalesced_before = counter_value("repro_coalesced_requests_total")
    sims_before = counter_value("repro_service_simulations_total")
    try:
        replies = asyncio.run(_dedupe_storm(host, port, spec, clients))
    finally:
        service.execute_delay = 0.0
    runs = {info["run"] for _, status, info in replies}
    assert len(runs) == 1, f"storm split across runs: {runs}"
    run_id = runs.pop()
    final = client.wait(run_id, timeout=300)
    assert final["state"] == "done", final
    coalesced = counter_value("repro_coalesced_requests_total") - coalesced_before
    simulations = counter_value("repro_service_simulations_total") - sims_before
    manifest = service.manifest_dir / f"{run_id}.jsonl"
    ok_lines = sum(
        1 for line in manifest.read_text().splitlines()
        if line.strip() and json.loads(line).get("status") == "ok")
    assert coalesced == clients - 1, (coalesced, clients)
    assert simulations == 1, simulations
    assert ok_lines == 1, ok_lines
    return {
        "clients": clients,
        "run": run_id,
        "coalesced_requests": coalesced,
        "simulations": simulations,
        "manifest_ok_lines": ok_lines,
        "coalesced_rate": (clients - 1) / clients,
    }


def spawn_worker(port: int) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__))))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", f"127.0.0.1:{port}", "--no-reconnect"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


#: The workers phase runs real work (the standard bench machine, long
#: reference streams) so dispatch overhead is amortized and the
#: serial-vs-service comparison measures simulation, not polling.
WORKER_PARAMS = MachineParams.scaled_down(factor=8, nodes=8, page_size=512)
WORKER_REFS = 100_000


def phase_workers(service, client, hub, intensity, smoke):
    entries_axis = (16,) if smoke else (16, 64)
    grid = [
        JobSpec.timing(WORKER_PARAMS, Scheme.V_COMA, name, entries,
                       max_refs_per_node=WORKER_REFS,
                       overrides={"intensity": intensity})
        for name in WORKLOADS
        for entries in entries_axis
    ]
    procs = [spawn_worker(hub.port) for _ in range(2)]
    try:
        assert hub.wait_for_workers(2, timeout=60), "workers never dialed in"
        began = time.perf_counter()
        info = client.submit(grid)
        final = client.wait(info["run"], timeout=600)
        service_s = time.perf_counter() - began
        assert final["state"] == "done", final
        assert final["effective_jobs"] == 2, final["effective_jobs"]
        jobs_per_worker = [w["jobs_done"] for w in hub.workers_info()]
        assert sum(jobs_per_worker) == len(grid), jobs_per_worker
        assert len(jobs_per_worker) == 2 and min(jobs_per_worker) >= 1, \
            jobs_per_worker
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            with contextlib.suppress(Exception):
                proc.wait(timeout=10)
    began = time.perf_counter()
    outcomes = BatchRunner(jobs=1).run(grid)
    serial_s = time.perf_counter() - began
    assert all(job.ok for job in outcomes)
    return {
        "workers": 2,
        "effective_jobs": final["effective_jobs"],
        "grid_jobs": len(grid),
        "jobs_per_worker": sorted(jobs_per_worker),
        "service_seconds": service_s,
        "serial_seconds": serial_s,
        "speedup_vs_serial": serial_s / service_s,
        "worker_deaths": final["grid_stats"]["worker_deaths"],
    }


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small client counts for CI")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default BENCH_service.json)")
    parser.add_argument("--clients", type=int, default=None,
                        help="load-phase client count "
                             "(default 1200, or 120 with --smoke)")
    parser.add_argument("--history-dir", default=None,
                        help="also append this run to the run-history store "
                             "(or set REPRO_HISTORY_DIR; see `repro history`)")
    args = parser.parse_args(argv)

    clients = args.clients or (120 if args.smoke else 1200)
    dedupe_clients = 10 if args.smoke else 50
    soft_limit = raise_fd_limit(4 * clients + 256)
    if soft_limit < 2 * clients + 64:
        clients = max(16, (soft_limit - 64) // 2)
        print(f"fd limit {soft_limit}: clamping load phase to "
              f"{clients} clients")

    root = tempfile.mkdtemp(prefix="bench-service-")
    hub = WorkerHub()
    service = SimulationService(cache_dir=root, hub=hub, retries=2)
    thread = ServiceThread(service)
    payload = {
        "bench": "service",
        "version": __version__,
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "params": {
            "factor": 256, "nodes": 2, "page_size": 256,
            "max_refs_per_node": 300, "grids": len(warm_grids()),
        },
    }
    try:
        host, port = thread.start()
        client = ServiceClient(host, port, timeout=120.0)
        grids = warm_grids()

        print(f"warm-up: executing {len(grids)} grids ...")
        warm_seconds = phase_warm_up(client, grids)
        payload["warm_up_seconds"] = warm_seconds
        print(f"  {warm_seconds:.2f}s")

        print(f"load: {clients} concurrent clients against the warm cache ...")
        payload["load"] = load = phase_load(service, host, port, grids, clients)
        print(f"  wall {load['wall_seconds']:.2f}s  "
              f"{load['requests_per_sec']:.0f} req/s  "
              f"POST p50 {load['post_latency_ms']['p50']:.1f}ms "
              f"p99 {load['post_latency_ms']['p99']:.1f}ms  "
              f"hit rate {load['warm_hit_rate']:.3f}")

        print(f"dedupe: {dedupe_clients} identical cold submissions ...")
        payload["dedupe"] = dedupe = phase_dedupe(
            service, client, host, port, dedupe_clients, intensity=0.21)
        print(f"  one run, {dedupe['coalesced_requests']} coalesced, "
              f"{dedupe['simulations']} simulation, "
              f"{dedupe['manifest_ok_lines']} manifest ok line")

        print("workers: cold grid across 2 loopback remote workers ...")
        payload["workers"] = workers = phase_workers(
            service, client, hub, intensity=0.22, smoke=args.smoke)
        print(f"  effective_jobs {workers['effective_jobs']}  "
              f"jobs/worker {workers['jobs_per_worker']}  "
              f"service {workers['service_seconds']:.2f}s vs serial "
              f"{workers['serial_seconds']:.2f}s "
              f"({workers['speedup_vs_serial']:.2f}x)")
    finally:
        thread.stop()
        shutil.rmtree(root, ignore_errors=True)

    # -- gates ---------------------------------------------------------
    tolerance = float(os.environ.get("REPRO_BENCH_SERVICE_TOL", "0"))
    p99_limit = float(os.environ.get("REPRO_BENCH_SERVICE_P99", "2500"))
    p99_limit *= 1 + tolerance
    min_hit = float(os.environ.get("REPRO_BENCH_SERVICE_MIN_HIT", "0.95"))
    assert load["warm_hit_rate"] >= min_hit, (
        f"warm hit rate {load['warm_hit_rate']:.3f} < {min_hit} "
        f"(set REPRO_BENCH_SERVICE_MIN_HIT to widen the gate)")
    assert load["post_latency_ms"]["p99"] <= p99_limit, (
        f"POST p99 {load['post_latency_ms']['p99']:.1f}ms exceeds "
        f"{p99_limit:.0f}ms (set REPRO_BENCH_SERVICE_P99 / "
        f"REPRO_BENCH_SERVICE_TOL to widen the gate)")
    assert load["new_simulations"] == 0, "warm load phase still simulated"

    out = args.out or os.path.join(
        os.path.dirname(__file__), "..", "BENCH_service.json")
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {os.path.abspath(out)}")

    history_dir = args.history_dir or os.environ.get("REPRO_HISTORY_DIR")
    if history_dir:
        from repro.obs.history import RunHistory, entry_from_service_bench

        entry = RunHistory(history_dir).append(entry_from_service_bench(payload))
        print(f"history: recorded {entry.key} "
              f"({len(entry.metrics)} metrics) -> {history_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
