"""Table 2 — TLB/DLB miss rates per processor reference (%).

One row per benchmark, five scheme columns at sizes 8/32/128, exactly
like the paper's Table 2.  Checks that V-COMA has the lowest rate of the
five schemes in (nearly) every cell, as in the paper.
"""

from bench_common import all_studies, report
from repro import SCHEME_ORDER, Scheme, TAP_OF_SCHEME
from repro.analysis import render_miss_rate_table, scheme_miss_rates

SIZES = (8, 32, 128)


def test_table2_miss_rates(benchmark):
    studies = benchmark.pedantic(all_studies, rounds=1, iterations=1)
    report()
    report(render_miss_rate_table(studies, sizes=SIZES))

    vcoma_best = 0
    cells = 0
    for name, study in studies.items():
        for size in SIZES:
            rates = scheme_miss_rates(study, size)
            cells += 1
            others = [rates[s] for s in SCHEME_ORDER if s is not Scheme.V_COMA]
            if rates[Scheme.V_COMA] <= min(others) * 1.10:
                vcoma_best += 1
    report(f"V-COMA lowest (within 10%) in {vcoma_best}/{cells} cells")
    assert vcoma_best >= cells * 0.8


def test_table2_l0_rates_are_significant(benchmark):
    """Paper: 'In L0-TLB the miss rates are comparable to SLC miss rates
    when the TLB has 8 or 32 entries … TLB effects cannot be ignored.'"""
    studies = benchmark.pedantic(all_studies, rounds=1, iterations=1)
    significant = [
        name
        for name, study in studies.items()
        if study.miss_rate(TAP_OF_SCHEME[Scheme.L0_TLB], 8) > 0.01
    ]
    report(f"\nbenchmarks with L0/8 miss rate > 1%: {significant}")
    assert len(significant) >= 4
