"""Table 3 — TLB size equivalent to an 8-entry DLB.

For each benchmark and each per-node scheme, the TLB size whose miss
count matches V-COMA's 8-entry DLB (log-interpolated along the Figure 8
curve).  The paper's point: it takes TLBs of tens-to-hundreds of entries
to match a tiny shared DLB.
"""

import math

from bench_common import all_studies, report
from repro import Scheme, TAP_OF_SCHEME, TapPoint
from repro.analysis import equivalent_tlb_size, render_equivalent_size_table


def test_table3_equivalent_sizes(benchmark):
    studies = benchmark.pedantic(all_studies, rounds=1, iterations=1)
    report()
    report(render_equivalent_size_table(studies, dlb_entries=8))

    bigger_than_4x = 0
    cells = 0
    for name, study in studies.items():
        target = study.misses(TapPoint.HOME, 8)
        for scheme in (Scheme.L0_TLB, Scheme.L1_TLB, Scheme.L2_TLB, Scheme.L3_TLB):
            size = equivalent_tlb_size(study, TAP_OF_SCHEME[scheme], target)
            cells += 1
            if math.isinf(size) or size >= 32:
                bigger_than_4x += 1
    report(f"equivalent TLB >= 4x the DLB in {bigger_than_4x}/{cells} cells")
    assert bigger_than_4x >= cells * 0.6


def test_table3_l3_needs_smaller_tlb_than_l0(benchmark):
    """Deeper schemes are closer to the DLB (paper: L3 columns are the
    smallest of the four TLB columns)."""
    studies = benchmark.pedantic(all_studies, rounds=1, iterations=1)
    closer = 0
    for name, study in studies.items():
        target = study.misses(TapPoint.HOME, 8)
        l0 = equivalent_tlb_size(study, TapPoint.L0, target)
        l3 = equivalent_tlb_size(study, TapPoint.L3, target)
        if (not math.isinf(l0) and not math.isinf(l3) and l3 <= l0) or math.isinf(l0):
            closer += 1
    report(f"\nL3 equivalent <= L0 equivalent for {closer}/{len(studies)} benchmarks")
    assert closer >= len(studies) - 1
