"""Table 4 — address translation time / total memory stall time (%).

Coupled timing runs of the physical COMA (L0-TLB) against V-COMA with 8-
and 16-entry translation structures, 40-cycle miss penalty, sequential
consistency — the paper's Table 4 rows L0-TLB/8, DLB/8, L0-TLB/16,
DLB/16.
"""

from bench_common import report, BENCHMARKS, timing_run
from repro import Organization, Scheme
from repro.analysis import render_overhead_table

FA = Organization.FULLY_ASSOCIATIVE.value


def build_rows():
    rows = {}
    for entries in (8, 16):
        rows[f"L0-TLB/{entries}"] = {
            name: timing_run(name, Scheme.L0_TLB.value, entries, FA)
            for name in BENCHMARKS
        }
        rows[f"DLB/{entries}"] = {
            name: timing_run(name, Scheme.V_COMA.value, entries, FA)
            for name in BENCHMARKS
        }
    return rows


def test_table4_overhead(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report()
    report(render_overhead_table(rows))

    for name in BENCHMARKS:
        l0 = rows["L0-TLB/8"][name].translation_overhead_ratio()
        dlb = rows["DLB/8"][name].translation_overhead_ratio()
        # The paper's headline: translation cost is significant in the
        # physical COMA and drastically cut in V-COMA.
        assert dlb < l0, name
    ratios = [
        rows["L0-TLB/8"][n].translation_overhead_ratio()
        / max(1e-9, rows["DLB/8"][n].translation_overhead_ratio())
        for n in BENCHMARKS
    ]
    report("L0/DLB overhead ratios: " + " ".join(f"{r:.1f}x" for r in ratios))
    # The factor grows with node count (the paper's 32-node machine sees
    # 10-100x); at 8 nodes several-x is the expected magnitude.
    assert max(ratios) > 3
    assert min(ratios) > 1.5


def test_table4_16_entries_improve_both(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    improved = 0
    for name in BENCHMARKS:
        if (
            rows["L0-TLB/16"][name].aggregate_breakdown().tlb_stall
            <= rows["L0-TLB/8"][name].aggregate_breakdown().tlb_stall
        ):
            improved += 1
    report(f"\nL0-TLB/16 <= L0-TLB/8 translation stall for {improved}/{len(BENCHMARKS)}")
    assert improved >= len(BENCHMARKS) - 1
