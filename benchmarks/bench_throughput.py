"""Throughput benchmark: serial refs/sec, record/replay grid, cache reuse.

Run as a script (it is not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_throughput.py [--smoke] [--out PATH]

Four measurements, written to ``BENCH_throughput.json`` at the repo
root:

* **serial throughput** — references simulated per second for one
  decoupled sweep run (compiled and scalar engines) and one coupled
  timing run, compared against the recorded seed-commit baseline
  (``speedup_vs_seed``).  Both kinds ride their compiled fast path
  when available (the production configuration; each row's ``backend``
  records which engine ran): timing is gated at >= 5x the seed
  baseline, the sweep at >= 8x.  The scalar engines must additionally
  stay no slower than the seed (cross-era gate, widened by
  ``REPRO_BENCH_SEED_TOL``).
* **sweep grid** — the record-once/replay-many showcase: every
  workload swept at several TLB/DLB bank configurations (sizes ×
  organizations).  All bank grids of one workload share a single
  recorded tap trace, so the grid simulates each hierarchy once and
  replays the rest.  ``grid_no_replay`` runs the identical spec list
  through the coupled scalar path (the PR-1 behaviour);
  ``speedup_vs_no_replay`` on the jobs=1 row is the pipeline's win and
  the optimisation target (≥3×).  Miss counts are asserted
  bit-identical between the two passes.  Each row records
  ``effective_jobs`` — the worker count after the runner clamps to
  ``cpu_count`` (a 1-core container runs every level in-process, which
  is why ``--jobs 4`` no longer loses to serial).
* **timing grid** — the coupled TLB/DLB timing matrix (Table 4 shape).
  Timing runs are never replayed (the translation penalty perturbs the
  interleaving), so this grid bounds what record/replay cannot speed
  up.
* **warm cache** — the sweep grid re-run against the result cache
  populated by the jobs=1 pass; asserts zero new simulations.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import MachineParams, Scheme, __version__, make_workload
from repro.analysis import run_miss_sweep, run_timing
from repro.core.tlb import Organization
from repro.runner import BatchRunner, JobSpec, ResultCache, TraceStore

#: Bench machine (mirrors bench_common.BENCH_PARAMS).
PARAMS = MachineParams.scaled_down(factor=8, nodes=8, page_size=512)

SWEEP_SIZES = (8, 32, 128, 512)
ORGS = (Organization.FULLY_ASSOCIATIVE, Organization.DIRECT_MAPPED)
INTENSITY = {"radix": 0.45, "fft": 0.25, "fmm": 1.0, "ocean": 0.2, "raytrace": 3.0, "barnes": 1.0}

#: refs/sec at the pre-optimisation commit: median of 5 paired runs of
#: exactly the serial section below (CPU time, radix @ 0.45) on the
#: reference host.  Recalibrate on other hosts by running this section
#: on a pre-optimisation checkout.
SEED_BASELINE = {"sweep_refs_per_sec": 30926.0, "timing_refs_per_sec": 65973.0}

#: Ceiling on the enabled-tracing slowdown: streaming the full span/
#: event JSONL may cost at most this factor over an *untraced scalar*
#: run (a traced run always uses the scalar engine, so the fair
#: denominator is the scalar untraced rate, not the fast path's).  A
#: ratio of two CPU-time rates on the same host, so it is gated on
#: every non-smoke run (no committed-baseline comparison needed);
#: widened by REPRO_BENCH_OVERHEAD_TOL like the disabled gate.
#: Rebased from 1.5 when the untraced denominator got ~10% faster
#: (the is-None dispatch hoists): the traced path still pays the same
#: absolute per-event cost, so the *ratio* grew without any tracing
#: regression.
ENABLED_SLOWDOWN_LIMIT = 1.75

#: Floor on the fast path's serial timing speedup over the seed
#: baseline (the tentpole target), gated when the compiled backend is
#: available.  Without it the scalar engine must still be no slower
#: than the seed (the hoisted-emitter satellite gate).
FAST_TIMING_SPEEDUP_FLOOR = 5.0

#: Floor on the compiled sweep engine's serial speedup over the seed
#: baseline (capture mode + one ``fs_bank_run`` per recorded tap
#: stream).  Gated like the timing floor: only when the sweep actually
#: ran on the compiled backend.
FAST_SWEEP_SPEEDUP_FLOOR = 8.0

#: Bank configurations swept per workload.  Each is a (label, sizes,
#: orgs) grid; all five share one workload's recorded tap trace, which
#: is exactly the redundancy record/replay removes.
FA = Organization.FULLY_ASSOCIATIVE
SA = Organization.SET_ASSOCIATIVE
DM = Organization.DIRECT_MAPPED
BANK_CONFIGS = (
    ("fig8", (8, 32, 128, 512), (FA, DM)),
    ("table2", (8, 32, 128), (FA,)),
    ("small", (8, 16, 32, 64), (FA, SA)),
    ("medium", (16, 64, 256), (FA, DM)),
    ("assoc", (32, 128, 512), (SA, DM)),
)

JOB_LEVELS = (1, 4)


def serial_throughput(smoke: bool) -> dict:
    """Single-thread refs/sec for the two hot paths, best of 3 runs.

    Measured in CPU time (``process_time``) so co-scheduled load does
    not masquerade as a simulator slowdown, and taking the fastest of
    three runs (timeit's convention — slower runs measure interference,
    not the code).  With ``--smoke`` the stream is shorter (and a
    single run), so machine-setup overhead deflates the rates."""
    intensity = 0.2 if smoke else INTENSITY["radix"]
    repeats = 1 if smoke else 3
    best = {}
    for _ in range(repeats):
        workload = make_workload("radix", intensity=intensity)
        started = time.process_time()
        sweep = run_miss_sweep(PARAMS, workload, sizes=SWEEP_SIZES, orgs=ORGS)
        sweep_elapsed = time.process_time() - started

        workload = make_workload("radix", intensity=intensity)
        started = time.process_time()
        sweep_scalar = run_miss_sweep(
            PARAMS, workload, sizes=SWEEP_SIZES, orgs=ORGS, fast=False
        )
        sweep_scalar_elapsed = time.process_time() - started

        workload = make_workload("radix", intensity=intensity)
        started = time.process_time()
        timing = run_timing(PARAMS, Scheme.V_COMA, workload, 8)
        timing_elapsed = time.process_time() - started

        for kind, result, elapsed, baseline in (
            ("sweep", sweep, sweep_elapsed, SEED_BASELINE["sweep_refs_per_sec"]),
            ("sweep_scalar", sweep_scalar, sweep_scalar_elapsed,
             SEED_BASELINE["sweep_refs_per_sec"]),
            ("timing", timing, timing_elapsed, SEED_BASELINE["timing_refs_per_sec"]),
        ):
            rate = result.total_references / elapsed
            if kind not in best or rate > best[kind]["refs_per_sec"]:
                best[kind] = {
                    "references": result.total_references,
                    "seconds": round(elapsed, 3),
                    "refs_per_sec": round(rate, 1),
                    "speedup_vs_seed": round(rate / baseline, 3),
                    "backend": getattr(result, "backend", None),
                }
    best["runs"] = repeats
    best["seed_baseline"] = SEED_BASELINE
    return best


def tracing_overhead(smoke: bool) -> dict:
    """Tracing must be free when off and cheap when on.

    Three coupled timing runs per repeat, interleaved so host noise
    hits every leg equally and best-of-N (CPU time) discards the rest:

    * **disabled** — no tracer attached, the production configuration.
      On the compiled fast path this is the rate the committed-baseline
      gate in ``main`` protects.
    * **scalar_untraced** — the scalar reference engine, untraced.  The
      fair denominator for the enabled gate (a traced run always runs
      scalar) and the hoisted-emitter satellite gate's numerator:
      instrumentation may not tax untraced scalar runs.
    * **enabled** — streaming the full span/event JSONL to disk.

    ``enabled_slowdown = scalar_untraced / enabled`` is gated at
    ``ENABLED_SLOWDOWN_LIMIT``; all three runs must agree on
    ``total_time`` exactly (tracing and engine choice may not perturb
    the simulation).
    """
    from repro.obs import Tracer

    intensity = 0.2 if smoke else INTENSITY["radix"]
    repeats = 1 if smoke else 5
    rates = {"disabled": 0.0, "scalar_untraced": 0.0, "enabled": 0.0}
    backend = None
    round_ratios = []
    for _ in range(repeats):
        workload = make_workload("radix", intensity=intensity)
        started = time.process_time()
        result = run_timing(PARAMS, Scheme.V_COMA, workload, 8)
        elapsed = time.process_time() - started
        rates["disabled"] = max(rates["disabled"], result.total_references / elapsed)
        backend = result.backend

        workload = make_workload("radix", intensity=intensity)
        started = time.process_time()
        scalar = run_timing(PARAMS, Scheme.V_COMA, workload, 8, fast=False)
        elapsed = time.process_time() - started
        scalar_rate = scalar.total_references / elapsed
        rates["scalar_untraced"] = max(rates["scalar_untraced"], scalar_rate)

        workload = make_workload("radix", intensity=intensity)
        with tempfile.TemporaryDirectory(prefix="repro-bench-trace-") as tmp:
            path = os.path.join(tmp, "bench.jsonl")
            started = time.process_time()
            with Tracer(path) as tracer:
                traced = run_timing(
                    PARAMS, Scheme.V_COMA, workload, 8, tracer=tracer
                )
            elapsed = time.process_time() - started
        enabled_rate = traced.total_references / elapsed
        rates["enabled"] = max(rates["enabled"], enabled_rate)
        round_ratios.append(scalar_rate / enabled_rate)
        assert traced.total_time == result.total_time == scalar.total_time, (
            "tracing or engine choice perturbed the simulation"
        )
    # Host noise on a shared box only ever *adds* CPU time, so the true
    # slowdown is approached from above by both estimators: the ratio of
    # a temporally-adjacent scalar/enabled pair (cancels slow drift) and
    # the ratio of per-leg bests across rounds (cancels independent
    # spikes).  Take whichever got closer.
    slowdown = min(min(round_ratios), rates["scalar_untraced"] / rates["enabled"])
    return {
        "disabled_refs_per_sec": round(rates["disabled"], 1),
        "disabled_backend": backend,
        "scalar_untraced_refs_per_sec": round(rates["scalar_untraced"], 1),
        "enabled_refs_per_sec": round(rates["enabled"], 1),
        "enabled_slowdown": round(slowdown, 3),
        "scalar_speedup_vs_seed": round(
            rates["scalar_untraced"] / SEED_BASELINE["timing_refs_per_sec"], 3
        ),
        "runs": repeats,
    }


def sweep_grid_specs(workloads, configs=BANK_CONFIGS) -> list:
    """One sweep job per (workload, bank configuration)."""
    return [
        JobSpec.sweep(
            PARAMS, name, sizes=sizes, orgs=orgs,
            overrides={"intensity": INTENSITY[name]},
            label=f"sweep:{name}:{label}",
        )
        for name in workloads
        for label, sizes, orgs in configs
    ]


def timing_grid_specs(workloads) -> list:
    """The coupled TLB/DLB timing matrix (Table 4 shape)."""
    specs = []
    for entries in (8, 16):
        for scheme in (Scheme.L0_TLB, Scheme.V_COMA):
            specs.extend(
                JobSpec.timing(
                    PARAMS, scheme, name, entries,
                    overrides={"intensity": INTENSITY[name]},
                    label=f"{scheme.value}/{entries}:{name}",
                )
                for name in workloads
            )
    return specs


def run_grid(specs, jobs, cache=None, trace_store=None, replay=True):
    runner = BatchRunner(jobs=jobs, cache=cache, trace_store=trace_store, replay=replay)
    started = time.perf_counter()
    results = runner.run(specs)
    elapsed = time.perf_counter() - started
    row = {
        "jobs": jobs,
        "effective_jobs": runner.effective_jobs,
        "grid_jobs": len(specs),
        "seconds": round(elapsed, 3),
        "simulations_run": runner.simulations_run,
        "cache_hits": runner.cache_hits,
        "backends": dict(runner.stats.backends),
    }
    return row, results


def engine_mix(row) -> str:
    """Human-readable engine mix of one grid row ("" when nothing ran)."""
    mix = row.get("backends") or {}
    return ", ".join(f"{count} {name}" for name, count in sorted(mix.items()))


def study_fingerprint(results) -> dict:
    """Label → sweep miss counts, for replay-vs-scalar equality checks."""
    return {
        job.spec.label: job.summary.study_results().to_dict()
        for job in results
        if job.summary.study_results() is not None
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small grid (2 workloads, 2 bank configs) for CI smoke runs")
    parser.add_argument("--out", default=None,
                        help="output path (default: BENCH_throughput.json at the repo root)")
    parser.add_argument("--history-dir", default=None,
                        help="also append this run to the run-history store "
                             "(default: $REPRO_HISTORY_DIR if set; "
                             "see `repro history`)")
    args = parser.parse_args(argv)

    out = args.out or os.path.join(os.path.dirname(__file__), "..", "BENCH_throughput.json")
    workloads = ("radix", "fft") if args.smoke else tuple(INTENSITY)
    configs = BANK_CONFIGS[:2] if args.smoke else BANK_CONFIGS

    # Measure tracing overhead FIRST, on a pristine heap: the sweep
    # stage leaves the allocator fragmented enough to tax the
    # allocation-heavy enabled leg ~10-40% more than the scalar leg,
    # which inflates the slowdown ratio well past what a standalone
    # process measures.
    print(f"tracing overhead (radix timing){' [smoke]' if args.smoke else ''} ...",
          flush=True)
    tracing = tracing_overhead(args.smoke)
    print(f"  disabled: {tracing['disabled_refs_per_sec']:>10.1f} refs/s "
          f"({tracing['disabled_backend']})")
    print(f"  scalar  : {tracing['scalar_untraced_refs_per_sec']:>10.1f} refs/s "
          f"untraced ({tracing['scalar_speedup_vs_seed']:.2f}x vs seed)")
    print(f"  enabled : {tracing['enabled_refs_per_sec']:>10.1f} refs/s "
          f"({tracing['enabled_slowdown']:.2f}x slowdown vs scalar untraced)")

    print("serial throughput (radix) ...", flush=True)
    serial = serial_throughput(args.smoke)
    for kind in ("sweep", "sweep_scalar", "timing"):
        row = serial[kind]
        engine = f", {row['backend']}" if row.get("backend") else ""
        print(f"  {kind:>12}: {row['refs_per_sec']:>10.1f} refs/s "
              f"({row['speedup_vs_seed']:.2f}x vs seed{engine})")
    if not args.smoke:
        tolerance = float(os.environ.get("REPRO_BENCH_OVERHEAD_TOL", "0.02"))
        # Gates against SEED_BASELINE compare across benchmark *eras*:
        # the seed constants were captured under different host load,
        # and re-measuring the unmodified seed code on this container
        # lands anywhere in 0.82-0.98x of its own recorded rate.  These
        # gates therefore get a wide drift allowance and only catch
        # gross regressions; the tight 2% tolerance is reserved for
        # same-era comparisons (the committed-baseline gate below).
        seed_tol = float(os.environ.get("REPRO_BENCH_SEED_TOL", "0.25"))
        if serial["timing"].get("backend") == "compiled":
            floor = FAST_TIMING_SPEEDUP_FLOOR * (1 - tolerance)
            print(f"  fast-path gate: {serial['timing']['speedup_vs_seed']:.2f}x "
                  f">= {floor:.2f}x vs seed")
            assert serial["timing"]["speedup_vs_seed"] >= floor, (
                f"compiled fast path only {serial['timing']['speedup_vs_seed']:.2f}x "
                f"over the seed baseline (target {FAST_TIMING_SPEEDUP_FLOOR}x); "
                f"set REPRO_BENCH_OVERHEAD_TOL to widen the gate"
            )
        if serial["sweep"].get("backend") == "compiled":
            # Cross-era like the scalar gates below: the 8x target is
            # against the recorded seed constant, and the sweep engine
            # (unlike the 10x+ timing path) does not have enough
            # headroom over its floor to absorb host-load drift with
            # the tight same-era tolerance.
            floor = FAST_SWEEP_SPEEDUP_FLOOR * (1 - seed_tol)
            print(f"  fast-sweep gate: {serial['sweep']['speedup_vs_seed']:.2f}x "
                  f">= {floor:.2f}x vs seed")
            assert serial["sweep"]["speedup_vs_seed"] >= floor, (
                f"compiled sweep engine only {serial['sweep']['speedup_vs_seed']:.2f}x "
                f"over the seed baseline (target {FAST_SWEEP_SPEEDUP_FLOOR}x); "
                f"set REPRO_BENCH_SEED_TOL to widen the cross-era gate"
            )
        sweep_scalar_floor = 1.0 - seed_tol
        print(f"  scalar-sweep gate: "
              f"{serial['sweep_scalar']['speedup_vs_seed']:.2f}x "
              f">= {sweep_scalar_floor:.2f}x vs seed")
        assert serial["sweep_scalar"]["speedup_vs_seed"] >= sweep_scalar_floor, (
            f"scalar sweep engine regressed to "
            f"{serial['sweep_scalar']['speedup_vs_seed']:.2f}x of the seed "
            f"baseline (set REPRO_BENCH_SEED_TOL to widen the cross-era gate)"
        )
        scalar_floor = 1.0 - seed_tol
        print(f"  scalar-engine gate: {tracing['scalar_speedup_vs_seed']:.2f}x "
              f">= {scalar_floor:.2f}x vs seed")
        assert tracing["scalar_speedup_vs_seed"] >= scalar_floor, (
            f"untraced scalar timing regressed to "
            f"{tracing['scalar_speedup_vs_seed']:.2f}x of the seed baseline; "
            f"instrumentation may not tax untraced runs "
            f"(set REPRO_BENCH_SEED_TOL to widen the cross-era gate)"
        )
        limit = ENABLED_SLOWDOWN_LIMIT * (1 + tolerance)
        print(f"  enabled-mode gate: {tracing['enabled_slowdown']:.2f}x "
              f"<= {limit:.2f}x")
        assert tracing["enabled_slowdown"] <= limit, (
            f"enabled-tracing slowdown {tracing['enabled_slowdown']:.2f}x "
            f"exceeds the {ENABLED_SLOWDOWN_LIMIT}x budget; "
            f"set REPRO_BENCH_OVERHEAD_TOL to widen the gate"
        )
    if not args.smoke and os.path.exists(out):
        # Gate: with no tracer attached, the instrumented hot paths must
        # stay within tolerance of the committed baseline's timing rate.
        # Only comparable when both runs used the same engine — a host
        # without the compiled backend measures the scalar rate, which
        # must not be gated against a committed fast-path baseline.
        with open(out) as handle:
            committed = json.load(handle)
        base = committed.get("serial", {}).get("timing", {}).get("refs_per_sec")
        same_backend = (
            committed.get("serial", {}).get("timing", {}).get("backend")
            == serial["timing"].get("backend")
        )
        if base and same_backend and not committed.get("smoke"):
            tolerance = float(os.environ.get("REPRO_BENCH_OVERHEAD_TOL", "0.02"))
            ratio = tracing["disabled_refs_per_sec"] / base
            print(f"  vs committed baseline: {ratio:.3f}x "
                  f"(gate: >= {1 - tolerance:.2f}x)")
            assert ratio >= 1 - tolerance, (
                f"tracing-disabled throughput regressed "
                f"{(1 - ratio) * 100:.1f}% vs the committed baseline "
                f"({tracing['disabled_refs_per_sec']:.0f} vs {base:.0f} refs/s); "
                f"set REPRO_BENCH_OVERHEAD_TOL to widen the gate"
            )

    specs = sweep_grid_specs(workloads, configs)
    print(f"sweep grid: {len(specs)} jobs "
          f"({len(workloads)} workloads x {len(configs)} bank configs)", flush=True)
    grid = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        no_replay_row, no_replay_results = run_grid(specs, jobs=1, replay=False)
        print(f"  no-replay (coupled reference): {no_replay_row['seconds']:.1f} s "
              f"[{engine_mix(no_replay_row)}]", flush=True)

        replay_fingerprint = None
        for jobs in JOB_LEVELS:
            # Every level records+replays cold except for the shared
            # trace store; the jobs=1 pass also writes the result cache
            # the warm measurement below reads back.
            with tempfile.TemporaryDirectory(prefix="repro-bench-traces-") as trace_tmp:
                row, results = run_grid(
                    specs, jobs,
                    cache=ResultCache(tmp) if jobs == 1 else None,
                    trace_store=TraceStore(trace_tmp),
                )
            if jobs == 1:
                serial_seconds = row["seconds"]
                replay_fingerprint = study_fingerprint(results)
                row["speedup_vs_no_replay"] = round(
                    no_replay_row["seconds"] / row["seconds"], 3
                )
            row["speedup_vs_serial"] = round(serial_seconds / row["seconds"], 3)
            grid.append(row)
            note = (f", {row['speedup_vs_no_replay']:.2f}x vs no-replay"
                    if jobs == 1 else "")
            mix = engine_mix(row)
            print(f"  --jobs {jobs} (effective {row['effective_jobs']}): "
                  f"{row['seconds']:.1f} s "
                  f"({row['speedup_vs_serial']:.2f}x vs serial{note})"
                  f"{f' [{mix}]' if mix else ''}", flush=True)
            if row["effective_jobs"] < jobs:
                print(f"  WARNING: --jobs {jobs} clamped to "
                      f"{row['effective_jobs']} worker"
                      f"{'s' if row['effective_jobs'] != 1 else ''} "
                      f"(cpu_count={os.cpu_count()}); speedup_vs_serial "
                      f"measures the clamped pool", flush=True)

        mismatches = [
            label for label, study in study_fingerprint(no_replay_results).items()
            if replay_fingerprint.get(label) != study
        ]
        assert not mismatches, f"replay/scalar miss counts diverged: {mismatches}"
        print(f"  replay == scalar: {len(replay_fingerprint)} studies bit-identical")

        timing_specs = timing_grid_specs(workloads)
        print(f"timing grid: {len(timing_specs)} coupled jobs", flush=True)
        timing_row, _ = run_grid(timing_specs, jobs=1)
        print(f"  --jobs 1: {timing_row['seconds']:.1f} s", flush=True)

        warm, _ = run_grid(specs, jobs=1, cache=ResultCache(tmp))
        assert warm["simulations_run"] == 0, "warm cache still simulated"
        print(f"  warm cache: {warm['seconds']:.2f} s, "
              f"{warm['simulations_run']} simulations, {warm['cache_hits']} hits")

    from repro.core.timing_kernels import backend_status

    payload = {
        "version": __version__,
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "timing_backend": backend_status(),
        "params": {"nodes": PARAMS.nodes, "page_size": PARAMS.page_size},
        "serial": serial,
        "tracing": tracing,
        "grid": grid,
        "grid_no_replay": no_replay_row,
        "timing_grid": timing_row,
        "warm_cache": warm,
    }
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.abspath(out)}")

    history_dir = args.history_dir or os.environ.get("REPRO_HISTORY_DIR")
    if history_dir:
        from repro.obs.history import RunHistory, entry_from_bench

        entry = RunHistory(history_dir).append(entry_from_bench(payload))
        print(f"history: recorded {entry.key} "
              f"({len(entry.metrics)} metrics) -> {history_dir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
