"""Throughput benchmark: serial refs/sec, parallel grid scaling, cache reuse.

Run as a script (it is not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_throughput.py [--smoke] [--out PATH]

Three measurements, written to ``BENCH_throughput.json`` at the repo
root:

* **serial throughput** — references simulated per second for one
  decoupled sweep run and one coupled timing run, compared against the
  recorded seed-commit baseline (``speedup_vs_seed``; the optimisation
  target is ≥1.2×).  Baselines were measured on the same grid at the
  seed commit; re-measure with ``--baseline-only`` on a seed checkout
  to recalibrate for a different host.
* **parallel grid wall-clock** — a report-shaped grid (per-workload
  sweeps plus the TLB/DLB timing matrix) executed cold at ``--jobs``
  1, 4 and 8; ``speedup_vs_serial`` records the scaling actually
  achieved on this host (bounded by ``cpu_count`` — a 1-core container
  cannot show parallel speedup).
* **warm cache** — the same grid re-run against the cache populated by
  the jobs=1 pass; asserts zero new simulations and records the
  wall-clock of a simulation-free invocation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import MachineParams, Scheme, __version__, make_workload
from repro.analysis import run_miss_sweep, run_timing
from repro.core.tlb import Organization
from repro.runner import BatchRunner, JobSpec, ResultCache

#: Bench machine (mirrors bench_common.BENCH_PARAMS).
PARAMS = MachineParams.scaled_down(factor=8, nodes=8, page_size=512)

SWEEP_SIZES = (8, 32, 128, 512)
ORGS = (Organization.FULLY_ASSOCIATIVE, Organization.DIRECT_MAPPED)
INTENSITY = {"radix": 0.45, "fft": 0.25, "fmm": 1.0, "ocean": 0.2, "raytrace": 3.0, "barnes": 1.0}

#: refs/sec at the pre-optimisation commit: median of 5 paired runs of
#: exactly the serial section below (CPU time, radix @ 0.45) on the
#: reference host.  Recalibrate on other hosts by running this section
#: on a pre-optimisation checkout.
SEED_BASELINE = {"sweep_refs_per_sec": 30926.0, "timing_refs_per_sec": 65973.0}

JOB_LEVELS = (1, 4, 8)


def serial_throughput(smoke: bool) -> dict:
    """Single-thread refs/sec for the two hot paths, best of 3 runs.

    Measured in CPU time (``process_time``) so co-scheduled load does
    not masquerade as a simulator slowdown, and taking the fastest of
    three runs (timeit's convention — slower runs measure interference,
    not the code).  With ``--smoke`` the stream is shorter (and a
    single run), so machine-setup overhead deflates the rates."""
    intensity = 0.2 if smoke else INTENSITY["radix"]
    repeats = 1 if smoke else 3
    best = {}
    for _ in range(repeats):
        workload = make_workload("radix", intensity=intensity)
        started = time.process_time()
        sweep = run_miss_sweep(PARAMS, workload, sizes=SWEEP_SIZES, orgs=ORGS)
        sweep_elapsed = time.process_time() - started

        workload = make_workload("radix", intensity=intensity)
        started = time.process_time()
        timing = run_timing(PARAMS, Scheme.V_COMA, workload, 8)
        timing_elapsed = time.process_time() - started

        for kind, result, elapsed, baseline in (
            ("sweep", sweep, sweep_elapsed, SEED_BASELINE["sweep_refs_per_sec"]),
            ("timing", timing, timing_elapsed, SEED_BASELINE["timing_refs_per_sec"]),
        ):
            rate = result.total_references / elapsed
            if kind not in best or rate > best[kind]["refs_per_sec"]:
                best[kind] = {
                    "references": result.total_references,
                    "seconds": round(elapsed, 3),
                    "refs_per_sec": round(rate, 1),
                    "speedup_vs_seed": round(rate / baseline, 3),
                }
    best["runs"] = repeats
    best["seed_baseline"] = SEED_BASELINE
    return best


def grid_specs(workloads) -> list:
    """The report-shaped grid: sweeps plus the TLB/DLB timing matrix."""
    specs = [
        JobSpec.sweep(
            PARAMS, name, sizes=SWEEP_SIZES, orgs=ORGS,
            overrides={"intensity": INTENSITY[name]}, label=f"sweep:{name}",
        )
        for name in workloads
    ]
    for entries in (8, 16):
        for scheme in (Scheme.L0_TLB, Scheme.V_COMA):
            specs.extend(
                JobSpec.timing(
                    PARAMS, scheme, name, entries,
                    overrides={"intensity": INTENSITY[name]},
                    label=f"{scheme.value}/{entries}:{name}",
                )
                for name in workloads
            )
    return specs


def run_grid(specs, jobs, cache=None) -> dict:
    runner = BatchRunner(jobs=jobs, cache=cache)
    started = time.perf_counter()
    runner.run(specs)
    elapsed = time.perf_counter() - started
    return {
        "jobs": jobs,
        "grid_jobs": len(specs),
        "seconds": round(elapsed, 3),
        "simulations_run": runner.simulations_run,
        "cache_hits": runner.cache_hits,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small grid (2 workloads) for CI smoke runs")
    parser.add_argument("--out", default=None,
                        help="output path (default: BENCH_throughput.json at the repo root)")
    args = parser.parse_args(argv)

    out = args.out or os.path.join(os.path.dirname(__file__), "..", "BENCH_throughput.json")
    workloads = ("radix", "fft") if args.smoke else tuple(INTENSITY)

    print(f"serial throughput (radix){' [smoke]' if args.smoke else ''} ...", flush=True)
    serial = serial_throughput(args.smoke)
    for kind in ("sweep", "timing"):
        row = serial[kind]
        print(f"  {kind:>6}: {row['refs_per_sec']:>10.1f} refs/s "
              f"({row['speedup_vs_seed']:.2f}x vs seed)")

    specs = grid_specs(workloads)
    print(f"grid: {len(specs)} simulations over {len(workloads)} workloads", flush=True)
    grid = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        for jobs in JOB_LEVELS:
            # Every level runs cold; the jobs=1 pass writes the cache
            # the warm measurement below reads back.
            row = run_grid(specs, jobs, cache=ResultCache(tmp) if jobs == 1 else None)
            if jobs == 1:
                serial_seconds = row["seconds"]
            row["speedup_vs_serial"] = round(serial_seconds / row["seconds"], 3)
            grid.append(row)
            print(f"  --jobs {jobs}: {row['seconds']:.1f} s "
                  f"({row['speedup_vs_serial']:.2f}x vs serial)", flush=True)

        warm = run_grid(specs, jobs=1, cache=ResultCache(tmp))
        assert warm["simulations_run"] == 0, "warm cache still simulated"
        print(f"  warm cache: {warm['seconds']:.2f} s, "
              f"{warm['simulations_run']} simulations, {warm['cache_hits']} hits")

    payload = {
        "version": __version__,
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "params": {"nodes": PARAMS.nodes, "page_size": PARAMS.page_size},
        "serial": serial,
        "grid": grid,
        "warm_cache": warm,
    }
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.abspath(out)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
