"""CI gate: record-then-replay must match the coupled scalar path.

Run as a script::

    PYTHONPATH=src python benchmarks/check_replay_equivalence.py

Executes a tiny sweep grid twice — once through the record/replay
pipeline (with an on-disk trace store, so the write → read → replay
path is exercised too) and once through the coupled scalar reference —
and diffs every miss count, miss rate, and hierarchy counter.  Exits
non-zero listing each divergent design point on mismatch.  The check
honours ``REPRO_NO_NUMPY``, so the CI matrix runs it against both
kernel families.
"""

from __future__ import annotations

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import MachineParams
from repro.core.replay import get_numpy
from repro.core.schemes import SCHEME_ORDER, TAP_OF_SCHEME
from repro.core.tlb import Organization
from repro.runner import BatchRunner, JobSpec, TraceStore

PARAMS = MachineParams.scaled_down(factor=256, nodes=2, page_size=256)
WORKLOADS = ("radix", "fft")
SIZES = (8, 32, 128)
ORGS = (
    Organization.FULLY_ASSOCIATIVE,
    Organization.SET_ASSOCIATIVE,
    Organization.DIRECT_MAPPED,
)
MAX_REFS = 500


def specs() -> list:
    return [
        JobSpec.sweep(
            PARAMS, name, sizes=SIZES, orgs=ORGS,
            max_refs_per_node=MAX_REFS,
            overrides={"intensity": 0.2}, label=name,
        )
        for name in WORKLOADS
    ]


def main() -> int:
    kernels = "pure-python" if get_numpy() is None else "numpy"
    print(f"replay equivalence check ({kernels} kernels)", flush=True)

    with tempfile.TemporaryDirectory(prefix="repro-equiv-traces-") as tmp:
        store = TraceStore(root=tmp)
        replayed = BatchRunner(jobs=1, trace_store=store, replay=True).run(specs())
        # Re-run against the store so the on-disk round trip is on the path.
        reloaded = BatchRunner(jobs=1, trace_store=store, replay=True).run(specs())
        scalar = BatchRunner(jobs=1, replay=False).run(specs())

    failures = []
    for fast, disk, slow in zip(replayed, reloaded, scalar):
        name = fast.spec.label
        fast_study = fast.summary.study_results()
        slow_study = slow.summary.study_results()
        for scheme in SCHEME_ORDER:
            tap = TAP_OF_SCHEME[scheme]
            for size in SIZES:
                for org in ORGS:
                    want = slow_study.misses(tap, size, org)
                    got = fast_study.misses(tap, size, org)
                    if got != want:
                        failures.append(
                            f"{name}: {scheme.value} {size}{org.suffix or '/FA'} "
                            f"replay={got} scalar={want}"
                        )
        if fast.summary.to_dict() != slow.summary.to_dict():
            failures.append(f"{name}: hierarchy summary diverged")
        if disk.summary.to_dict() != fast.summary.to_dict():
            failures.append(f"{name}: on-disk trace replay diverged from in-memory")

    checked = len(WORKLOADS) * len(SCHEME_ORDER) * len(SIZES) * len(ORGS)
    if failures:
        print(f"FAIL: {len(failures)} mismatches out of {checked} design points:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"OK: {checked} design points bit-identical (plus summaries and disk round-trip)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
