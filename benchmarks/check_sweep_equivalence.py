"""CI gate: the compiled sweep engine must match the scalar oracle.

Run as a script::

    PYTHONPATH=src python benchmarks/check_sweep_equivalence.py

Executes a grid of uncoupled miss-rate sweeps — several workloads
(lock-heavy RAYTRACE included), fully-/set-associative and
direct-mapped banks, with and without ``max_refs_per_node``
truncation — three ways per case: the compiled sweep engine
(capture mode + one ``fs_bank_run`` per recorded stream), the scalar
reference engine (``fast=False``), and the record/replay pipeline
(``JobSpec.execute(replay=True)``, whose capture half also rides the
compiled engine).  Every pair of :class:`RunSummary` serializations
must be bit-identical — every tap's miss count at every size ×
organization (which covers all five schemes: each scheme reads its
miss rate off one tap), time breakdowns, counters, histograms.  The
only allowed difference is the engine-provenance pair
(``backend``/``fallback_reason``).

The check honours ``REPRO_NO_NUMPY`` and ``REPRO_NO_NUMBA``, so the CI
matrix runs it against every kernel/backend combination.  When the
compiled backend is unavailable both passes run scalar; the check then
degrades to a determinism check and says so.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import MachineParams, make_workload
from repro.analysis import run_miss_sweep
from repro.core.replay import get_numpy
from repro.core.timing_kernels import backend_status
from repro.core.tlb import Organization
from repro.runner import JobSpec
from repro.runner.summary import RunSummary

PARAMS = MachineParams.scaled_down(factor=64, nodes=4, page_size=256)

FA = Organization.FULLY_ASSOCIATIVE
SA = Organization.SET_ASSOCIATIVE
DM = Organization.DIRECT_MAPPED

#: (workload, intensity, sizes, orgs, max_refs_per_node)
CASES = (
    ("radix", 0.3, (8, 32, 128), (FA, SA, DM), 400),
    ("raytrace", 0.5, (8, 32), (FA, DM), 400),
    ("fft", 0.3, (8, 64), (FA, SA), None),
    ("ocean", 0.2, (16, 128), (SA, DM), 300),
)


def comparable(summary) -> dict:
    """The run's full serialized surface minus the engine tags."""
    payload = summary.to_dict()
    payload.pop("backend", None)
    payload.pop("fallback_reason", None)
    return payload


def main() -> int:
    kernels = "pure-python" if get_numpy() is None else "numpy"
    status = backend_status()
    print(f"sweep equivalence check ({kernels} kernels, "
          f"compiled backend: {status})", flush=True)

    failures = []
    checked = 0
    compiled_runs = 0
    for name, intensity, sizes, orgs, max_refs in CASES:
        label = (f"{name}@{intensity}/{'x'.join(str(s) for s in sizes)}"
                 f"{f'/refs={max_refs}' if max_refs else ''}")
        fast = RunSummary.from_result(
            run_miss_sweep(
                PARAMS, make_workload(name, intensity=intensity),
                sizes=sizes, orgs=orgs, max_refs_per_node=max_refs,
            )
        )
        scalar = RunSummary.from_result(
            run_miss_sweep(
                PARAMS, make_workload(name, intensity=intensity),
                sizes=sizes, orgs=orgs, max_refs_per_node=max_refs,
                fast=False,
            )
        )
        spec = JobSpec.sweep(
            PARAMS, name, sizes=sizes, orgs=orgs,
            max_refs_per_node=max_refs, overrides={"intensity": intensity},
        )
        replayed = spec.execute(replay=True)
        checked += 1
        compiled_runs += fast.backend == "compiled"
        oracle = comparable(scalar)
        if comparable(fast) != oracle:
            failures.append(f"{label}: fast ({fast.backend}) != scalar")
        if comparable(replayed) != oracle:
            failures.append(f"{label}: replay ({replayed.backend}) != scalar")

    if failures:
        print(f"FAIL: {len(failures)} of {checked} cases diverged:")
        for line in failures:
            print(f"  {line}")
        return 1
    if compiled_runs == 0:
        print(f"OK (degraded): {checked} scalar sweeps deterministic (replay "
              f"included), but the compiled backend never ran ({status})")
    else:
        print(f"OK: {checked} sweep cases bit-identical across "
              f"fast/scalar/replay ({compiled_runs} on the compiled engine)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
