"""CI gate: the compiled timing fast path must match the scalar oracle.

Run as a script::

    PYTHONPATH=src python benchmarks/check_timing_equivalence.py

Executes a grid of coupled timing runs — every translation scheme,
fully-associative and direct-mapped structures, a sync-heavy workload
mix (RAYTRACE's lock contention included), with and without
``max_refs_per_node`` truncation — twice: once preferring the compiled
columnar engine and once forced onto the scalar reference engine
(``fast=False``).  Every pair of :class:`RunSummary` serializations
must be bit-identical (total time, per-node breakdowns, all counters,
TLB/DLB statistics, latency histograms); the only allowed difference
is the ``backend`` tag itself.

The check honours ``REPRO_NO_NUMPY`` and ``REPRO_NO_NUMBA``, so the CI
matrix runs it against every kernel/backend combination.  When the
compiled backend is unavailable (missing gcc/cffi, or ``REPRO_NO_NUMBA``
set) both passes run scalar; the check then degrades to a determinism
check and says so — still worth running, but the compiled legs are the
ones that prove the tentpole contract.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import MachineParams, Scheme, make_workload
from repro.analysis import run_timing
from repro.core.replay import get_numpy
from repro.core.schemes import SCHEME_ORDER
from repro.core.timing_kernels import backend_status
from repro.core.tlb import Organization
from repro.runner.summary import RunSummary

PARAMS = MachineParams.scaled_down(factor=64, nodes=4, page_size=256)
#: (workload, intensity, entries, organization, max_refs_per_node)
CASES = (
    ("radix", 0.3, 8, Organization.FULLY_ASSOCIATIVE, None),
    ("raytrace", 0.5, 8, Organization.FULLY_ASSOCIATIVE, None),
    ("raytrace", 0.5, 8, Organization.DIRECT_MAPPED, 300),
    ("ocean", 0.2, 16, Organization.FULLY_ASSOCIATIVE, 250),
)


def comparable(result) -> dict:
    """The run's full serialized surface minus the engine tags."""
    payload = RunSummary.from_result(result).to_dict()
    payload.pop("backend", None)
    payload.pop("fallback_reason", None)
    return payload


def main() -> int:
    kernels = "pure-python" if get_numpy() is None else "numpy"
    status = backend_status()
    print(f"timing equivalence check ({kernels} kernels, "
          f"timing backend: {status})", flush=True)

    failures = []
    checked = 0
    compiled_runs = 0
    for scheme in SCHEME_ORDER:
        for name, intensity, entries, org, max_refs in CASES:
            label = (f"{scheme.value}/{name}@{intensity}"
                     f"{org.suffix or '/FA'}"
                     f"{f'/refs={max_refs}' if max_refs else ''}")
            kwargs = dict(
                organization=org, max_refs_per_node=max_refs
            )
            fast = run_timing(
                PARAMS, scheme, make_workload(name, intensity=intensity),
                entries, **kwargs
            )
            scalar = run_timing(
                PARAMS, scheme, make_workload(name, intensity=intensity),
                entries, fast=False, **kwargs
            )
            checked += 1
            compiled_runs += fast.backend == "compiled"
            if comparable(fast) != comparable(scalar):
                failures.append(f"{label}: fast ({fast.backend}) != scalar")

    if failures:
        print(f"FAIL: {len(failures)} of {checked} runs diverged:")
        for line in failures:
            print(f"  {line}")
        return 1
    if compiled_runs == 0:
        print(f"OK (degraded): {checked} scalar runs deterministic, but the "
              f"compiled backend never ran ({status})")
    else:
        print(f"OK: {checked} timing runs bit-identical "
              f"({compiled_runs} on the compiled engine)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
