"""Benchmark-suite configuration.

The point of these benches is the tables/figures they regenerate, and
pytest's capture (plus pytest-benchmark's own hooks) would swallow them
for passing tests.  Benches queue their rendered artifacts through
``bench_common.report``; this conftest prints the whole collection in
the terminal summary, after pytest-benchmark's timing table.
"""

import bench_common


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not bench_common.REPORTS:
        return
    terminalreporter.section("regenerated paper artifacts")
    for block in bench_common.REPORTS:
        for line in block.splitlines() or [""]:
            terminalreporter.write_line(line)
