#!/usr/bin/env python3
"""Bring your own workload: a producer/consumer pipeline under all five
translation schemes.

Shows the public extension API: declare segments, write a per-node
stream generator, wrap both in :class:`repro.CustomWorkload`, and run it
through the analysis helpers like any built-in benchmark.  The example
workload is a software pipeline: node 0 produces records into a shared
ring, the other nodes consume and update their private accumulators —
a sharing pattern none of the SPLASH-2 clones covers.

Run:  python examples/custom_workload.py
"""

from repro import (
    CustomWorkload,
    MachineParams,
    SCHEME_ORDER,
    SegmentSpec,
    TAP_OF_SCHEME,
)
from repro.analysis import run_miss_sweep, run_timing
from repro.system.refs import READ, WRITE
from repro.vm.segments import SegmentKind


RECORD = 64  # bytes per ring record


def build_pipeline(params: MachineParams, records: int = 4000) -> CustomWorkload:
    ring_bytes = max(params.page_size * 64, 64 * 1024)

    segments = [SegmentSpec("ring", ring_bytes)]
    for node in range(params.nodes):
        segments.append(
            SegmentSpec(
                f"acc{node}",
                params.page_size * 4,
                kind=SegmentKind.PRIVATE,
                owner=node,
            )
        )

    def stream(node, ctx):
        ring = ctx.segment("ring")
        acc = ctx.segment(f"acc{node}")
        slots = ring.size // RECORD
        consumers = max(1, ctx.params.nodes - 1)
        if node == 0:
            # Producer: write records round the ring.
            for i in range(records):
                yield WRITE, ring.address((i % slots) * RECORD)
            yield 2, 0  # barrier
        else:
            # Consumer: read its share of the records, fold into the
            # private accumulator.
            for i in range(node - 1, records, consumers):
                yield READ, ring.address((i % slots) * RECORD)
                yield WRITE, acc.address((i * 8) % acc.size)
            yield 2, 0  # barrier

    return CustomWorkload(segments, stream, name="pipeline", think_cycles=5)


def main() -> None:
    params = MachineParams.scaled_down(factor=8, nodes=8, page_size=512)
    workload = build_pipeline(params)

    print("Translation misses for the custom pipeline (8-entry structures)")
    print("----------------------------------------------------------------")
    result = run_miss_sweep(params, workload, sizes=(8, 32, 128))
    study = result.study_results()
    for scheme in SCHEME_ORDER:
        tap = TAP_OF_SCHEME[scheme]
        row = "  ".join(
            f"{study.misses_per_node(tap, size):9.1f}" for size in (8, 32, 128)
        )
        print(f"  {scheme.value:8s} {row}")
    print("  (columns: 8 / 32 / 128 entries, misses per node)")
    print()

    print("Execution time per scheme (8-entry structures)")
    print("----------------------------------------------")
    for scheme in SCHEME_ORDER:
        run = run_timing(params, scheme, build_pipeline(params), entries=8)
        ratio = run.translation_overhead_ratio()
        print(
            f"  {scheme.value:8s} total {run.total_time:>11,} cycles, "
            f"translation/memory-stall {ratio * 100:5.2f}%"
        )


if __name__ == "__main__":
    main()
