#!/usr/bin/env python3
"""Generate the complete reproduction report in one call.

Runs every table and figure of the paper's evaluation on a scaled-down
machine and writes ``reproduction_report.md`` next to this script's
working directory.  Equivalent to ``python -m repro report``.

For a quick pass use fewer workloads or --no-figures via the CLI; the
full default run simulates a few million references and takes a few
minutes of CPU.

Run:  python examples/full_reproduction.py [out.md]
"""

import sys

from repro import MachineParams
from repro.analysis import write_report


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "reproduction_report.md"
    params = MachineParams.scaled_down(factor=8, nodes=8, page_size=512)
    print("Machine:")
    print(params.describe())
    print()
    print(f"Running the full evaluation (this takes a few minutes) ...")
    text = write_report(out, params=params)
    print(f"Wrote {out}: {len(text.splitlines())} lines, "
          f"{sum(1 for l in text.splitlines() if l.startswith('##'))} sections")


if __name__ == "__main__":
    main()
