#!/usr/bin/env python3
"""Why COMA before V-COMA?  (paper Section 2 / Figure 1)

The paper's path to V-COMA starts with a negative result: in a CC-NUMA,
placing the TLB at the home memory (SHARED-TLB) is unattractive because
"capacity misses are remote most of the time".  This example runs the
same workload on both machines — identical caches, latencies, network,
translation hardware — and shows:

* the attraction memory converting remote capacity misses into local
  hits (execution time and remote-stall comparison);
* the home translation stream shrinking (the AM filters it), which is
  why the shared-translation idea only becomes V-COMA-cheap in a COMA;
* per-reference latency distributions for both machines.

Run:  python examples/numa_vs_coma.py
"""

from repro import MachineParams, Scheme, Simulator, TapPoint, make_workload
from repro.numa import NumaMachine, SHARED_TLB
from repro.system.machine import Machine
from repro.system.taps import StudyAgent
from repro.core.tlb import Organization


def run(machine_cls, params, workload_name):
    agent = StudyAgent(params, sizes=(8, 32), orgs=(Organization.FULLY_ASSOCIATIVE,))
    machine = machine_cls(
        params, Scheme.V_COMA, make_workload(workload_name, intensity=0.2), agent=agent
    )
    return Simulator(machine).run()


def main() -> None:
    params = MachineParams.scaled_down(factor=8, nodes=8, page_size=512)
    workload = "ocean"
    print(f"Workload: {workload} (grid sweeps; working set >> SLC, << AM)\n")

    numa = run(NumaMachine, params, workload)
    coma = run(Machine, params, workload)

    print(f"{'':22s}{'CC-NUMA (SHARED-TLB)':>22s}{'V-COMA':>14s}")
    numa_b, coma_b = numa.average_breakdown(), coma.average_breakdown()
    print(f"{'total time (cycles)':22s}{numa.total_time:>22,}{coma.total_time:>14,}")
    print(f"{'remote stall / node':22s}{numa_b.rem_stall:>22,.0f}{coma_b.rem_stall:>14,.0f}")
    print(f"{'local stall / node':22s}{numa_b.loc_stall:>22,.0f}{coma_b.loc_stall:>14,.0f}")

    numa_home = numa.study_results()
    coma_home = coma.study_results()
    print(f"{'home lookups':22s}{numa_home.accesses(TapPoint.HOME):>22,}"
          f"{coma_home.accesses(TapPoint.HOME):>14,}")
    print(f"{'home misses (8-entry)':22s}{numa_home.misses(TapPoint.HOME, 8):>22,}"
          f"{coma_home.misses(TapPoint.HOME, 8):>14,}")

    speedup = numa.total_time / coma.total_time
    print(f"\nThe attraction memory makes the same program {speedup:.2f}x faster,")
    print("and leaves the shared home translation structure with "
          f"{coma_home.accesses(TapPoint.HOME) / max(1, numa_home.accesses(TapPoint.HOME)):.0%} "
          "of the NUMA home's lookup traffic.")

    print("\nLoad-latency distribution (V-COMA):")
    print(coma.read_latency_histogram().render())


if __name__ == "__main__":
    main()
