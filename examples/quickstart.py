#!/usr/bin/env python3
"""Quickstart: compare the five translation schemes on one workload.

Builds a small COMA machine (8 nodes with the paper's geometry scaled
down), runs the OCEAN-like workload once with the sweep instrument, and
prints the Figure 8-style miss curves plus a physical-COMA vs V-COMA
execution-time comparison.

Run:  python examples/quickstart.py
"""

from repro import MachineParams, Scheme, TapPoint, make_workload
from repro.analysis import (
    render_breakdown_bars,
    render_miss_curves,
    run_miss_sweep,
    run_timing,
)


def main() -> None:
    params = MachineParams.scaled_down(factor=8, nodes=8, page_size=512)
    print("Machine configuration")
    print("---------------------")
    print(params.describe())
    print()

    workload = make_workload("ocean")

    # ------------------------------------------------------------------
    # 1. One simulation, every translation point observed (Figure 8).
    # ------------------------------------------------------------------
    print("Sweeping TLB/DLB sizes over one OCEAN run ...")
    result = run_miss_sweep(
        params, workload, sizes=(8, 32, 128, 512), max_refs_per_node=8000
    )
    study = result.study_results()
    print(render_miss_curves("ocean", study))
    print()

    dlb8 = study.misses(TapPoint.HOME, 8)
    l0_512 = study.misses(TapPoint.L0, 512)
    print(f"An 8-entry shared DLB misses {dlb8} times;")
    print(f"per-node 512-entry L0 TLBs still miss {l0_512} times.")
    print()

    # ------------------------------------------------------------------
    # 2. Coupled timing: the physical COMA baseline vs V-COMA.
    # ------------------------------------------------------------------
    print("Timing runs (40-cycle translation miss penalty) ...")
    bars = {}
    for label, scheme in (("TLB/8", Scheme.L0_TLB), ("DLB/8", Scheme.V_COMA)):
        run = run_timing(
            params, scheme, make_workload("ocean"), entries=8, max_refs_per_node=8000
        )
        bars[label] = run.average_breakdown()
        ratio = run.translation_overhead_ratio()
        print(
            f"  {label:8s} total {run.total_time:>10,} cycles, "
            f"translation/memory-stall = {ratio * 100:5.2f}%"
        )
    print()
    print(render_breakdown_bars("ocean", bars, baseline_label="TLB/8"))


if __name__ == "__main__":
    main()
