#!/usr/bin/env python3
"""The RADIX sharing/prefetching effect (paper Section 5.2).

RADIX's permutation phase writes every node's keys into a shared,
distributed output array.  Per-node TLBs show "no clear significant
working set" at any size, while V-COMA's shared home-node DLBs load each
page translation once for all 8 writers — the paper's sharing and
prefetching effects.  This script quantifies both, then shows Table 3's
"equivalent TLB size" for the 8-entry DLB.

Run:  python examples/radix_sharing_effect.py
"""

import math

from repro import MachineParams, Scheme, TAP_OF_SCHEME, TapPoint, make_workload
from repro.analysis import equivalent_tlb_size, run_miss_sweep


def main() -> None:
    params = MachineParams.scaled_down(factor=8, nodes=8, page_size=512)
    workload = make_workload("radix")

    print("Running RADIX sweep ...")
    result = run_miss_sweep(
        params, workload, sizes=(8, 32, 128, 512), max_refs_per_node=12000
    )
    study = result.study_results()

    print()
    print("misses per node   L0-TLB     L3-TLB     V-COMA DLB")
    for size in (8, 32, 128, 512):
        l0 = study.misses_per_node(TapPoint.L0, size)
        l3 = study.misses_per_node(TapPoint.L3, size)
        dlb = study.misses_per_node(TapPoint.HOME, size)
        print(f"  {size:>4} entries  {l0:9.1f}  {l3:9.1f}  {dlb:9.1f}")

    print()
    flat = study.misses(TapPoint.L0, 8) / max(1, study.misses(TapPoint.L0, 128))
    steep = study.misses(TapPoint.HOME, 8) / max(1, study.misses(TapPoint.HOME, 128))
    print(f"L0-TLB misses drop only {flat:.1f}x from 8 to 128 entries (flat curve),")
    print(f"the DLB drops {steep:.1f}x (sharing turns capacity into coverage).")

    print()
    print("Table 3 for RADIX — TLB size equivalent to the 8-entry DLB:")
    target = study.misses(TapPoint.HOME, 8)
    for scheme in (Scheme.L0_TLB, Scheme.L1_TLB, Scheme.L2_TLB, Scheme.L3_TLB):
        size = equivalent_tlb_size(study, TAP_OF_SCHEME[scheme], target)
        shown = f">{max(study.sizes)}" if math.isinf(size) else f"{size:.0f}"
        print(f"  {scheme.value:8s} needs ~{shown} entries per node")


if __name__ == "__main__":
    main()
