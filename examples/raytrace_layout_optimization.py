#!/usr/bin/env python3
"""Virtual-address layout optimization in V-COMA (paper §5.3 and §6).

V-COMA removes the OS's control over page placement: a page's global set
is fixed by its virtual address.  The paper's RAYTRACE case study shows
both sides of that coin:

* the original ``raystruct`` padding aligns every node's ray-stack
  elements to 32 KB multiples, so all of them collide in the same global
  page sets — uneven pressure, conflict evictions, master injections,
  and inflated synchronization time (the V1 layout);
* simply re-aligning the padding to one page (the paper's ``DLB/8/V2``)
  spreads the stacks over consecutive page colors and recovers the time
  — a purely *virtual-layout* optimization, impossible in a physical
  COMA where the programmer cannot influence placement.

Run:  python examples/raytrace_layout_optimization.py
"""

from repro import MachineParams, Scheme
from repro.analysis import (
    pressure_profile,
    render_breakdown_bars,
    render_pressure_profile,
    run_timing,
)
from repro.workloads import RaytraceWorkload


def main() -> None:
    params = MachineParams.scaled_down(factor=8, nodes=8, page_size=512)

    print("Global-set pressure after preload")
    print("=================================")
    v1_profile = pressure_profile(params, RaytraceWorkload())
    v2_profile = pressure_profile(params, RaytraceWorkload.v2())
    print(render_pressure_profile("raytrace V1 (pathological padding)", v1_profile))
    print()
    print(render_pressure_profile("raytrace V2 (page-aligned padding)", v2_profile))
    print()

    print("Execution time under V-COMA (DLB/8)")
    print("===================================")
    bars = {}
    runs = {}
    for label, factory in (("DLB/8 (V1)", RaytraceWorkload), ("DLB/8/V2", RaytraceWorkload.v2)):
        # The pathology is bandwidth-borne (injection storms), so the
        # crossbar's port contention model is enabled.
        run = run_timing(
            params, Scheme.V_COMA, factory(), entries=8, max_refs_per_node=8000,
            contention=True,
        )
        runs[label] = run
        bars[label] = run.average_breakdown()
    print(render_breakdown_bars("raytrace", bars, baseline_label="DLB/8 (V1)"))
    print()

    v1, v2 = runs["DLB/8 (V1)"], runs["DLB/8/V2"]
    print(f"V1 total time : {v1.total_time:>12,} cycles")
    print(f"V2 total time : {v2.total_time:>12,} cycles "
          f"({(1 - v2.total_time / v1.total_time) * 100:.1f}% faster)")
    print(f"V1 injections : {v1.counters['injections']:>12,}")
    print(f"V2 injections : {v2.counters['injections']:>12,}")
    print(f"V1 net backlog : {v1.counters['contention_cycles']:>11,} contention cycles")
    print(f"V2 net backlog : {v2.counters['contention_cycles']:>11,} contention cycles")


if __name__ == "__main__":
    main()
