"""Setuptools shim.

Allows ``python setup.py develop`` on environments whose pip cannot do
PEP 660 editable installs (no ``wheel`` package, offline).  Normal
installs should use ``pip install -e .``.
"""

from setuptools import setup

setup()
