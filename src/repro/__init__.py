"""repro — a reproduction of *Options for Dynamic Address Translation in
COMAs* (Qiu & Dubois, 1998).

The library simulates a flat COMA multiprocessor under the paper's five
address-translation designs (L0/L1/L2/L3-TLB and V-COMA) and regenerates
every table and figure of the paper's evaluation.  Quick start::

    from repro import MachineParams, Scheme, TapPoint, make_workload
    from repro.analysis import run_miss_sweep

    params = MachineParams.scaled_down(factor=8, nodes=8, page_size=512)
    result = run_miss_sweep(params, make_workload("ocean"))
    study = result.study_results()
    print(study.curve(TapPoint.HOME))   # the V-COMA DLB miss curve

See README.md for the architecture overview and ``examples/`` for
runnable scenarios.
"""

from repro.common import (
    AddressLayout,
    CapacityError,
    ConfigurationError,
    Counters,
    MachineParams,
    ProtocolError,
    ReproError,
    TimeBreakdown,
    TranslationFault,
)
from repro.core import (
    DirectoryAddressSpace,
    DirectoryLookasideBuffer,
    Organization,
    SCHEME_ORDER,
    Scheme,
    TAP_OF_SCHEME,
    TapPoint,
    TranslationBank,
    TranslationBuffer,
)
from repro.obs import MetricsRegistry, PhaseTimer, Tracer
from repro.system import (
    Machine,
    RunResult,
    Simulator,
    StudyAgent,
    StudyResults,
    TimingAgent,
)
from repro.workloads import (
    PAPER_ORDER,
    WORKLOADS,
    CustomWorkload,
    SegmentSpec,
    Workload,
    make_workload,
)

__version__ = "1.9.0"

__all__ = [
    "AddressLayout",
    "CapacityError",
    "ConfigurationError",
    "Counters",
    "CustomWorkload",
    "DirectoryAddressSpace",
    "DirectoryLookasideBuffer",
    "Machine",
    "MachineParams",
    "MetricsRegistry",
    "Organization",
    "PAPER_ORDER",
    "PhaseTimer",
    "ProtocolError",
    "ReproError",
    "RunResult",
    "SCHEME_ORDER",
    "Scheme",
    "SegmentSpec",
    "Simulator",
    "StudyAgent",
    "StudyResults",
    "TAP_OF_SCHEME",
    "TapPoint",
    "TimeBreakdown",
    "TimingAgent",
    "Tracer",
    "TranslationBank",
    "TranslationBuffer",
    "TranslationFault",
    "WORKLOADS",
    "Workload",
    "__version__",
    "make_workload",
]
