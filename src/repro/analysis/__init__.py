"""Experiment harness: one entry point per paper table/figure.

``experiments`` runs the simulations; ``tables`` and ``figures`` render
paper-style text output.  Every benchmark in ``benchmarks/`` is a thin
wrapper over these functions, so the full evaluation can also be driven
programmatically (see ``examples/``).
"""

from repro.analysis.experiments import (
    equivalent_tlb_size,
    pressure_profile,
    run_execution_breakdown,
    run_miss_sweep,
    run_sweep_studies,
    run_timing,
    scheme_miss_rates,
    scheme_misses,
)
from repro.analysis.tables import (
    render_equivalent_size_table,
    render_miss_rate_table,
    render_overhead_table,
)
from repro.analysis.report import generate_report, write_report
from repro.analysis.traffic import WorkloadProfile, profile_workload
from repro.analysis.validation import Claim, ValidationReport, validate_reproduction
from repro.analysis.tag_overhead import render_tag_overhead_table, tag_overhead_increase
from repro.analysis.figures import (
    render_breakdown_bars,
    render_dm_vs_fa,
    render_miss_curves,
    render_pressure_profile,
)

__all__ = [
    "equivalent_tlb_size",
    "pressure_profile",
    "render_breakdown_bars",
    "render_dm_vs_fa",
    "render_equivalent_size_table",
    "render_miss_curves",
    "render_miss_rate_table",
    "render_overhead_table",
    "render_pressure_profile",
    "run_execution_breakdown",
    "run_miss_sweep",
    "run_sweep_studies",
    "run_timing",
    "Claim",
    "ValidationReport",
    "WorkloadProfile",
    "generate_report",
    "profile_workload",
    "render_tag_overhead_table",
    "scheme_miss_rates",
    "scheme_misses",
    "tag_overhead_increase",
    "validate_reproduction",
    "write_report",
]
