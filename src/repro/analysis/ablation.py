"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each ablation removes one
ingredient of V-COMA's advantage (or one modelling choice) and measures
what is lost.

* :func:`sharing_ablation` — disable DLB *sharing* by giving every
  requesting node its own private slice at each home (same entry count
  per structure).  The difference between shared and partitioned miss
  counts is precisely the sharing + prefetching contribution the paper
  describes qualitatively.
* :func:`writeback_bypass_ablation` — the paper suggests keeping
  physical pointers in a virtual SLC so writebacks bypass the L2 TLB;
  this measures the miss/stall difference with the bypass on and off.
* :func:`shootdown_scaling` — cost of one mapping/protection change as
  the node count grows: per-node-TLB schemes pay a machine-wide
  shootdown, V-COMA a constant home-side update (the paper's TLB
  consistency motivation, quantified).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.params import MachineParams
from repro.common.rng import make_rng
from repro.coma.protocol import TranslationAgent
from repro.core.schemes import Scheme
from repro.core.tlb import TranslationBuffer
from repro.system.machine import Machine
from repro.system.simulator import Simulator
from repro.vm.protection import ProtectionManager
from repro.workloads.base import Workload


class SharedVsPartitionedAgent(TranslationAgent):
    """Observes the home-node translation stream twice: once through a
    genuinely shared DLB per home, once through per-(home, requester)
    private slices of the same size."""

    def __init__(self, params: MachineParams, entries: int) -> None:
        self.params = params
        self.entries = entries
        node_bits = params.nodes.bit_length() - 1
        self._node_bits = node_bits
        self.shared = [
            TranslationBuffer(entries, rng=make_rng(params.seed, "abl-shared", h))
            for h in range(params.nodes)
        ]
        self.partitioned = {
            (h, r): TranslationBuffer(
                entries, rng=make_rng(params.seed, "abl-part", h, r)
            )
            for h in range(params.nodes)
            for r in range(params.nodes)
        }

    def at_home(self, home, vpn, for_ownership=False, injection=False, requester=None):
        key = vpn >> self._node_bits
        self.shared[home].access(key)
        if requester is not None:
            self.partitioned[(home, requester)].access(key)
        return 0

    @property
    def shared_misses(self) -> int:
        return sum(b.misses for b in self.shared)

    @property
    def partitioned_misses(self) -> int:
        return sum(b.misses for b in self.partitioned.values())

    @property
    def shared_accesses(self) -> int:
        return sum(b.accesses for b in self.shared)


def sharing_ablation(
    params: MachineParams,
    workload: Workload,
    entries: int = 8,
    max_refs_per_node: Optional[int] = None,
) -> Dict[str, int]:
    """Measure the sharing/prefetching contribution to the DLB's hit
    rate.  Returns shared vs partitioned miss counts over the same
    home-node stream; partitioned structures have P times the aggregate
    capacity, so any shared win is pure sharing."""
    agent = SharedVsPartitionedAgent(params, entries)
    machine = Machine(params, Scheme.V_COMA, workload, agent=agent)
    Simulator(machine, max_refs_per_node=max_refs_per_node).run()
    return {
        "entries": entries,
        "accesses": agent.shared_accesses,
        "shared_misses": agent.shared_misses,
        "partitioned_misses": agent.partitioned_misses,
    }


def writeback_bypass_ablation(
    params: MachineParams,
    workload_factory,
    entries: int = 8,
    max_refs_per_node: Optional[int] = None,
) -> Dict[str, object]:
    """L2-TLB with and without the writeback bypass (physical pointers
    stored in the SLC).  Returns both runs' translation statistics."""
    from repro.analysis.experiments import run_timing

    with_wb = run_timing(
        params,
        Scheme.L2_TLB,
        workload_factory(),
        entries,
        include_l2_writebacks=True,
        max_refs_per_node=max_refs_per_node,
    )
    bypass = run_timing(
        params,
        Scheme.L2_TLB,
        workload_factory(),
        entries,
        include_l2_writebacks=False,
        max_refs_per_node=max_refs_per_node,
    )
    return {
        "with_writebacks": with_wb,
        "bypass": bypass,
        "stall_saved": (
            with_wb.aggregate_breakdown().tlb_stall
            - bypass.aggregate_breakdown().tlb_stall
        ),
    }


def shootdown_scaling(
    node_counts: Iterable[int],
    base_params: Optional[MachineParams] = None,
) -> List[Tuple[int, int, int]]:
    """Cost of one mapping change vs node count.

    Returns ``(nodes, tlb_scheme_cost, vcoma_cost)`` tuples.  Uses the
    protection manager's cost model only (no workload needed).
    """
    from repro.workloads.custom import CustomWorkload
    from repro.workloads.base import SegmentSpec

    rows = []
    for nodes in node_counts:
        params = (base_params or MachineParams.scaled_down(factor=32, page_size=256)).replace(
            nodes=nodes
        )
        noop = CustomWorkload(
            [SegmentSpec("data", params.page_size * 4)],
            lambda node, ctx: iter(()),
            name="noop",
        )
        tlb_machine = Machine(params, Scheme.L0_TLB, noop)
        vcoma_machine = Machine(params, Scheme.V_COMA, noop)
        rows.append(
            (
                nodes,
                ProtectionManager(tlb_machine).mapping_change_cost(),
                ProtectionManager(vcoma_machine).mapping_change_cost(),
            )
        )
    return rows
