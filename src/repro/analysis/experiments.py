"""Experiment runners for the paper's evaluation section.

Two kinds of runs:

* **sweep runs** (:func:`run_miss_sweep`) — one simulation per workload
  with a :class:`~repro.system.taps.StudyAgent`, yielding translation
  miss counts for every (tap, size, organization) point at once.  Feeds
  Figures 8 and 9 and Tables 2 and 3.  This is the *reference* path;
  batched sweeps normally run through the record-once/replay-many
  pipeline instead (:mod:`repro.system.taptrace`), which records the
  hierarchy's tap streams once and replays every bank configuration
  from the recording with vectorized kernels — bit-identical miss
  counts, a fraction of the wall clock.
* **timing runs** (:func:`run_timing`) — coupled simulations where one
  real TLB/DLB charges its 40-cycle penalty.  Feeds Table 4 and
  Figure 10.  Never replayed: the penalty perturbs the interleaving,
  so each design point is its own simulation.

Figure 11's pressure profile needs no reference simulation at all: the
profile is fixed by the preloaded page placement
(:func:`pressure_profile`).

Grid-shaped experiments (:func:`run_sweep_studies`,
:func:`run_execution_breakdown`) go through
:class:`~repro.runner.batch.BatchRunner`, so callers can shard them
across worker processes, reuse the persistent result cache, (for
sweeps) share recorded traces via the runner's
:class:`~repro.runner.traces.TraceStore`, and inherit the runner's
fault-tolerant supervision — retries, per-job timeouts, keep-going
failure capture, and manifest-based resume (``docs/robustness.md``).
A keep-going runner omits failed workloads from these helpers' return
values; the runner's :class:`~repro.runner.summary.GridStats` records
what was lost.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from repro.common.params import MachineParams
from repro.core.schemes import SCHEME_ORDER, Scheme, TAP_OF_SCHEME, TapPoint
from repro.core.tlb import Organization
from repro.system.machine import Machine
from repro.system.results import RunResult
from repro.system.simulator import Simulator
from repro.system.taps import DEFAULT_SWEEP_ORGS, DEFAULT_SWEEP_SIZES, StudyAgent, StudyResults
from repro.workloads.base import Workload


def run_miss_sweep(
    params: MachineParams,
    workload: Workload,
    sizes: Iterable[int] = DEFAULT_SWEEP_SIZES,
    orgs: Iterable[Organization] = DEFAULT_SWEEP_ORGS,
    max_refs_per_node: Optional[int] = None,
    tracer=None,
    fast: bool = True,
    stream_key: Optional[str] = None,
) -> RunResult:
    """Simulate once, observing every translation point.

    The machine is configured as V-COMA (virtual caches and attraction
    memory) because the tap streams of every scheme can be read off that
    one hierarchy: L0/L1/L2 sit above the AM and are identical in all
    schemes, L3's stream is the AM miss stream, and HOME is the
    home-node directory-lookup stream.  ``result.study_results()``
    exposes the sweep surface.  An optional
    :class:`~repro.obs.trace.Tracer` records the run's span/event
    stream.

    ``fast=False`` forces the scalar reference engine; the default
    prefers the compiled sweep fast path (capture mode + one
    ``fs_bank_run`` per recorded tap stream) when the run is eligible —
    bit-identical either way, with ``result.backend`` recording which
    engine ran.  ``stream_key`` (a workload identity such as
    ``JobSpec.trace_hash()``) lets grid runs share materialized columns
    through the stream LRU.
    """
    agent = StudyAgent(params, sizes=sizes, orgs=orgs)
    machine = Machine(params, Scheme.V_COMA, workload, agent=agent, tracer=tracer)
    return Simulator(
        machine, max_refs_per_node=max_refs_per_node, fast=fast, stream_key=stream_key
    ).run()


def run_timing(
    params: MachineParams,
    scheme: Scheme,
    workload: Workload,
    entries: int,
    organization: Organization = Organization.FULLY_ASSOCIATIVE,
    include_l2_writebacks: bool = True,
    max_refs_per_node: Optional[int] = None,
    contention: bool = False,
    tracer=None,
    fast: bool = True,
    stream_key: Optional[str] = None,
) -> RunResult:
    """Coupled run: one real translation structure, penalties charged.

    ``contention`` enables the crossbar's input-port serialization —
    needed by experiments whose effect is bandwidth-borne (RAYTRACE's
    padding pathology floods the network with master injections, which
    a latency-only model would hand out for free).  An optional
    :class:`~repro.obs.trace.Tracer` records one span per reference and
    protocol transaction plus TLB/DLB hit/fill events.

    ``fast=False`` forces the scalar reference engine; the default
    prefers the compiled columnar fast path when this run is eligible
    (bit-identical either way — ``result.backend`` records which engine
    ran; see ``docs/performance.md``).
    """
    from repro.system.taps import TimingAgent

    agent = TimingAgent(
        params,
        scheme,
        entries,
        organization=organization,
        include_l2_writebacks=include_l2_writebacks,
    )
    machine = Machine(
        params, scheme, workload, agent=agent, contention=contention, tracer=tracer
    )
    return Simulator(
        machine, max_refs_per_node=max_refs_per_node, fast=fast, stream_key=stream_key
    ).run()


def _default_runner(runner):
    """The caller's runner, or a fresh serial, cache-less one."""
    if runner is not None:
        return runner
    from repro.runner import BatchRunner

    return BatchRunner(jobs=1, cache=None)


def run_sweep_studies(
    params: MachineParams,
    workloads: Iterable[str],
    sizes: Iterable[int] = DEFAULT_SWEEP_SIZES,
    orgs: Iterable[Organization] = DEFAULT_SWEEP_ORGS,
    intensities: Optional[Dict[str, float]] = None,
    max_refs_per_node: Optional[int] = None,
    runner=None,
) -> Dict[str, StudyResults]:
    """One miss sweep per workload, batched through the runner.

    Feeds every sweep-backed artifact (Tables 2/3, Figures 8/9); with a
    parallel, cache-backed runner the whole grid shards across workers
    and warm invocations simulate nothing.  Each sweep records its
    hierarchy once and replays every ``(size, org)`` bank from the
    recording (see :meth:`JobSpec.execute`); a runner with a trace
    store reuses recordings across different bank grids too.
    """
    from repro.runner import JobSpec

    runner = _default_runner(runner)
    intensities = intensities or {}
    names = list(workloads)
    specs = []
    for name in names:
        overrides = {}
        if name in intensities:
            overrides["intensity"] = intensities[name]
        specs.append(
            JobSpec.sweep(
                params,
                name,
                sizes=sizes,
                orgs=orgs,
                max_refs_per_node=max_refs_per_node,
                overrides=overrides,
                label=name,
            )
        )
    jobs = runner.run(specs)
    # A runner in keep_going mode returns JobFailure entries for jobs
    # that exhausted their retries; those workloads are simply absent
    # from the result (runner.stats records them).
    return {
        name: job.summary.study_results()
        for name, job in zip(names, jobs)
        if job.ok
    }


def run_execution_breakdown(
    params: MachineParams,
    workload_factory,
    entries: int = 8,
    max_refs_per_node: Optional[int] = None,
    include_v2: bool = False,
    runner=None,
) -> Dict[str, "RunResult"]:
    """Figure 10's bar set for one benchmark.

    Runs ``TLB/n`` (L0-TLB, the physical COMA baseline), ``TLB/n/DM``,
    ``DLB/n`` (V-COMA) and ``DLB/n/DM``; with ``include_v2`` adds
    ``DLB/n/V2`` using the workload's ``v2`` variant (RAYTRACE's
    page-aligned padding).  ``workload_factory`` is the workload class
    or its registry name.  The bars execute through the (optionally
    parallel, cached) runner and come back as
    :class:`~repro.runner.summary.RunSummary` objects, which expose the
    same breakdown surface as :class:`RunResult`.
    """
    from repro.runner import JobSpec

    runner = _default_runner(runner)
    name = workload_factory if isinstance(workload_factory, str) else workload_factory.name
    combos = [
        (f"TLB/{entries}", Scheme.L0_TLB, Organization.FULLY_ASSOCIATIVE, None),
        (f"TLB/{entries}/DM", Scheme.L0_TLB, Organization.DIRECT_MAPPED, None),
        (f"DLB/{entries}", Scheme.V_COMA, Organization.FULLY_ASSOCIATIVE, None),
        (f"DLB/{entries}/DM", Scheme.V_COMA, Organization.DIRECT_MAPPED, None),
    ]
    if include_v2:
        combos.append((f"DLB/{entries}/V2", Scheme.V_COMA, Organization.FULLY_ASSOCIATIVE, "v2"))
    specs = [
        JobSpec.timing(
            params,
            scheme,
            name,
            entries,
            organization=org,
            max_refs_per_node=max_refs_per_node,
            variant=variant,
            label=label,
        )
        for label, scheme, org, variant in combos
    ]
    # keep_going runners may return JobFailure bars; drop them (the
    # runner's stats record the loss) rather than plotting a hole.
    return {job.spec.label: job.summary for job in runner.run(specs) if job.ok}


def pressure_profile(
    params: MachineParams,
    workload: Workload,
    scheme: Scheme = Scheme.V_COMA,
) -> List[float]:
    """Figure 11: global-page-set pressure after preload (no references
    are simulated — placement alone determines the profile)."""
    machine = Machine(params, scheme, workload)
    return machine.pressure.profile()


# ----------------------------------------------------------------------
# Table 3: equivalent TLB size
# ----------------------------------------------------------------------
def equivalent_tlb_size(
    study: StudyResults,
    tap: TapPoint,
    target_misses: float,
    org: Organization = Organization.FULLY_ASSOCIATIVE,
) -> float:
    """The TLB size whose miss count matches ``target_misses``.

    Interpolates log-linearly (misses vs log size) along the sweep
    curve, as the paper's Table 3 does implicitly.  Returns
    ``math.inf`` when even the largest simulated TLB misses more than
    the target, and the smallest size when it already beats the target.
    """
    curve = study.curve(tap, org)
    if not curve:
        raise ValueError("empty sweep curve")
    smallest_size, smallest_misses = curve[0]
    if smallest_misses <= target_misses:
        return float(smallest_size)
    previous = curve[0]
    for size, misses in curve[1:]:
        if misses <= target_misses:
            prev_size, prev_misses = previous
            if prev_misses == misses:
                return float(size)
            # Linear in (log2 size, misses).
            span = prev_misses - misses
            frac = (prev_misses - target_misses) / span
            log_size = math.log2(prev_size) + frac * (math.log2(size) - math.log2(prev_size))
            return 2.0 ** log_size
        previous = (size, misses)
    return math.inf


def scheme_misses(
    study: StudyResults,
    scheme: Scheme,
    size: int,
    org: Organization = Organization.FULLY_ASSOCIATIVE,
) -> int:
    """Misses for one of the five schemes at one design point."""
    return study.misses(TAP_OF_SCHEME[scheme], size, org)


def scheme_miss_rates(
    study: StudyResults,
    size: int,
    org: Organization = Organization.FULLY_ASSOCIATIVE,
) -> Dict[Scheme, float]:
    """Table 2's row: miss rate per processor reference, per scheme."""
    return {
        scheme: study.miss_rate(TAP_OF_SCHEME[scheme], size, org)
        for scheme in SCHEME_ORDER
    }
