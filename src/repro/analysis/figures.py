"""Text renderings of the paper's figures (8, 9, 10 and 11).

Everything renders to plain text so benchmarks can print the series a
plotting tool (or a reader) needs; no plotting dependency is required
offline.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

from repro.common.stats import AverageBreakdown
from repro.core.schemes import TapPoint
from repro.core.tlb import Organization
from repro.system.taps import StudyResults

#: The lines of Figure 8, in legend order.
FIG8_TAPS: Tuple[Tuple[str, TapPoint], ...] = (
    ("L0-TLB", TapPoint.L0),
    ("L1-TLB", TapPoint.L1),
    ("L2-TLB", TapPoint.L2),
    ("L2-TLB/no_wback", TapPoint.L2_NO_WBACK),
    ("L3-TLB", TapPoint.L3),
    ("V-COMA", TapPoint.HOME),
)


def render_miss_curves(
    name: str,
    study: StudyResults,
    org: Organization = Organization.FULLY_ASSOCIATIVE,
    title: str = "Figure 8: Address Translation Misses vs. TLB/DLB Size",
) -> str:
    """One benchmark's panel of Figure 8: misses-per-node vs size."""
    sizes = sorted(study.sizes)
    header = f"{title} — {name.upper()}"
    lines = [header, "scheme".ljust(18) + "".join(f"{s:>12}" for s in sizes)]
    for label, tap in FIG8_TAPS:
        row = [label.ljust(18)]
        for size in sizes:
            row.append(f"{study.misses_per_node(tap, size, org):>12.1f}")
        lines.append("".join(row))
    return "\n".join(lines)


def render_dm_vs_fa(name: str, study: StudyResults) -> str:
    """Figure 9: direct-mapped vs fully-associative miss counts."""
    sizes = sorted(study.sizes)
    lines = [
        f"Figure 9: Direct Mapped vs Fully Associative — {name.upper()}",
        "scheme".ljust(22) + "".join(f"{s:>12}" for s in sizes),
    ]
    for label, tap in FIG8_TAPS:
        if tap is TapPoint.L2_NO_WBACK:
            continue
        for org in (Organization.DIRECT_MAPPED, Organization.FULLY_ASSOCIATIVE):
            row = [(label + org.suffix).ljust(22)]
            for size in sizes:
                row.append(f"{study.misses_per_node(tap, size, org):>12.1f}")
            lines.append("".join(row))
    return "\n".join(lines)


#: Figure 10 stacking order (bottom to top in the paper's bars).
BREAKDOWN_COMPONENTS = ("busy", "loc_stall", "rem_stall", "tlb_stall", "sync")


def render_breakdown_bars(
    name: str,
    breakdowns: Mapping[str, AverageBreakdown],
    baseline_label: str,
    width: int = 50,
) -> str:
    """Figure 10: execution-time bars normalized to a baseline config."""
    baseline = breakdowns[baseline_label]
    lines = [f"Figure 10: Execution Time — {name.upper()} (normalized to {baseline_label})"]
    glyphs = {"busy": "B", "loc_stall": "l", "rem_stall": "r", "tlb_stall": "T", "sync": "s"}
    for label, breakdown in breakdowns.items():
        normalized = breakdown.normalized_to(baseline)
        bar = "".join(
            glyphs[comp] * max(0, round(normalized[comp] * width))
            for comp in BREAKDOWN_COMPONENTS
        )
        lines.append(f"{label.ljust(14)} {normalized['total']:6.3f} |{bar}")
    lines.append(
        "legend: B=busy  l=local stall  r=remote stall  T=translation  s=sync"
    )
    return "\n".join(lines)


def render_pressure_profile(
    name: str,
    profile: Sequence[float],
    width: int = 40,
    max_rows: int = 32,
) -> str:
    """Figure 11: pressure per global page set as a horizontal bar list.

    Long profiles are bucketed down to ``max_rows`` rows (mean pressure
    per bucket) so the rendering stays readable.
    """
    lines = [f"Figure 11: Pressure Profile — {name.upper()}"]
    count = len(profile)
    if count == 0:
        return lines[0] + "\n(empty profile)"
    if count > max_rows:
        bucket = -(-count // max_rows)
        rows = [
            (f"{i}-{min(i + bucket, count) - 1}", sum(profile[i : i + bucket]) / len(profile[i : i + bucket]))
            for i in range(0, count, bucket)
        ]
    else:
        rows = [(str(i), p) for i, p in enumerate(profile)]
    peak = max(p for _, p in rows) or 1.0
    for label, pressure in rows:
        bar = "#" * round(pressure / peak * width)
        lines.append(f"set {label:>9}  {pressure:6.3f} |{bar}")
    mean = sum(profile) / count
    lines.append(f"mean={mean:.3f} max={max(profile):.3f} min={min(profile):.3f}")
    return "\n".join(lines)
