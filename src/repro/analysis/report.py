"""One-shot reproduction report.

:func:`generate_report` runs the paper's complete evaluation — every
table and figure plus the extension ablations — at a chosen scale and
renders a single markdown document.  ``python -m repro report`` wraps
it; ``examples/full_reproduction.py`` shows programmatic use.

The simulation grid (one sweep per workload plus the Table 4 / Figure
10 timing matrix) executes through a
:class:`~repro.runner.batch.BatchRunner`: pass ``jobs=N`` to shard it
across worker processes and ``cache=ResultCache(...)`` to make repeat
invocations simulation-free.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from repro.analysis.experiments import pressure_profile
from repro.analysis.figures import (
    render_breakdown_bars,
    render_dm_vs_fa,
    render_miss_curves,
    render_pressure_profile,
)
from repro.analysis.tables import (
    render_equivalent_size_table,
    render_miss_rate_table,
    render_overhead_table,
)
from repro.analysis.tag_overhead import render_tag_overhead_table
from repro.common.params import MachineParams
from repro.core.schemes import Scheme
from repro.core.tlb import Organization
from repro.workloads import PAPER_ORDER, make_workload

#: Default per-workload intensities for the report scale (mirrors the
#: benchmark harness: complete streams of roughly equal length).
DEFAULT_INTENSITY = {
    "radix": 0.45,
    "fft": 0.25,
    "fmm": 1.0,
    "ocean": 0.2,
    "raytrace": 3.0,
    "barnes": 1.0,
}


def _fence(text: str) -> str:
    return "```\n" + text + "\n```"


def generate_report(
    params: Optional[MachineParams] = None,
    workloads: Iterable[str] = PAPER_ORDER,
    sizes: Iterable[int] = (8, 32, 128, 512),
    intensities: Optional[Dict[str, float]] = None,
    include_figures: bool = True,
    jobs: int = 1,
    cache=None,
    progress=None,
    trace_store=None,
    replay: bool = True,
    runner=None,
    metrics_out: Optional[str] = None,
    history_dir: Optional[str] = None,
) -> str:
    """Run the full evaluation and return the report as markdown.

    Pass ``runner`` (a configured :class:`BatchRunner`) to control
    supervision — retries, timeouts, ``keep_going``, resume; the
    ``jobs``/``cache``/... kwargs remain as a shorthand that builds a
    default runner.  Under ``keep_going`` a workload with any failed
    job is dropped from every artifact and listed in a closing
    *Failed jobs* section instead of aborting the report.

    ``metrics_out`` writes the report's own telemetry — per-phase wall
    time and throughput plus the runner's supervision counters — as a
    metrics file (OpenMetrics text or JSON, chosen by extension; see
    :func:`repro.obs.export.write_metrics`).

    ``history_dir`` additionally appends this report's wall time and
    per-phase throughput to the run-history store
    (:class:`~repro.obs.history.RunHistory`, keyed by the report
    configuration) and renders the rolling-median regression check in
    the Telemetry section.
    """
    from repro.obs import MetricsRegistry, PhaseTimer
    from repro.runner import BatchRunner, JobSpec

    params = params or MachineParams.scaled_down(factor=8, nodes=8, page_size=512)
    intensities = dict(DEFAULT_INTENSITY, **(intensities or {}))
    workloads = list(workloads)
    sizes = tuple(sizes)
    started = time.time()
    registry = MetricsRegistry()
    timer = PhaseTimer(registry)
    if runner is None:
        runner = BatchRunner(
            jobs=jobs, cache=cache, progress=progress,
            trace_store=trace_store, replay=replay,
        )

    def workload_for(name: str):
        return make_workload(name, intensity=intensities.get(name, 1.0))

    def overrides_for(name: str):
        return {"intensity": intensities.get(name, 1.0)}

    sections: List[str] = []
    sections.append("# Reproduction report — Dynamic Address Translation in COMAs")
    sections.append(
        "Machine configuration:\n\n" + _fence(params.describe())
    )

    # ------------------------------------------------------------------
    # the whole simulation grid, in one batch: per-workload sweeps
    # (figures 8/9, tables 2/3), the timing matrix (table 4, figure 10),
    # and raytrace's contention-enabled bars — all independent jobs, so
    # one runner call shards them across every worker at once.
    # ------------------------------------------------------------------
    orgs = (Organization.FULLY_ASSOCIATIVE, Organization.DIRECT_MAPPED)
    specs = [
        JobSpec.sweep(
            params, name, sizes=sizes, orgs=orgs,
            overrides=overrides_for(name), label=f"sweep:{name}",
        )
        for name in workloads
    ]
    for entries in (8, 16):
        for prefix, scheme in ((f"L0-TLB/{entries}", Scheme.L0_TLB), (f"DLB/{entries}", Scheme.V_COMA)):
            specs.extend(
                JobSpec.timing(
                    params, scheme, name, entries,
                    overrides=overrides_for(name), label=f"{prefix}:{name}",
                )
                for name in workloads
            )
    contention_specs = []
    if include_figures and "raytrace" in workloads:
        # The padding pathology is bandwidth-borne: these three bars
        # run with port contention enabled.
        for label, scheme, variant in (
            ("TLB/8", Scheme.L0_TLB, None),
            ("DLB/8", Scheme.V_COMA, None),
            ("DLB/8/V2", Scheme.V_COMA, "v2"),
        ):
            contention_specs.append(
                JobSpec.timing(
                    params, scheme, "raytrace", 8, contention=True,
                    overrides=overrides_for("raytrace"), variant=variant,
                    label=f"raytrace-contention:{label}",
                )
            )
    with timer.phase("grid") as grid_phase:
        outcomes = runner.run(specs + contention_specs)
        grid_phase.add_items(len(outcomes))
    failures = [job for job in outcomes if not job.ok]
    finished = {job.spec.label: job.summary for job in outcomes if job.ok}

    # Under keep_going a failed job drops its workload from every
    # artifact — a partial row would misrender each table — and the
    # failure is reported in its own section below.
    def _labels_for(name: str) -> List[str]:
        labels = [f"sweep:{name}"]
        for entries in (8, 16):
            for prefix in (f"L0-TLB/{entries}", f"DLB/{entries}"):
                labels.append(f"{prefix}:{name}")
        return labels

    workloads = [
        name for name in workloads
        if all(label in finished for label in _labels_for(name))
    ]
    contention_ok = all(
        spec.label in finished for spec in contention_specs
    )

    studies = {name: finished[f"sweep:{name}"].study_results() for name in workloads}
    timing_cache = {
        (label, name): finished[f"{label}:{name}"]
        for entries in (8, 16)
        for label in (f"L0-TLB/{entries}", f"DLB/{entries}")
        for name in workloads
    }

    with timer.phase("render") as render_phase:
        if include_figures:
            sections.append("## Figure 8 — translation misses vs TLB/DLB size")
            for name in workloads:
                sections.append(_fence(render_miss_curves(name, studies[name])))
            sections.append("## Figure 9 — direct-mapped vs fully-associative")
            for name in workloads:
                sections.append(_fence(render_dm_vs_fa(name, studies[name])))

        sections.append("## Table 2 — miss rates per processor reference (%)")
        sections.append(_fence(render_miss_rate_table(studies, sizes=tuple(s for s in sizes if s <= 128))))

        sections.append("## Table 3 — TLB size equivalent to an 8-entry DLB")
        sections.append(_fence(render_equivalent_size_table(studies, dlb_entries=min(sizes))))
        render_phase.add_items(len(workloads))

    # ------------------------------------------------------------------
    # timing: table 4 and figure 10
    # ------------------------------------------------------------------
    rows = {}
    for entries in (8, 16):
        for label in (f"L0-TLB/{entries}", f"DLB/{entries}"):
            rows[label] = {name: timing_cache[(label, name)] for name in workloads}
    sections.append("## Table 4 — translation stall / memory stall (%)")
    sections.append(_fence(render_overhead_table(rows)))

    if include_figures:
        sections.append("## Figure 10 — execution-time breakdown (normalized to L0-TLB/8)")
        for name in workloads:
            if name == "raytrace" and contention_ok:
                bars = {
                    label: finished[f"raytrace-contention:{label}"].average_breakdown()
                    for label in ("TLB/8", "DLB/8", "DLB/8/V2")
                }
            else:
                bars = {
                    "TLB/8": timing_cache[("L0-TLB/8", name)].average_breakdown(),
                    "DLB/8": timing_cache[("DLB/8", name)].average_breakdown(),
                }
            sections.append(_fence(render_breakdown_bars(name, bars, baseline_label="TLB/8")))

    # ------------------------------------------------------------------
    # figure 11 and §6 extras
    # ------------------------------------------------------------------
    if include_figures:
        sections.append("## Figure 11 — global-set pressure profiles")
        with timer.phase("pressure") as pressure_phase:
            for name in workloads:
                profile = pressure_profile(params, workload_for(name))
                sections.append(_fence(render_pressure_profile(name, profile)))
            pressure_phase.add_items(len(workloads))

    sections.append("## §6 — virtual-tag memory overhead")
    sections.append(_fence(render_tag_overhead_table()))

    if failures:
        sections.append("## Failed jobs")
        lines = [job.describe() for job in failures]
        lines.append("")
        lines.append(runner.stats.render())
        sections.append(_fence("\n".join(lines)))

    sections.append("## Telemetry")
    telemetry_lines = [runner.stats.render(), runner.stats.render_telemetry()]
    if timer.phases:
        telemetry_lines.append(timer.render())
    if history_dir:
        from repro.obs.history import HistoryEntry, RunHistory, config_key

        key = config_key(
            {
                "report": {
                    "nodes": params.nodes,
                    "page_size": params.page_size,
                    "workloads": sorted(workloads),
                    "sizes": list(sizes),
                    "figures": bool(include_figures),
                }
            }
        )
        metrics = {"wall_seconds": round(time.time() - started, 3)}
        for entry in timer.phases:
            metrics[f"{entry['phase']}_seconds"] = round(entry["seconds"], 3)
            if "items_per_sec" in entry:
                metrics[f"{entry['phase']}_items_per_sec"] = round(
                    entry["items_per_sec"], 1
                )
        history = RunHistory(history_dir)
        history.append(HistoryEntry(key, metrics, kind="report"))
        check_lines = [
            f"run history: {key} ({len(history.entries(key=key))} entries)"
        ]
        for row in history.check(key):
            if row.get("baseline_median") is None:
                continue  # first entry for this configuration
            verdict = "ok" if row["ok"] else "REGRESSION"
            check_lines.append(
                f"  {row['metric']:<28} {verdict:<10} "
                f"latest={row['latest']:g} median={row['baseline_median']:g}"
            )
        telemetry_lines.append("\n".join(check_lines))
    sections.append(_fence("\n".join(telemetry_lines)))

    if metrics_out:
        from repro.obs.export import write_metrics

        runner.stats.to_metrics(registry)
        write_metrics(registry, metrics_out)

    elapsed = time.time() - started
    sections.append(
        f"*Generated in {elapsed:.1f} s of simulation on "
        f"{params.nodes} simulated nodes.*"
    )
    return "\n\n".join(sections) + "\n"


def write_report(path: str, **kwargs) -> str:
    """Generate the report and write it to ``path``; returns the text."""
    text = generate_report(**kwargs)
    with open(path, "w") as handle:
        handle.write(text)
    return text
