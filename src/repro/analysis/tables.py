"""Paper-style text tables (Tables 2, 3 and 4)."""

from __future__ import annotations

import math
from typing import List, Mapping, Sequence

from repro.core.schemes import SCHEME_ORDER, Scheme, TAP_OF_SCHEME
from repro.core.tlb import Organization
from repro.system.results import RunResult
from repro.system.taps import StudyResults
from repro.analysis.experiments import equivalent_tlb_size


def _format_rate(rate: float) -> str:
    percent = rate * 100.0
    if percent >= 0.01:
        return f"{percent:.2f}"
    if percent == 0.0:
        return "0"
    return f"{percent:.4f}"


def render_miss_rate_table(
    studies: Mapping[str, StudyResults],
    sizes: Sequence[int] = (8, 32, 128),
    org: Organization = Organization.FULLY_ASSOCIATIVE,
) -> str:
    """Table 2: TLB/DLB miss rates per processor reference (%).

    ``studies`` maps benchmark name -> sweep results; one row per
    benchmark, five scheme columns per size.
    """
    header_parts = ["SYSTEM".ljust(10)]
    for size in sizes:
        for scheme in SCHEME_ORDER:
            label = "V-COMA" if scheme is Scheme.V_COMA else scheme.value.split("-")[0]
            header_parts.append(f"{label}/{size}".rjust(10))
    lines = ["Table 2: TLB/DLB Miss Rates Per Processor Reference (%)", "".join(header_parts)]
    for name, study in studies.items():
        parts = [name.upper().ljust(10)]
        for size in sizes:
            for scheme in SCHEME_ORDER:
                rate = study.miss_rate(TAP_OF_SCHEME[scheme], size, org)
                parts.append(_format_rate(rate).rjust(10))
        lines.append("".join(parts))
    return "\n".join(lines)


def render_equivalent_size_table(
    studies: Mapping[str, StudyResults],
    dlb_entries: int = 8,
    org: Organization = Organization.FULLY_ASSOCIATIVE,
) -> str:
    """Table 3: TLB size equivalent to an ``dlb_entries``-entry DLB."""
    tlb_schemes = [s for s in SCHEME_ORDER if s is not Scheme.V_COMA]
    header = "BENCH".ljust(10) + "".join(s.value.rjust(10) for s in tlb_schemes)
    lines = [f"Table 3: TLB Size Equivalent to a {dlb_entries}-entry DLB", header]
    for name, study in studies.items():
        target = study.misses(TAP_OF_SCHEME[Scheme.V_COMA], dlb_entries, org)
        parts = [name.upper().ljust(10)]
        for scheme in tlb_schemes:
            size = equivalent_tlb_size(study, TAP_OF_SCHEME[scheme], target, org)
            if math.isinf(size):
                biggest = max(study.sizes)
                parts.append(f">{biggest}".rjust(10))
            else:
                parts.append(f"{size:.0f}".rjust(10))
        lines.append("".join(parts))
    return "\n".join(lines)


def render_overhead_table(
    rows: Mapping[str, Mapping[str, RunResult]],
) -> str:
    """Table 4: address translation time / total memory stall time (%).

    ``rows`` maps a configuration label (e.g. ``"L0-TLB/8"``) to
    ``{benchmark: RunResult}``.
    """
    benchmarks: List[str] = []
    for per_bench in rows.values():
        for name in per_bench:
            if name not in benchmarks:
                benchmarks.append(name)
    header = "CONFIG".ljust(12) + "".join(b.upper().rjust(10) for b in benchmarks)
    lines = ["Table 4: Address Translation Time / Total Stall Time (%)", header]
    for label, per_bench in rows.items():
        parts = [label.ljust(12)]
        for bench in benchmarks:
            result = per_bench.get(bench)
            if result is None:
                parts.append("-".rjust(10))
            else:
                parts.append(f"{result.translation_overhead_ratio() * 100:.2f}".rjust(10))
        lines.append("".join(parts))
    return "\n".join(lines)
