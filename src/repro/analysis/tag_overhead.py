"""Virtual-tag memory overhead (paper Section 6).

V-COMA tags the attraction memory with virtual addresses, which are
longer than physical ones: "32-bit PowerPC implements 52-bit virtual
address and 32-bit physical address; 64-bit PowerPC implements 80-bit
virtual address and 64-bit physical address.  Including the access right
bits, the virtual tag may [be] 2 to 3 bytes longer than physical tag.
This will increase the tag memory by 1.5% ~ 2.5% of the attraction
memory (assuming 128 byte block size), and 3% ~ 4.5% for 64 bytes, and
6% ~ 9% for 32 bytes cache block size."

:func:`tag_overhead` computes those numbers exactly, for any geometry,
so designers can evaluate the trade-off the paper flags (and the CAT
tag-compression mitigation's headroom).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: (virtual bits, physical bits) for the paper's two reference ISAs.
POWERPC_32 = (52, 32)
POWERPC_64 = (80, 64)


@dataclass(frozen=True)
class TagOverhead:
    """Tag storage for one addressing option, in bits per block."""

    tag_bits: int
    block_bytes: int

    @property
    def overhead_ratio(self) -> float:
        """Tag bits relative to block data bits."""
        return self.tag_bits / (self.block_bytes * 8)


def tag_bits(address_bits: int, block_bytes: int, sets: int, access_right_bits: int = 4) -> int:
    """Tag width for one cache block: address bits minus the block
    offset and set-index bits, plus per-block access-right bits (needed
    in virtually tagged levels, paper §2.2.4)."""
    offset_bits = (block_bytes - 1).bit_length()
    index_bits = (sets - 1).bit_length() if sets > 1 else 0
    return max(0, address_bits - offset_bits - index_bits) + access_right_bits


def extra_tag_bytes_per_block(
    virtual_bits: int,
    physical_bits: int,
    block_bytes: int,
    sets: int,
    access_right_bits: int = 4,
) -> float:
    """How many more tag *bytes* a virtual tag costs per block.

    The physical tag needs no access-right bits (rights are checked at
    the TLB); the virtual tag carries them.
    """
    virtual = tag_bits(virtual_bits, block_bytes, sets, access_right_bits)
    physical = tag_bits(physical_bits, block_bytes, sets, access_right_bits=0)
    return (virtual - physical) / 8.0


def tag_overhead_increase(
    virtual_bits: int,
    physical_bits: int,
    block_bytes: int,
    sets: int = 1,
    access_right_bits: int = 4,
) -> float:
    """The paper's §6 metric: extra tag memory as a fraction of the
    attraction memory's data capacity."""
    extra_bytes = extra_tag_bytes_per_block(
        virtual_bits, physical_bits, block_bytes, sets, access_right_bits
    )
    return extra_bytes / block_bytes


def paper_table(sets: int = 1) -> Dict[Tuple[str, int], float]:
    """Reproduce the paper's §6 figures: overhead increase for both
    PowerPC variants at 128/64/32-byte blocks.

    Returns ``{(isa, block_bytes): fraction}``; the paper quotes the
    ranges 1.5-2.5% (128 B), 3-4.5% (64 B) and 6-9% (32 B) across the
    two ISAs.
    """
    table = {}
    for isa, (v, p) in (("ppc32", POWERPC_32), ("ppc64", POWERPC_64)):
        for block in (128, 64, 32):
            table[(isa, block)] = tag_overhead_increase(v, p, block, sets)
    return table


def render_tag_overhead_table(sets: int = 1) -> str:
    """Text rendering of :func:`paper_table`."""
    table = paper_table(sets)
    lines = [
        "Virtual-tag memory overhead vs physical tags (paper §6)",
        "block      ppc32 (52/32)   ppc64 (80/64)",
    ]
    for block in (128, 64, 32):
        a = table[("ppc32", block)] * 100
        b = table[("ppc64", block)] * 100
        lines.append(f"{block:>4} B     {a:9.2f}%      {b:9.2f}%")
    return "\n".join(lines)
