"""Workload characterization: per-segment traffic profiles.

Answers "what does this workload actually do?" without running the
machine: reference counts and page footprints per segment, read/write
mix, lock activity, and barrier structure.  Used to sanity-check the
synthetic generators against their SPLASH-2 models (Table 1 of the
paper gives only total shared-memory sizes) and exposed on the CLI as
``python -m repro profile <workload>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.params import MachineParams
from repro.core.schemes import Scheme
from repro.system.machine import Machine
from repro.system.refs import BARRIER, LOCK, READ, UNLOCK, WRITE
from repro.workloads.base import Workload


@dataclass
class SegmentTraffic:
    """Aggregated references touching one segment."""

    name: str
    kind: str
    size: int
    reads: int = 0
    writes: int = 0
    lock_ops: int = 0
    pages: set = field(default_factory=set)

    @property
    def references(self) -> int:
        return self.reads + self.writes + self.lock_ops

    @property
    def write_fraction(self) -> float:
        data = self.reads + self.writes
        return self.writes / data if data else 0.0

    @property
    def distinct_pages(self) -> int:
        return len(self.pages)


@dataclass
class WorkloadProfile:
    """Whole-workload traffic summary."""

    workload: str
    nodes: int
    segments: Dict[str, SegmentTraffic]
    barriers: int = 0
    total_references: int = 0

    @property
    def write_fraction(self) -> float:
        reads = sum(s.reads for s in self.segments.values())
        writes = sum(s.writes for s in self.segments.values())
        return writes / (reads + writes) if reads + writes else 0.0

    @property
    def total_pages(self) -> int:
        return sum(s.distinct_pages for s in self.segments.values())

    def render(self) -> str:
        lines = [
            f"Workload profile — {self.workload} ({self.nodes} nodes, "
            f"{self.total_references:,} refs, {self.barriers} barrier arrivals, "
            f"{self.write_fraction * 100:.0f}% writes)",
            f"{'segment':<16}{'kind':<9}{'size':>10}{'refs':>10}"
            f"{'writes%':>9}{'pages':>8}",
        ]
        ordered = sorted(
            self.segments.values(), key=lambda s: s.references, reverse=True
        )
        for seg in ordered:
            lines.append(
                f"{seg.name:<16}{seg.kind:<9}{seg.size:>10,}{seg.references:>10,}"
                f"{seg.write_fraction * 100:>8.0f}%{seg.distinct_pages:>8,}"
            )
        return "\n".join(lines)


def profile_workload(
    params: MachineParams,
    workload: Workload,
    max_refs_per_node: Optional[int] = None,
) -> WorkloadProfile:
    """Walk every node's stream and attribute references to segments.

    No hierarchy is simulated — this is a pure static characterization
    of the generated streams (fast: dictionary lookups per event).
    """
    machine = Machine(params, Scheme.V_COMA, workload)
    page = params.page_size
    # page -> segment name lookup (segments are page-aligned spans).
    page_owner: Dict[int, str] = {}
    segments: Dict[str, SegmentTraffic] = {}
    for segment in machine.space:
        segments[segment.name] = SegmentTraffic(
            name=segment.name,
            kind=segment.kind.value,
            size=segment.size,
        )
        for vpn in segment.pages(page):
            page_owner[vpn] = segment.name

    profile = WorkloadProfile(
        workload=workload.name, nodes=params.nodes, segments=segments
    )
    for node in range(params.nodes):
        count = 0
        for op, value in machine.node_stream(node):
            if op == BARRIER:
                profile.barriers += 1
                continue
            seg = segments.get(page_owner.get(value // page, ""))
            if seg is None:
                continue
            if op == READ:
                seg.reads += 1
            elif op == WRITE:
                seg.writes += 1
            else:  # LOCK / UNLOCK
                seg.lock_ops += 1
            seg.pages.add(value // page)
            profile.total_references += 1
            count += 1
            if max_refs_per_node is not None and count >= max_refs_per_node:
                break
    return profile
