"""Self-validation: does the reproduction's contract hold here?

:func:`validate_reproduction` runs a compact version of every
shape-claim in EXPERIMENTS.md on a given machine configuration and
returns a scorecard.  Downstream users who change parameters, workloads
or substrates can ask directly whether the paper's qualitative results
still hold, without reading the test suite:

>>> report = validate_reproduction(quick=True)
>>> print(report.render())
>>> assert report.passed

Exposed on the CLI as ``python -m repro validate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis.experiments import (
    equivalent_tlb_size,
    pressure_profile,
    run_miss_sweep,
    run_timing,
)
from repro.common.params import MachineParams
from repro.core.schemes import Scheme, TapPoint
from repro.core.tlb import Organization
from repro.workloads import make_workload
from repro.workloads.raytrace import RaytraceWorkload


@dataclass
class Claim:
    """One verified shape-claim."""

    name: str
    description: str
    passed: bool
    detail: str = ""


@dataclass
class ValidationReport:
    """Scorecard over all claims."""

    params: MachineParams
    claims: List[Claim] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.claims)

    @property
    def score(self) -> str:
        good = sum(1 for c in self.claims if c.passed)
        return f"{good}/{len(self.claims)}"

    def render(self) -> str:
        lines = [
            f"Reproduction contract on {self.params.nodes} nodes "
            f"({self.params.am_size // 1024} KB AM/node, "
            f"{self.params.page_size} B pages): {self.score} claims hold",
        ]
        for claim in self.claims:
            mark = "PASS" if claim.passed else "FAIL"
            lines.append(f"  [{mark}] {claim.name}: {claim.description}")
            if claim.detail:
                lines.append(f"         {claim.detail}")
        return "\n".join(lines)


def validate_reproduction(
    params: Optional[MachineParams] = None,
    quick: bool = True,
    workload_names: Optional[List[str]] = None,
) -> ValidationReport:
    """Check the paper's headline shapes on one configuration.

    ``quick`` truncates the runs (a few thousand references per node);
    with ``quick=False`` complete streams run (minutes).  Claims cover:
    filtering, the writeback effect, sharing/prefetching (RADIX),
    Table 3's equivalent sizes, Table 4's overhead ordering, the
    RAYTRACE padding pathology, and Figure 11's pressure uniformity.
    """
    params = params or MachineParams.scaled_down(factor=8, nodes=8, page_size=512)
    names = workload_names or ["radix", "fft", "ocean"]
    # Complete streams always: truncation would distort each workload's
    # phase mix (e.g. cutting FFT during its TLB-friendly local phase).
    # Quick mode shortens streams through per-workload intensity instead.
    full_intensity = {
        "radix": 0.45, "fft": 0.25, "fmm": 1.0,
        "ocean": 0.2, "raytrace": 3.0, "barnes": 1.0,
    }
    divisor = 4.0 if quick else 1.0
    refs = None

    def intensity_for(name: str) -> float:
        return full_intensity.get(name, 1.0) / divisor

    report = ValidationReport(params=params)

    # ------------------------------------------------------------------
    # sweep-based claims
    # ------------------------------------------------------------------
    studies = {}
    for name in names:
        result = run_miss_sweep(
            params,
            make_workload(name, intensity=intensity_for(name)),
            sizes=(8, 32, 128),
            orgs=(Organization.FULLY_ASSOCIATIVE,),
            max_refs_per_node=refs,
        )
        studies[name] = result.study_results()

    filtering_ok = all(
        study.misses(TapPoint.L3, size) <= study.misses(TapPoint.L2_NO_WBACK, size)
        and study.misses(TapPoint.L2_NO_WBACK, size) <= study.misses(TapPoint.L1, size) * 1.10
        and study.misses(TapPoint.L1, size) <= study.misses(TapPoint.L0, size) * 1.05
        for study in studies.values()
        for size in (8, 32, 128)
    )
    report.claims.append(
        Claim(
            "filtering",
            "misses decrease with the translation point's depth (Fig. 8)",
            filtering_ok,
        )
    )

    writeback_ok = any(
        studies[n].misses(TapPoint.L2, 8) > studies[n].misses(TapPoint.L0, 8)
        for n in names
        if n in ("fft", "ocean")
    ) and all(
        studies[n].misses(TapPoint.L2, 8) >= studies[n].misses(TapPoint.L2_NO_WBACK, 8)
        for n in names
    )
    report.claims.append(
        Claim(
            "writeback-effect",
            "SLC writebacks inflate L2-TLB misses, past L0 on FFT/OCEAN (§5.2)",
            writeback_ok,
        )
    )

    vcoma_cells = [
        (n, size)
        for n in names
        for size in (32, 128)
        if studies[n].misses(TapPoint.HOME, size) < studies[n].misses(TapPoint.L3, size)
    ]
    total_cells = len(names) * 2
    report.claims.append(
        Claim(
            "sharing",
            "the shared DLB beats per-node L3 TLBs from 32 entries up",
            len(vcoma_cells) >= total_cells * 0.8,
            f"{len(vcoma_cells)}/{total_cells} cells",
        )
    )

    if "radix" in studies:
        study = studies["radix"]
        target = study.misses(TapPoint.HOME, 8)
        equivalent = equivalent_tlb_size(study, TapPoint.L0, target)
        report.claims.append(
            Claim(
                "equivalent-size",
                "matching an 8-entry DLB takes a much larger L0 TLB (Table 3)",
                equivalent > 32,
                f"equivalent L0 size ~{equivalent:.0f}" if equivalent != float("inf") else "beyond the sweep",
            )
        )

    # ------------------------------------------------------------------
    # timing claims
    # ------------------------------------------------------------------
    # RADIX shows the overhead contrast most robustly at reduced
    # intensity (its sharing effect survives sparse sampling).
    timing_name = "radix" if "radix" in names else names[0]
    l0 = run_timing(
        params, Scheme.L0_TLB,
        make_workload(timing_name, intensity=intensity_for(timing_name)),
        8, max_refs_per_node=refs,
    )
    vcoma = run_timing(
        params, Scheme.V_COMA,
        make_workload(timing_name, intensity=intensity_for(timing_name)),
        8, max_refs_per_node=refs,
    )
    l0_ratio = l0.translation_overhead_ratio()
    v_ratio = vcoma.translation_overhead_ratio()
    report.claims.append(
        Claim(
            "overhead",
            "translation stall: visible under L0-TLB, small under V-COMA (Table 4)",
            v_ratio < l0_ratio and l0_ratio > 0.02,
            f"L0 {l0_ratio * 100:.2f}% vs V-COMA {v_ratio * 100:.2f}%",
        )
    )

    # ------------------------------------------------------------------
    # raytrace padding + pressure claims
    # ------------------------------------------------------------------
    ray_intensity = intensity_for("raytrace")
    v1 = run_timing(
        params, Scheme.V_COMA, RaytraceWorkload(intensity=ray_intensity), 8,
        max_refs_per_node=refs, contention=True,
    )
    v2 = run_timing(
        params, Scheme.V_COMA, RaytraceWorkload.v2(intensity=ray_intensity), 8,
        max_refs_per_node=refs, contention=True,
    )
    report.claims.append(
        Claim(
            "padding",
            "pathological padding slows V-COMA; page alignment recovers it (Fig. 10 V2)",
            v1.total_time > v2.total_time,
            f"V1/V2 time ratio {v1.total_time / max(1, v2.total_time):.2f}",
        )
    )

    profile = pressure_profile(params, make_workload(names[0]))
    mean = sum(profile) / len(profile)
    report.claims.append(
        Claim(
            "pressure",
            "global-set pressure is near uniform without placement effort (Fig. 11)",
            mean > 0 and max(profile) <= mean * 1.7 and min(profile) >= mean * 0.3,
            f"mean {mean:.3f}, max {max(profile):.3f}, min {min(profile):.3f}",
        )
    )

    v1_profile = pressure_profile(params, RaytraceWorkload())
    v2_profile = pressure_profile(params, RaytraceWorkload.v2())
    imbalance = lambda prof: max(prof) / (sum(prof) / len(prof))
    report.claims.append(
        Claim(
            "padding-pressure",
            "the V1 padding concentrates pressure; V2 flattens it (Fig. 11)",
            imbalance(v1_profile) > imbalance(v2_profile) * 1.3,
            f"imbalance V1 {imbalance(v1_profile):.2f} vs V2 {imbalance(v2_profile):.2f}",
        )
    )

    return report
