"""Processor cache substrate: generic set-associative caches.

The paper's node has a direct-mapped write-through FLC and a 4-way
write-back SLC; both are instances of :class:`Cache`, which models tag
state, LRU replacement and dirtiness at block granularity (data values
are never simulated — only hit/miss behaviour matters to the study).
"""

from repro.cache.cache import (
    CLEAN_EXCLUSIVE,
    CLEAN_SHARED,
    DIRTY,
    Cache,
    EvictedBlock,
)

__all__ = [
    "CLEAN_EXCLUSIVE",
    "CLEAN_SHARED",
    "Cache",
    "DIRTY",
    "EvictedBlock",
]
