"""A generic set-associative cache model (tags + small per-block state).

Addresses are integers; the cache works on *block base addresses* —
callers pass any byte address and the cache masks it down.  Replacement
is LRU (the per-set dict keeps access order: least-recently-used first).
Data values are never simulated; only hit/miss behaviour and per-block
state matter to the study.

Each resident block carries one small integer ``state`` whose meaning is
the caller's: the FLC ignores it (write-through, no dirty data), the SLC
uses :data:`CLEAN_SHARED` / :data:`CLEAN_EXCLUSIVE` / :data:`DIRTY` so
stores can complete locally only when the attraction memory already owns
the block exclusively.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional

from repro.common.errors import ConfigurationError

#: Block states used by the write-back SLC (the FLC always uses
#: CLEAN_SHARED).  DIRTY implies exclusive ownership at the AM level.
CLEAN_SHARED = 0
CLEAN_EXCLUSIVE = 1
DIRTY = 2


class EvictedBlock(NamedTuple):
    """A block pushed out of the cache, with the state it had."""

    block: int
    state: int

    @property
    def dirty(self) -> bool:
        return self.state == DIRTY


class Cache:
    """Set-associative, LRU, tags-only cache.

    Parameters
    ----------
    size, block_size, assoc:
        Geometry in bytes/ways; ``size`` must equal
        ``sets * block_size * assoc`` with a power-of-two set count.
    name:
        Used in ``repr`` and error messages only.
    """

    __slots__ = (
        "name",
        "size",
        "block_size",
        "assoc",
        "sets",
        "_offset_mask",
        "_set_mask",
        "_block_shift",
        "_sets",
        "hits",
        "misses",
    )

    def __init__(self, size: int, block_size: int, assoc: int, name: str = "cache") -> None:
        if size <= 0 or block_size <= 0 or assoc <= 0:
            raise ConfigurationError("cache geometry must be positive")
        if size % (block_size * assoc):
            raise ConfigurationError(
                f"{name}: size {size} not a multiple of block*assoc {block_size * assoc}"
            )
        sets = size // (block_size * assoc)
        if sets & (sets - 1):
            raise ConfigurationError(f"{name}: set count {sets} must be a power of two")
        if block_size & (block_size - 1):
            raise ConfigurationError(f"{name}: block size must be a power of two")
        self.name = name
        self.size = size
        self.block_size = block_size
        self.assoc = assoc
        self.sets = sets
        self._offset_mask = block_size - 1
        self._set_mask = sets - 1
        self._block_shift = block_size.bit_length() - 1
        # _sets[i]: block base -> state, in LRU order (oldest first).
        self._sets: List[Dict[int, int]] = [dict() for _ in range(sets)]
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def block_base(self, addr: int) -> int:
        return addr & ~self._offset_mask

    def set_index(self, addr: int) -> int:
        return (addr >> self._block_shift) & self._set_mask

    def _set_for(self, addr: int) -> Dict[int, int]:
        return self._sets[(addr >> self._block_shift) & self._set_mask]

    # ------------------------------------------------------------------
    def lookup(self, addr: int, touch: bool = True) -> bool:
        """Probe for the block holding ``addr``; counts a hit or miss.

        ``touch`` refreshes LRU order on a hit (pass False for snoops).
        """
        block = addr & ~self._offset_mask
        cache_set = self._sets[(addr >> self._block_shift) & self._set_mask]
        if block in cache_set:
            self.hits += 1
            if touch:
                cache_set[block] = cache_set.pop(block)
            return True
        self.misses += 1
        return False

    def contains(self, addr: int) -> bool:
        """Presence check with no statistics or LRU side effects."""
        return (addr & ~self._offset_mask) in self._set_for(addr)

    def state_of(self, addr: int) -> Optional[int]:
        """Current state of the resident block, or None when absent."""
        return self._sets[(addr >> self._block_shift) & self._set_mask].get(
            addr & ~self._offset_mask
        )

    def insert(self, addr: int, state: int = CLEAN_SHARED) -> Optional[EvictedBlock]:
        """Fill the block holding ``addr``; returns the LRU victim when
        the set was full (the caller decides whether a dirty victim
        produces a writeback)."""
        block = addr & ~self._offset_mask
        cache_set = self._sets[(addr >> self._block_shift) & self._set_mask]
        if block in cache_set:
            # Refresh LRU; never downgrade state on a refill.
            old = cache_set.pop(block)
            cache_set[block] = max(old, state)
            return None
        victim = None
        if len(cache_set) >= self.assoc:
            victim_block = next(iter(cache_set))
            victim = EvictedBlock(victim_block, cache_set.pop(victim_block))
        cache_set[block] = state
        return victim

    def set_state(self, addr: int, state: int) -> None:
        """Change the state of a resident block (e.g. write hit marks
        DIRTY, a coherence downgrade marks CLEAN_SHARED)."""
        block = addr & ~self._offset_mask
        cache_set = self._set_for(addr)
        if block not in cache_set:
            raise KeyError(f"{self.name}: set_state on absent block {block:#x}")
        cache_set[block] = state

    def invalidate(self, addr: int) -> Optional[EvictedBlock]:
        """Remove the block holding ``addr`` if present; returns it (with
        its state) so callers can propagate dirty data upward."""
        block = addr & ~self._offset_mask
        state = self._sets[(addr >> self._block_shift) & self._set_mask].pop(block, None)
        return None if state is None else EvictedBlock(block, state)

    def invalidate_span(self, base: int, span: int) -> Iterator[EvictedBlock]:
        """Invalidate every cache block inside ``[base, base+span)`` —
        used to keep inclusion when a larger upper-level block leaves."""
        start = base & ~self._offset_mask
        sets = self._sets
        shift = self._block_shift
        set_mask = self._set_mask
        for block in range(start, base + span, self.block_size):
            state = sets[(block >> shift) & set_mask].pop(block, None)
            if state is not None:
                yield EvictedBlock(block, state)

    def downgrade_span(self, base: int, span: int, state: int = CLEAN_SHARED) -> Iterator[EvictedBlock]:
        """Downgrade every resident block inside ``[base, base+span)`` to
        ``state``, yielding blocks that were DIRTY (they must be written
        back)."""
        start = base & ~self._offset_mask
        for block in range(start, base + span, self.block_size):
            cache_set = self._set_for(block)
            old = cache_set.get(block)
            if old is None:
                continue
            if old == DIRTY:
                yield EvictedBlock(block, old)
            cache_set[block] = state

    def flush(self) -> Iterator[EvictedBlock]:
        """Empty the cache, yielding blocks that were DIRTY."""
        for cache_set in self._sets:
            for block, state in list(cache_set.items()):
                if state == DIRTY:
                    yield EvictedBlock(block, state)
            cache_set.clear()

    def resident_blocks(self) -> Iterator[int]:
        for cache_set in self._sets:
            yield from cache_set.keys()

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (
            f"Cache({self.name}, {self.size}B, {self.assoc}-way, "
            f"{self.block_size}B blocks, miss_rate={self.miss_rate:.3f})"
        )
