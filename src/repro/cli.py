"""Command-line interface: run the paper's experiments from a shell.

::

    python -m repro describe  [--nodes 8 --factor 8 --page-size 512]
    python -m repro sweep     radix [--sizes 8,32,128,512] [--dm]
    python -m repro timing    ocean --scheme V-COMA --entries 8
    python -m repro table2    [workloads...]
    python -m repro table3    [workloads...]
    python -m repro table4    [workloads...]
    python -m repro pressure  raytrace [--v2]
    python -m repro metrics   radix [--format openmetrics|json] [--trace-out t.jsonl]
    python -m repro trace-profile t.jsonl [--metrics m.json]
    python -m repro trace-validate t.jsonl
    python -m repro history   list|record-bench|check [--history-dir DIR]
    python -m repro status    [RUN_ID]
    python -m repro workloads
    python -m repro serve     [--port 8765] [--worker-port 9000]
    python -m repro worker    --connect host:9000

The trace-analytics commands (``docs/observability.md``) consume
recorded artifacts instead of running simulations: ``trace-profile``
renders a span-tree profile and the Table-4-shaped cost attribution
from a JSONL trace (``--metrics`` reconciles it exactly against the
run's metrics export, exiting non-zero on any mismatch),
``trace-validate`` checks a trace against the frozen schema,
``history`` drives the append-only run-history store and its
rolling-median regression detector, and ``status`` renders live
per-job progress of a batch run from its manifest heartbeats.

``serve`` turns the batch runner into a long-running service
(``docs/service.md``): clients POST JSON grids, poll heartbeat-driven
status, and fetch results; identical in-flight work coalesces and warm
specs answer straight from the result cache.  ``worker`` connects a
remote execution process to a serving hub (``--worker-port``) so grids
shard across hosts under the supervised-runner fault model.

``timing`` accepts ``--trace-out FILE`` to record the structured
protocol-event trace (JSONL; see ``docs/observability.md``) and
``--metrics-out FILE`` to export the run's metrics; ``report`` accepts
``--metrics-out`` for its phase/runner telemetry.

Every command accepts the machine options (``--nodes``, ``--factor``,
``--page-size``, ``--seed``) and ``--refs`` to bound references per
node.  Simulation-grid commands (``sweep``, ``timing``, ``table2-4``,
``report``) also accept ``--jobs N`` to shard independent simulations
across worker processes (clamped to the CPU count), ``--cache-dir`` to
relocate the persistent result cache, ``--no-cache`` to bypass it,
``--cache-max-mb`` to cap it with LRU eviction, ``--no-replay`` to
force miss sweeps down the coupled scalar path instead of the
record-once/replay-many pipeline, ``--no-fast-timing`` to force
coupled timing runs onto the scalar reference engine instead of the
compiled columnar fast path, and ``--no-fast-sweep`` to do the same
for miss sweeps and trace captures (see ``docs/performance.md``; the
``timing`` output's ``engine`` line reports which one ran).

Grids run under the fault-tolerant supervisor (``docs/robustness.md``):
``--retries N`` retries transient failures with backoff, ``--timeout S``
kills and respawns workers holding hung jobs, ``--keep-going`` records
failures and finishes the grid, and a Ctrl-C'd run prints a
``--resume RUN_ID`` hint that re-executes only the jobs missing from
its manifest.  Output is plain text, identical to the benchmark
harness's.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis import (
    pressure_profile,
    render_equivalent_size_table,
    render_miss_curves,
    render_miss_rate_table,
    render_overhead_table,
    render_dm_vs_fa,
    render_pressure_profile,
    run_sweep_studies,
    run_timing,
)
from repro.common.params import MachineParams
from repro.core.schemes import Scheme
from repro.core.tlb import Organization
from repro.workloads import PAPER_ORDER, WORKLOADS, make_workload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Options for Dynamic Address Translation in COMAs'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_machine_options(p):
        p.add_argument("--nodes", type=int, default=8, help="processor count (power of two)")
        p.add_argument("--factor", type=int, default=8, help="scale-down factor vs the paper machine")
        p.add_argument("--page-size", type=int, default=512, help="page size in bytes")
        p.add_argument("--seed", type=int, default=1998)
        p.add_argument("--refs", type=int, default=None, help="max references per node")
        p.add_argument("--paper-machine", action="store_true",
                       help="use the exact Section 5.1 configuration (slow)")

    def add_runner_options(p):
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for independent simulations "
                            "(clamped to the machine's CPU count)")
        p.add_argument("--cache-dir", default=None,
                       help="persistent result-cache directory "
                            "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")
        p.add_argument("--no-cache", action="store_true",
                       help="neither read nor write the persistent result cache")
        p.add_argument("--cache-max-mb", type=float, default=None,
                       help="LRU-evict result-cache entries beyond this size "
                            "(default: $REPRO_CACHE_MAX_MB, else unlimited)")
        p.add_argument("--no-replay", action="store_true",
                       help="run miss sweeps through the coupled scalar path "
                            "instead of the record/replay pipeline "
                            "(bit-identical, much slower)")
        p.add_argument("--no-fast-timing", action="store_true",
                       help="run coupled timing simulations on the scalar "
                            "reference engine instead of the compiled "
                            "columnar fast path (bit-identical, much "
                            "slower; sets REPRO_NO_FAST_TIMING)")
        p.add_argument("--no-fast-sweep", action="store_true",
                       help="run miss sweeps and trace captures on the "
                            "scalar reference engine instead of the "
                            "compiled sweep fast path (bit-identical, "
                            "much slower; sets REPRO_NO_FAST_SWEEP)")
        p.add_argument("--retries", type=int, default=0,
                       help="retry budget per job for transient failures "
                            "(I/O errors, corrupt traces, worker death, "
                            "timeouts); exponential backoff between attempts")
        p.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-clock limit in seconds; an "
                            "overrunning worker is killed and the job "
                            "retried (needs worker processes)")
        p.add_argument("--keep-going", action="store_true",
                       help="record failed jobs and finish the grid instead "
                            "of failing fast on the first error")
        p.add_argument("--resume", default=None, metavar="RUN_ID",
                       help="resume an interrupted run from its manifest, "
                            "re-executing only the jobs missing from it "
                            "(run ids are printed on interrupt)")

    p = sub.add_parser("describe", help="print the machine configuration")
    add_machine_options(p)

    p = sub.add_parser("workloads", help="list the available workloads")

    p = sub.add_parser("sweep", help="Figure 8/9 miss curves for one workload")
    p.add_argument("workload", choices=sorted(WORKLOADS))
    p.add_argument("--sizes", default="8,32,128,512")
    p.add_argument("--dm", action="store_true", help="also show direct-mapped curves (Figure 9)")
    p.add_argument("--intensity", type=float, default=1.0)
    add_machine_options(p)
    add_runner_options(p)

    p = sub.add_parser("timing", help="coupled timing run (Table 4 cell)")
    p.add_argument("workload", choices=sorted(WORKLOADS))
    p.add_argument("--scheme", default="V-COMA",
                   choices=[s.value for s in Scheme])
    p.add_argument("--entries", type=int, default=8)
    p.add_argument("--dm", action="store_true", help="direct-mapped TLB/DLB")
    p.add_argument("--intensity", type=float, default=1.0)
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="record the protocol-event trace as JSONL "
                        "(forces an in-process run; see docs/observability.md)")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write the run's metrics (.prom/.txt = OpenMetrics "
                        "text, anything else = JSON)")
    add_machine_options(p)
    add_runner_options(p)

    for table in ("table2", "table3", "table4"):
        p = sub.add_parser(table, help=f"regenerate paper {table.capitalize()}")
        p.add_argument("workloads", nargs="*", default=[])
        p.add_argument("--intensity", type=float, default=1.0)
        add_machine_options(p)
        add_runner_options(p)

    p = sub.add_parser("report", help="run the full evaluation and write a markdown report")
    p.add_argument("--out", default="reproduction_report.md")
    p.add_argument("--no-figures", action="store_true",
                   help="tables only (much faster)")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write report telemetry (phase timers, runner "
                        "supervision counters) as a metrics file")
    p.add_argument("--history-dir", default=None, metavar="DIR",
                   help="append this report's wall time and per-phase "
                        "throughput to the run-history store and render "
                        "the regression check in the Telemetry section")
    p.add_argument("workloads", nargs="*", default=[])
    add_machine_options(p)
    add_runner_options(p)

    p = sub.add_parser(
        "metrics",
        help="run one simulation and export its metrics "
             "(OpenMetrics text or JSON)",
    )
    p.add_argument("workload", choices=sorted(WORKLOADS))
    p.add_argument("--scheme", default="V-COMA",
                   choices=[s.value for s in Scheme])
    p.add_argument("--entries", type=int, default=8)
    p.add_argument("--dm", action="store_true", help="direct-mapped TLB/DLB")
    p.add_argument("--intensity", type=float, default=1.0)
    p.add_argument("--format", default="openmetrics",
                   choices=["openmetrics", "json"])
    p.add_argument("--out", default=None,
                   help="write to a file instead of stdout")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="also record the protocol-event trace as JSONL")
    p.add_argument("--no-fast-timing", action="store_true",
                   help="force the scalar reference engine "
                        "(sets REPRO_NO_FAST_TIMING)")
    add_machine_options(p)

    p = sub.add_parser("validate", help="check the paper's shape-claims on this configuration")
    p.add_argument("--full", action="store_true", help="complete streams (slow)")
    p.add_argument("workloads", nargs="*", default=[])
    add_machine_options(p)

    p = sub.add_parser("profile", help="per-segment traffic profile of a workload")
    p.add_argument("workload", choices=sorted(WORKLOADS))
    p.add_argument("--intensity", type=float, default=1.0)
    add_machine_options(p)

    p = sub.add_parser("trace", help="record a workload's reference trace to a file")
    p.add_argument("workload", choices=sorted(WORKLOADS))
    p.add_argument("--out", required=True)
    p.add_argument("--intensity", type=float, default=1.0)
    add_machine_options(p)

    p = sub.add_parser("replay", help="replay a recorded trace through a scheme")
    p.add_argument("trace_file")
    p.add_argument("--scheme", default="V-COMA", choices=[s.value for s in Scheme])
    p.add_argument("--entries", type=int, default=8)
    add_machine_options(p)

    p = sub.add_parser(
        "trace-profile",
        help="span-tree profile + cost attribution of a recorded trace",
    )
    p.add_argument("trace_file")
    p.add_argument("--metrics", default=None, metavar="FILE",
                   help="JSON metrics export of the same run; the "
                        "attribution is reconciled exactly against it "
                        "(non-zero exit on any mismatch)")
    p.add_argument("--json", action="store_true",
                   help="emit the profile/attribution as JSON")
    p.add_argument("--no-tree", action="store_true",
                   help="skip the span tree (attribution only)")

    p = sub.add_parser(
        "trace-validate",
        help="check a recorded trace against the frozen schema",
    )
    p.add_argument("trace_file")

    p = sub.add_parser(
        "history",
        help="run-history store: list keys, record a bench, check regressions",
    )
    p.add_argument("action", choices=["list", "record-bench", "check"])
    p.add_argument("payload", nargs="?", default=None,
                   help="BENCH_throughput.json payload (record-bench)")
    p.add_argument("--history-dir", default=None,
                   help="history store directory "
                        "(default: the shared cache root)")
    p.add_argument("--key", default=None,
                   help="restrict check to one config key")
    p.add_argument("--window", type=int, default=5,
                   help="rolling-median baseline window")
    p.add_argument("--tolerance", type=float, default=0.1,
                   help="allowed fractional drift before flagging")

    p = sub.add_parser(
        "status",
        help="live per-job status of a batch run from its manifest",
    )
    p.add_argument("run_id", nargs="?", default=None,
                   help="run id (omit to list known runs)")
    p.add_argument("--cache-dir", default=None,
                   help="cache root holding the run manifests")

    p = sub.add_parser("pressure", help="Figure 11 pressure profile")
    p.add_argument("workload", choices=sorted(WORKLOADS))
    p.add_argument("--v2", action="store_true",
                   help="raytrace only: page-aligned padding layout")
    add_machine_options(p)

    p = sub.add_parser(
        "doctor",
        help="probe every engine tier and print the degradation ladder",
    )
    p.add_argument("--json", action="store_true",
                   help="machine-readable tier report instead of the ladder")

    p = sub.add_parser(
        "fuzz",
        help="differential-fuzz the compiled engine against the scalar oracle",
    )
    p.add_argument("--cases", type=int, default=200,
                   help="generated cases to execute (default 200)")
    p.add_argument("--seed", type=int, default=0,
                   help="hypothesis seed (fixed seed = identical run)")
    p.add_argument("--corpus", default=None,
                   help="regression-corpus directory (default: the "
                        "committed corpus inside the package)")
    p.add_argument("--skip-replay", action="store_true",
                   help="skip replaying the regression corpus first")
    p.add_argument("--replay-only", action="store_true",
                   help="only replay the corpus; generate nothing")

    p = sub.add_parser(
        "serve",
        help="run the simulation service (async HTTP job API; docs/service.md)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address for the HTTP API (default loopback)")
    p.add_argument("--port", type=int, default=8765,
                   help="HTTP API port (0 picks a free port)")
    p.add_argument("--worker-port", type=int, default=None, metavar="PORT",
                   help="also accept remote workers (repro worker "
                        "--connect host:PORT) on this TCP port; 0 picks "
                        "a free port")
    p.add_argument("--jobs", type=int, default=1,
                   help="forked worker processes per grid when no remote "
                        "workers are connected")
    p.add_argument("--retries", type=int, default=1,
                   help="transient-failure retry budget per job")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-job wall-clock limit in seconds")
    p.add_argument("--cache-dir", default=None,
                   help="cache root serving warm results "
                        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    p.add_argument("--max-grid-jobs", type=int, default=256,
                   help="reject submissions larger than this many specs")

    p = sub.add_parser(
        "worker",
        help="remote worker: pull jobs from a repro serve hub over TCP",
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="the hub advertised by repro serve --worker-port")
    p.add_argument("--no-reconnect", action="store_true",
                   help="exit when the hub goes away instead of redialing")
    p.add_argument("--max-retries", type=int, default=None,
                   help="give up after this many failed dials "
                        "(default: retry forever)")

    return parser


def machine_params(args) -> MachineParams:
    if getattr(args, "paper_machine", False):
        return MachineParams.paper_baseline().replace(seed=args.seed)
    return MachineParams.scaled_down(
        factor=args.factor, nodes=args.nodes, page_size=args.page_size
    ).replace(seed=args.seed)


def _workload_list(args) -> List[str]:
    names = list(getattr(args, "workloads", [])) or list(PAPER_ORDER)
    for name in names:
        if name not in WORKLOADS:
            raise SystemExit(f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}")
    return names


def batch_runner(args, progress=None):
    """A :class:`~repro.runner.batch.BatchRunner` from CLI options.

    The persistent cache is on by default; ``--no-cache`` bypasses it
    (the tap-trace store and run manifests included) and ``--cache-dir``
    relocates all three.  ``--cache-max-mb`` caps the result cache with
    LRU eviction, ``--no-replay`` forces the scalar reference path for
    sweeps, and ``--retries`` / ``--timeout`` / ``--keep-going`` /
    ``--resume`` configure the fault-tolerant supervisor (see
    ``docs/robustness.md``).
    """
    from repro.runner import BatchRunner, ResultCache, TraceStore, default_manifest_dir

    max_bytes = getattr(args, "cache_max_mb", None)
    if max_bytes is not None:
        max_bytes = int(max_bytes * 1024 * 1024)
    cache_dir = getattr(args, "cache_dir", None)
    no_cache = getattr(args, "no_cache", False)
    cache = None if no_cache else ResultCache(cache_dir, max_bytes=max_bytes)
    trace_store = None if no_cache else TraceStore(
        Path(cache_dir) / "traces" if cache_dir else None
    )
    manifest_dir = None if no_cache else (
        Path(cache_dir) / "runs" if cache_dir else default_manifest_dir()
    )
    resume = getattr(args, "resume", None)
    if resume is not None and manifest_dir is None:
        raise SystemExit("--resume needs run manifests; drop --no-cache")
    return BatchRunner(
        jobs=getattr(args, "jobs", 1),
        cache=cache,
        progress=progress,
        trace_store=trace_store,
        replay=not getattr(args, "no_replay", False),
        retries=getattr(args, "retries", 0),
        timeout=getattr(args, "timeout", None),
        keep_going=getattr(args, "keep_going", False),
        manifest_dir=manifest_dir,
        resume=resume,
    )


def _print_grid_stats(runner) -> None:
    """Surface supervision events (failures, retries, timeouts, worker
    deaths) after a grid; silent when nothing eventful happened."""
    if runner is not None and runner.stats.eventful:
        sys.stderr.write(runner.stats.render() + "\n")


def _print_progress(done: int, total: int, job) -> None:
    if not job.ok:
        sys.stderr.write(
            f"[{done}/{total}] {job.spec.describe()} FAILED ({job.error_type}, "
            f"{job.attempts} attempt{'s' if job.attempts != 1 else ''})\n"
        )
        return
    if job.from_cache:
        origin = "cache"
    elif job.from_manifest:
        origin = "manifest"
    else:
        origin = f"{job.elapsed:.1f}s"
    sys.stderr.write(f"[{done}/{total}] {job.spec.describe()} ({origin})\n")


def _sweep_studies(params, names, args, runner, sizes=(8, 32, 128, 512)):
    return run_sweep_studies(
        params,
        names,
        sizes=sizes,
        intensities={name: args.intensity for name in names},
        max_refs_per_node=args.refs,
        runner=runner,
    )


def _cmd_trace_profile(args, out) -> int:
    """Span-tree profile and Table-4-shaped cost attribution of a trace."""
    import json

    from repro.obs import (
        MetricsRegistry,
        ReconciliationError,
        attribute_costs,
        profile_trace,
        read_trace,
    )

    records = read_trace(args.trace_file)
    profile = profile_trace(records)
    attribution = attribute_costs(records)

    checks = None
    status = 0
    if args.metrics:
        with open(args.metrics, "r", encoding="utf-8") as handle:
            registry = MetricsRegistry.from_dict(json.load(handle))
        try:
            checks = attribution.reconcile(registry, strict=True)
        except ReconciliationError as exc:
            checks = attribution.reconcile(registry, strict=False)
            sys.stderr.write(f"reconciliation FAILED: {exc}\n")
            status = 1

    if args.json:
        payload = {
            "profile": profile.to_dict(),
            "attribution": attribution.to_dict(),
        }
        if checks is not None:
            payload["reconciliation"] = checks
        out.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return status

    if not args.no_tree:
        out.write(profile.render() + "\n\n")
    out.write(attribution.render() + "\n")
    if checks is not None:
        passed = sum(1 for c in checks if c["ok"])
        out.write(f"\nreconciliation vs {args.metrics}: {passed}/{len(checks)} exact\n")
        for c in checks:
            mark = "ok  " if c["ok"] else "FAIL"
            out.write(
                f"  [{mark}] {c['check']}: "
                f"trace={c['trace']} registry={c['registry']}\n"
            )
    return status


def _cmd_trace_validate(args, out) -> int:
    """Schema-check a recorded trace; non-zero exit on violations."""
    from repro.obs import TraceSchemaError, read_trace, validate_trace

    records = read_trace(args.trace_file)
    try:
        stats = validate_trace(records)
    except TraceSchemaError as exc:
        sys.stderr.write(f"{args.trace_file}: INVALID: {exc}\n")
        return 1
    summary = ", ".join(f"{name}={count}" for name, count in sorted(stats.items()))
    out.write(f"{args.trace_file}: ok ({summary})\n")
    return 0


def _cmd_history(args, out) -> int:
    """Drive the run-history store (see ``repro.obs.history``)."""
    import json

    from repro.obs.history import RunHistory, entry_from_bench

    history = RunHistory(args.history_dir)

    if args.action == "list":
        keys = history.keys()
        if not keys:
            out.write(f"no history at {history.path}\n")
            return 0
        for key in keys:
            entries = history.entries(key=key)
            latest = entries[-1]
            metrics = "  ".join(
                f"{name}={value:g}" for name, value in sorted(latest.metrics.items())
            )
            out.write(
                f"{key}  {latest.kind:<6} {len(entries):>4} entries  {metrics}\n"
            )
        return 0

    if args.action == "record-bench":
        if not args.payload:
            raise SystemExit("history record-bench needs a bench JSON path")
        with open(args.payload, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        entry = history.append(entry_from_bench(payload))
        out.write(
            f"recorded {entry.key} ({len(entry.metrics)} metrics) "
            f"-> {history.path}\n"
        )
        return 0

    # check: rolling-median regression detector over each key's trajectory
    keys = [args.key] if args.key else history.keys()
    if not keys:
        out.write(f"no history at {history.path}\n")
        return 0
    failed = False
    for key in keys:
        for row in history.check(key, window=args.window, tolerance=args.tolerance):
            verdict = "ok" if row["ok"] else "REGRESSION"
            if row.get("baseline_median") is None:
                detail = row.get("reason", "no baseline")
            else:
                detail = (
                    f"latest={row['latest']:g} "
                    f"median={row['baseline_median']:g} "
                    f"ratio={row['ratio']} ({row['direction']} is better)"
                )
            out.write(f"{key}  {row['metric']:<32} {verdict:<10} {detail}\n")
            failed = failed or not row["ok"]
    return 1 if failed else 0


def _cmd_status(args, out) -> int:
    """Render one batch run's live status from its manifest heartbeats."""
    from repro.runner import list_runs, read_status

    root = Path(args.cache_dir) / "runs" if args.cache_dir else None

    if not args.run_id:
        runs = list_runs(root)
        if not runs:
            out.write("no runs recorded\n")
            return 0
        for run_id in runs:
            view = read_status(run_id, root)
            counts = view["counts"]
            line = (
                f"{run_id}  {counts['ok']} ok / {counts['failed']} failed / "
                f"{counts['running']} running"
            )
            if view["pending"]:
                line += f" / {view['pending']} pending"
            out.write(line + "\n")
        return 0

    try:
        view = read_status(args.run_id, root)
    except FileNotFoundError:
        raise SystemExit(f"unknown run id {args.run_id!r}")

    counts = view["counts"]
    done = counts["ok"] + counts["failed"]
    out.write(f"run        : {view['run']}\n")
    if view["version"]:
        out.write(f"version    : {view['version']}\n")
    if view["total"] is not None:
        pct = 100.0 * done / view["total"] if view["total"] else 100.0
        out.write(f"progress   : {done}/{view['total']} jobs ({pct:.0f}%)\n")
    out.write(
        f"jobs       : {counts['ok']} ok, {counts['failed']} failed, "
        f"{counts['running']} running"
        + (f", {view['pending']} pending" if view["pending"] is not None else "")
        + "\n"
    )
    if view["workers"]:
        out.write(f"workers    : {view['workers']}\n")
    if view["avg_job_seconds"] is not None:
        out.write(f"avg job    : {view['avg_job_seconds']:.1f}s\n")
    if view["eta_seconds"] is not None:
        out.write(f"eta        : {view['eta_seconds']:.0f}s remaining\n")
    for job in view["jobs"].values():
        state = job.get("state")
        if state == "running":
            detail = f"attempt {job.get('attempt', 1)}"
            if job.get("worker") is not None:
                detail += f", worker {job['worker']}"
            out.write(f"  running: {job.get('label')} ({detail})\n")
        elif state == "failed":
            out.write(
                f"  failed : {job.get('label')} "
                f"({job.get('error')}, {job.get('attempts', 1)} attempts)\n"
            )
    return 0


def _cmd_doctor(args, out) -> int:
    """Probe each backend tier, print the resolved degradation ladder.

    Exit status 0 while any accelerated tier is healthy; nonzero when
    the pure-Python last resort is all that's left (every run would
    silently crawl — that deserves a red CI light, not a footnote).
    """
    import json as json_mod

    from repro.core.ladder import degradation_ladder, only_last_resort, render_ladder

    ladder = degradation_ladder()
    if args.json:
        out.write(
            json_mod.dumps([tier.to_dict() for tier in ladder], indent=2) + "\n"
        )
    else:
        out.write(render_ladder(ladder) + "\n")
    if only_last_resort(ladder):
        sys.stderr.write(
            "doctor: only the pure-Python last-resort tier is healthy\n"
        )
        return 1
    return 0


def _cmd_fuzz(args, out) -> int:
    """Differential fuzzing: corpus replay, then generative search."""
    from repro.fuzz import default_corpus_dir, fuzz, replay_corpus

    corpus = Path(args.corpus) if args.corpus else default_corpus_dir()
    failed = 0
    if not args.skip_replay:
        rows = replay_corpus(corpus)
        for row in rows:
            mark = "ok " if row["ok"] else "FAIL"
            out.write(f"replay {mark} {row['name']}: {row['detail']}\n")
            failed += not row["ok"]
        out.write(
            f"corpus: {len(rows) - failed}/{len(rows)} cases replayed clean\n"
        )
    if args.replay_only:
        return 1 if failed else 0
    report = fuzz(max_examples=args.cases, seed=args.seed, corpus_dir=corpus)
    out.write(report.render() + "\n")
    return 1 if (failed or not report.ok) else 0


def _cmd_serve(args, out) -> int:
    """The simulation service front-end (docs/service.md)."""
    import asyncio

    from repro.service import SimulationService, WorkerHub

    hub = None
    if args.worker_port is not None:
        hub = WorkerHub(args.host, args.worker_port)
        out.write(f"worker hub : {args.host}:{hub.port} "
                  f"(repro worker --connect {args.host}:{hub.port})\n")
    service = SimulationService(
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        retries=args.retries,
        timeout=args.timeout,
        hub=hub,
        max_grid_jobs=args.max_grid_jobs,
    )

    async def _main() -> None:
        host, port = await service.start(args.host, args.port)
        out.write(f"listening  : http://{host}:{port}\n")
        out.write("endpoints  : POST /runs · GET /runs/<id>/status · "
                  "GET /runs/<id>/results · GET /metrics · GET /healthz\n")
        out.flush()
        await service.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


def _cmd_worker(args, out) -> int:
    """Remote worker loop; blocks until the hub says stop."""
    from repro.service import run_worker

    try:
        return run_worker(
            args.connect,
            reconnect=not args.no_reconnect,
            max_retries=args.max_retries,
            out=sys.stderr,
        )
    except KeyboardInterrupt:
        return 130


def main(argv: Optional[List[str]] = None) -> int:
    from repro.common.errors import RunInterrupted

    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args, sys.stdout)
    except RunInterrupted as exc:
        # SIGINT mid-grid: the runner already shut its workers down and
        # flushed the manifest; hand the user the resume recipe.
        sys.stderr.write(f"\n{exc}\n")
        return 130


def _dispatch(args, out) -> int:
    if getattr(args, "no_fast_timing", False):
        # Environment, not a parameter: the switch must reach worker
        # processes spawned by the batch runner too.
        import os

        os.environ["REPRO_NO_FAST_TIMING"] = "1"
    if getattr(args, "no_fast_sweep", False):
        import os

        os.environ["REPRO_NO_FAST_SWEEP"] = "1"

    if args.command == "describe":
        out.write(machine_params(args).describe() + "\n")
        return 0

    if args.command == "workloads":
        for name in PAPER_ORDER:
            workload = WORKLOADS[name]
            doc = (workload.__doc__ or "").strip().splitlines()[0]
            out.write(f"{name:10s} {doc}\n")
        return 0

    if args.command == "trace-profile":
        return _cmd_trace_profile(args, out)

    if args.command == "trace-validate":
        return _cmd_trace_validate(args, out)

    if args.command == "history":
        return _cmd_history(args, out)

    if args.command == "status":
        return _cmd_status(args, out)

    if args.command == "doctor":
        return _cmd_doctor(args, out)

    if args.command == "fuzz":
        return _cmd_fuzz(args, out)

    if args.command == "serve":
        return _cmd_serve(args, out)

    if args.command == "worker":
        return _cmd_worker(args, out)

    params = machine_params(args)

    if args.command == "sweep":
        sizes = tuple(int(s) for s in args.sizes.split(","))
        runner = batch_runner(args)
        studies = _sweep_studies(
            params, [args.workload], args, runner, sizes=sizes
        )
        _print_grid_stats(runner)
        if args.workload not in studies:  # failed under --keep-going
            return 1
        study = studies[args.workload]
        out.write(render_miss_curves(args.workload, study) + "\n")
        if args.dm:
            out.write("\n" + render_dm_vs_fa(args.workload, study) + "\n")
        return 0

    if args.command == "timing":
        from repro.runner import JobSpec
        from repro.runner.summary import RunSummary

        org = Organization.DIRECT_MAPPED if args.dm else Organization.FULLY_ASSOCIATIVE
        if args.trace_out:
            # A tracer holds an open file, so a traced run executes
            # in-process instead of going through the batch runner.
            from repro.obs import Tracer

            workload = make_workload(args.workload, intensity=args.intensity)
            with Tracer(args.trace_out) as tracer:
                live = run_timing(
                    params, Scheme(args.scheme), workload, args.entries,
                    organization=org, max_refs_per_node=args.refs,
                    tracer=tracer,
                )
            result = RunSummary.from_result(live)
            sys.stderr.write(f"wrote {args.trace_out}\n")
        else:
            spec = JobSpec.timing(
                params,
                Scheme(args.scheme),
                args.workload,
                args.entries,
                organization=org,
                max_refs_per_node=args.refs,
                overrides={"intensity": args.intensity},
            )
            runner = batch_runner(args)
            (job,) = runner.run([spec])
            _print_grid_stats(runner)
            if not job.ok:  # JobFailure under --keep-going
                return 1
            result = job.summary
        if args.metrics_out:
            from repro.obs import write_metrics

            fmt = write_metrics(result.to_metrics(), args.metrics_out)
            sys.stderr.write(f"wrote {args.metrics_out} ({fmt})\n")
        breakdown = result.average_breakdown()
        out.write(f"scheme        : {args.scheme}\n")
        if result.backend is not None:
            out.write(f"engine        : {result.backend}\n")
        out.write(f"total time    : {result.total_time:,} cycles\n")
        out.write(f"references    : {result.total_references:,}\n")
        out.write(
            "breakdown     : "
            f"busy {breakdown.busy:,.0f}  sync {breakdown.sync:,.0f}  "
            f"loc {breakdown.loc_stall:,.0f}  rem {breakdown.rem_stall:,.0f}  "
            f"tlb {breakdown.tlb_stall:,.0f}\n"
        )
        out.write(
            f"translation   : {result.translation_overhead_ratio() * 100:.2f}% of memory stall\n"
        )
        summary = result.timing_summary()
        out.write(
            f"TLB/DLB       : {summary['misses']:,} misses / "
            f"{summary['accesses']:,} accesses ({summary['miss_rate'] * 100:.2f}%)\n"
        )
        return 0

    if args.command == "table2":
        runner = batch_runner(args)
        studies = _sweep_studies(
            params, _workload_list(args), args, runner, sizes=(8, 32, 128)
        )
        _print_grid_stats(runner)
        out.write(render_miss_rate_table(studies, sizes=(8, 32, 128)) + "\n")
        return 0

    if args.command == "table3":
        runner = batch_runner(args)
        studies = _sweep_studies(params, _workload_list(args), args, runner)
        _print_grid_stats(runner)
        out.write(render_equivalent_size_table(studies, dlb_entries=8) + "\n")
        return 0

    if args.command == "table4":
        from repro.runner import JobSpec

        names = _workload_list(args)
        specs = []
        for entries in (8, 16):
            for prefix, scheme in ((f"L0-TLB/{entries}", Scheme.L0_TLB), (f"DLB/{entries}", Scheme.V_COMA)):
                specs.extend(
                    JobSpec.timing(
                        params, scheme, name, entries,
                        max_refs_per_node=args.refs,
                        overrides={"intensity": args.intensity},
                        label=f"{prefix}:{name}",
                    )
                    for name in names
                )
        runner = batch_runner(args)
        finished = {job.spec.label: job.summary for job in runner.run(specs) if job.ok}
        _print_grid_stats(runner)
        # Under --keep-going a failed cell drops its whole workload
        # column (a partial column would misrender the table).
        names = [
            name for name in names
            if all(
                f"{prefix}:{name}" in finished
                for entries in (8, 16)
                for prefix in (f"L0-TLB/{entries}", f"DLB/{entries}")
            )
        ]
        if not names:
            return 1
        rows = {}
        for entries in (8, 16):
            for prefix in (f"L0-TLB/{entries}", f"DLB/{entries}"):
                rows[prefix] = {name: finished[f"{prefix}:{name}"] for name in names}
        out.write(render_overhead_table(rows) + "\n")
        return 0

    if args.command == "report":
        from repro.analysis.report import write_report

        names = _workload_list(args)
        runner = batch_runner(args, progress=_print_progress)
        text = write_report(
            args.out,
            params=params,
            workloads=names,
            include_figures=not args.no_figures,
            runner=runner,
            metrics_out=args.metrics_out,
            history_dir=args.history_dir,
        )
        _print_grid_stats(runner)
        out.write(f"wrote {args.out} ({len(text.splitlines())} lines)\n")
        if args.metrics_out:
            out.write(f"wrote {args.metrics_out}\n")
        return 0

    if args.command == "metrics":
        from repro.obs import Tracer, to_json, to_openmetrics
        from repro.runner.summary import RunSummary

        org = Organization.DIRECT_MAPPED if args.dm else Organization.FULLY_ASSOCIATIVE
        workload = make_workload(args.workload, intensity=args.intensity)
        tracer = Tracer(args.trace_out) if args.trace_out else None
        try:
            live = run_timing(
                params, Scheme(args.scheme), workload, args.entries,
                organization=org, max_refs_per_node=args.refs,
                tracer=tracer,
            )
        finally:
            if tracer is not None:
                tracer.close()
        registry = RunSummary.from_result(live).to_metrics()
        rendered = (
            to_openmetrics(registry) if args.format == "openmetrics"
            else to_json(registry)
        )
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(rendered)
            out.write(f"wrote {args.out}\n")
        else:
            out.write(rendered)
        if args.trace_out:
            sys.stderr.write(f"wrote {args.trace_out}\n")
        return 0

    if args.command == "validate":
        from repro.analysis import validate_reproduction

        names = list(args.workloads) or None
        report = validate_reproduction(
            params, quick=not args.full, workload_names=names
        )
        out.write(report.render() + "\n")
        return 0 if report.passed else 1

    if args.command == "profile":
        from repro.analysis import profile_workload

        profile = profile_workload(
            params,
            make_workload(args.workload, intensity=args.intensity),
            max_refs_per_node=args.refs,
        )
        out.write(profile.render() + "\n")
        return 0

    if args.command == "trace":
        from repro.system.machine import Machine
        from repro.workloads.trace import record_trace

        workload = make_workload(args.workload, intensity=args.intensity)
        machine = Machine(params, Scheme.V_COMA, workload)
        with open(args.out, "w") as handle:
            written = record_trace(
                workload, machine.ctx, handle, max_refs_per_node=args.refs
            )
        out.write(f"wrote {args.out}: {written} events\n")
        return 0

    if args.command == "replay":
        from repro.workloads.trace import TraceWorkload

        workload = TraceWorkload.from_file(args.trace_file)
        result = run_timing(
            params, Scheme(args.scheme), workload, args.entries,
            max_refs_per_node=args.refs,
        )
        out.write(f"scheme      : {args.scheme}\n")
        out.write(f"total time  : {result.total_time:,} cycles\n")
        out.write(f"references  : {result.total_references:,}\n")
        out.write(
            f"translation : {result.translation_overhead_ratio() * 100:.2f}% of memory stall\n"
        )
        return 0

    if args.command == "pressure":
        if args.v2 and args.workload == "raytrace":
            from repro.workloads import RaytraceWorkload

            workload = RaytraceWorkload.v2()
        else:
            workload = make_workload(args.workload)
        profile = pressure_profile(params, workload)
        out.write(render_pressure_profile(args.workload, profile) + "\n")
        return 0

    raise SystemExit(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
