"""COMA substrate: attraction memories, directories, COMA-F protocol.

The machine is a *flat* COMA in the style of COMA-F (Joe, 1995), which
the paper extends: data and directory access are decoupled, each block
has a home node holding its directory entry, and attraction memories
migrate/replicate blocks under a write-invalidate protocol with four
stable states (Invalid, Shared, Master-shared, Exclusive).  Replacement
of a master copy *injects* the block toward the home node, which accepts
it or forwards it to a random node with room (paper Section 4.2).
"""

from repro.coma.states import AMState, DirectoryEntry
from repro.coma.attraction import AttractionMemory
from repro.coma.directory import Directory
from repro.coma.protocol import AccessOutcome, ProtocolEngine, TranslationAgent

__all__ = [
    "AMState",
    "AccessOutcome",
    "AttractionMemory",
    "Directory",
    "DirectoryEntry",
    "ProtocolEngine",
    "TranslationAgent",
]
