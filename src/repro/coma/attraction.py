"""One node's attraction memory.

A set-associative store of coherence-stated blocks at attraction-memory
block granularity.  Depending on the scheme the index/tag address is
physical (L0/L1/L2-TLB) or virtual (L3-TLB, V-COMA) — the structure is
identical; only the addresses fed to it differ (and with page coloring
they select the same sets, paper Figure 4).

Replacement prefers, in order: an Invalid slot, the LRU ``Shared``
replica (droppable), then the LRU master (which the protocol must
inject).  Preferring replicas over masters keeps injection traffic down
and is the standard COMA policy.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

from repro.common.address import AddressLayout
from repro.common.errors import ConfigurationError, ProtocolError
from repro.coma.states import AMState


class AMVictim(NamedTuple):
    """A block chosen for replacement, with its state."""

    block: int
    state: AMState


class AttractionMemory:
    """Set-associative attraction memory of one node (tags + states)."""

    def __init__(self, layout: AddressLayout, assoc: int, node: int = 0) -> None:
        if assoc <= 0:
            raise ConfigurationError("attraction memory associativity must be positive")
        self.layout = layout
        self.assoc = assoc
        self.node = node
        self.sets = layout.am_sets
        # _sets[i]: block base -> AMState, LRU order (oldest first).
        self._sets: List[Dict[int, AMState]] = [dict() for _ in range(self.sets)]
        # The layout's block/set arithmetic, pre-resolved: lookup() runs
        # several times per simulated reference.
        self._block_shift = layout.block_bits
        self._block_mask = ~((1 << layout.block_bits) - 1)
        self._set_mask = layout.am_sets - 1
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def _set_for(self, addr: int) -> Dict[int, AMState]:
        return self._sets[(addr >> self._block_shift) & self._set_mask]

    def block_base(self, addr: int) -> int:
        return self.layout.block_base(addr)

    # ------------------------------------------------------------------
    def lookup(self, addr: int, touch: bool = True) -> AMState:
        """Probe the block holding ``addr``; counts a hit or miss and
        (on hit) refreshes LRU order.  Returns INVALID on a miss."""
        block = addr & self._block_mask
        am_set = self._sets[(addr >> self._block_shift) & self._set_mask]
        state = am_set.get(block)
        if state is None or state is AMState.INVALID:
            self.misses += 1
            return AMState.INVALID
        self.hits += 1
        if touch:
            am_set[block] = am_set.pop(block)
        return state

    def state_of(self, addr: int) -> AMState:
        """State without statistics or LRU side effects."""
        return self._set_for(addr).get(self.layout.block_base(addr), AMState.INVALID)

    def contains(self, addr: int) -> bool:
        return self.state_of(addr) is not AMState.INVALID

    def set_state(self, addr: int, state: AMState) -> None:
        block = self.layout.block_base(addr)
        am_set = self._set_for(addr)
        if block not in am_set:
            raise ProtocolError(
                f"node {self.node}: set_state({state.name}) on absent block {block:#x}"
            )
        if state is AMState.INVALID:
            del am_set[block]
        else:
            am_set[block] = state

    # ------------------------------------------------------------------
    def free_ways(self, addr: int) -> int:
        """Unoccupied ways in the set ``addr`` maps to."""
        return self.assoc - len(self._set_for(addr))

    def has_invalid_slot(self, addr: int) -> bool:
        """Can an injection be accepted with no victim at all?"""
        return self.free_ways(addr) > 0

    def droppable_victim(self, addr: int) -> Optional[AMVictim]:
        """The LRU ``Shared`` replica of the set (injections at non-home
        nodes may displace one of these), or None."""
        for block, state in self._set_for(addr).items():
            if state is AMState.SHARED:
                return AMVictim(block, state)
        return None

    def choose_victim(self, addr: int) -> Optional[AMVictim]:
        """Victim for a demand fill: None if a free way exists, else the
        LRU Shared replica, else the LRU master."""
        am_set = self._set_for(addr)
        if len(am_set) < self.assoc:
            return None
        shared = self.droppable_victim(addr)
        if shared is not None:
            return shared
        block, state = next(iter(am_set.items()))
        return AMVictim(block, state)

    # ------------------------------------------------------------------
    def install(self, addr: int, state: AMState) -> None:
        """Fill a block; the caller must have made room first (the
        protocol handles victims so it can inject masters)."""
        if state is AMState.INVALID:
            raise ProtocolError("cannot install an INVALID block")
        block = self.layout.block_base(addr)
        am_set = self._set_for(addr)
        if block in am_set:
            am_set.pop(block)
        elif len(am_set) >= self.assoc:
            raise ProtocolError(
                f"node {self.node}: install {block:#x} into full set "
                f"(victim not evicted first)"
            )
        am_set[block] = state

    def evict(self, addr: int) -> AMVictim:
        """Remove a block (replacement path); raises if absent."""
        block = self.layout.block_base(addr)
        am_set = self._set_for(addr)
        state = am_set.pop(block, None)
        if state is None:
            raise ProtocolError(f"node {self.node}: evict absent block {block:#x}")
        return AMVictim(block, state)

    def invalidate(self, addr: int) -> Optional[AMVictim]:
        """Remove a block if present (coherence invalidation path)."""
        block = self.layout.block_base(addr)
        state = self._set_for(addr).pop(block, None)
        return None if state is None else AMVictim(block, state)

    # ------------------------------------------------------------------
    def resident_blocks(self) -> Iterator[Tuple[int, AMState]]:
        for am_set in self._sets:
            yield from am_set.items()

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def set_occupancy(self, set_index: int) -> int:
        return len(self._sets[set_index])

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (
            f"AttractionMemory(node={self.node}, sets={self.sets}, "
            f"assoc={self.assoc}, occupancy={self.occupancy()})"
        )
