"""Per-home-node directory memory.

The directory of a flat COMA records, for every block homed at this
node, where the master copy lives and which nodes hold replicas.  In
V-COMA the directory is *located* through the virtual-to-directory-
address translation (page table + DLB); that lookup path is modelled in
:mod:`repro.core.dlb` and charged by the protocol engine — this module
is the storage itself, keyed by protocol block address.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.common.errors import ProtocolError
from repro.coma.states import DirectoryEntry


class Directory:
    """Directory entries for the blocks homed at one node."""

    def __init__(self, node: int) -> None:
        self.node = node
        self._entries: Dict[int, DirectoryEntry] = {}
        self.lookups = 0

    def entry(self, block: int) -> DirectoryEntry:
        """Fetch (creating on first touch) the entry for a block."""
        self.lookups += 1
        found = self._entries.get(block)
        if found is None:
            found = DirectoryEntry()
            self._entries[block] = found
        return found

    def peek(self, block: int) -> Optional[DirectoryEntry]:
        """Entry without creating or counting (tests/invariants)."""
        return self._entries.get(block)

    def require_owner(self, block: int) -> int:
        """The master's node; raises :class:`ProtocolError` when the
        block has no master (data would be lost — impossible after
        preload)."""
        entry = self.entry(block)
        if entry.owner is None:
            raise ProtocolError(
                f"home {self.node}: block {block:#x} has no master copy"
            )
        return entry.owner

    def drop_sharer(self, block: int, node: int) -> None:
        entry = self._entries.get(block)
        if entry is not None:
            entry.sharers.discard(node)

    def forget(self, block: int) -> None:
        """Remove a block's entry entirely (page-out path)."""
        self._entries.pop(block, None)

    def blocks(self) -> Iterator[Tuple[int, DirectoryEntry]]:
        return iter(self._entries.items())

    def __len__(self) -> int:
        return len(self._entries)
