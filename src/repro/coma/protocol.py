"""The COMA-F write-invalidate coherence protocol (paper Section 4.2).

The engine owns every node's attraction memory and directory and
processes each transaction to completion (the trace-interleaved
simulator serializes transactions, so no transient states are needed).

Timing model (processor cycles), following Section 5.1:

* attraction-memory access (hit or miss detection): ``am_hit_latency``
  (74 in the paper);
* any address-sized message between distinct nodes:
  ``request_msg_cycles`` (16);
* any block-carrying message: ``block_msg_cycles`` (272);
* directory access: ``directory_lookup_latency``, plus whatever the
  :class:`TranslationAgent` charges (V-COMA's DLB miss costs the same 40
  cycles as a TLB miss);
* invalidations are multicast and overlapped: the requester waits for
  the slowest invalidate/ack round trip.

Replacement messages (injections, sharer drops) are buffered by the
node's protocol hardware and charged to the network but **not** to the
requesting processor's stall time, matching the paper's accounting where
only processor stalls on local/remote accesses appear.
"""

from __future__ import annotations

import random
from typing import Callable, List, NamedTuple, Optional

from repro.common.address import AddressLayout
from repro.common.errors import CapacityError, ProtocolError
from repro.common.params import MachineParams
from repro.common.stats import Counters
from repro.coma.attraction import AttractionMemory
from repro.coma.directory import Directory
from repro.coma.states import AMState
from repro.core.schemes import TapPoint
from repro.interconnect.crossbar import Crossbar
from repro.interconnect.message import MessageKind

#: Hook asking a node to keep its caches included: ``(node, block_base,
#: action)`` with action ``"invalidate"`` or ``"downgrade"``.  The node
#: flushes/downgrades every FLC/SLC block inside the AM block.
InclusionHook = Callable[[int, int, str], None]


class TranslationAgent:
    """Where (and at what cost) addresses get translated.

    The base class is a no-op: no tap recording, no stall.  Concrete
    agents (``repro.system.taps``) either feed TLB banks for the sweep
    experiments or charge real TLB/DLB models for the timing runs.
    Every method returns extra stall cycles.
    """

    #: Optional :class:`~repro.obs.trace.Tracer`.  Concrete agents emit
    #: translation events (``tlb_hit``/``dlb_fill``/...) when attached;
    #: the base class never reads it.
    trace = None

    def attach_trace(self, trace) -> None:
        """Attach a tracer (overridden by agents that emit events)."""
        self.trace = trace

    def uses_tap(self, tap: TapPoint) -> bool:
        """Does this agent do anything at ``tap``?

        Callers on the per-reference hot path (``Node``, the engine)
        query this once at construction and skip the ``at_*`` call
        entirely when it would be a no-op.  Agents whose taps are all
        no-ops anyway (the base class) still answer True — correctness
        never depends on a tap being called, only timing agents charge
        cycles and they answer precisely.
        """
        return True

    def at_l0(self, node: int, vpn: int) -> int:
        return 0

    def at_l1(self, node: int, vpn: int) -> int:
        return 0

    def at_l2(self, node: int, vpn: int, writeback: bool = False) -> int:
        return 0

    def at_l3(self, node: int, vpn: int) -> int:
        return 0

    def at_home(
        self,
        home: int,
        vpn: int,
        for_ownership: bool = False,
        injection: bool = False,
        requester: Optional[int] = None,
    ) -> int:
        return 0


class AccessOutcome(NamedTuple):
    """Result of one block access through the protocol.

    ``translation`` is the portion of ``cycles`` spent on address
    translation (L3 TLB / home DLB misses), reported separately so the
    caller can attribute it to translation stall rather than memory
    stall (the split Table 4 of the paper depends on).
    """

    cycles: int
    remote: bool
    translation: int = 0


class ProtocolEngine:
    """Machine-wide coherence: attraction memories + directories."""

    def __init__(
        self,
        params: MachineParams,
        layout: AddressLayout,
        crossbar: Crossbar,
        agent: Optional[TranslationAgent] = None,
        inclusion_hook: Optional[InclusionHook] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.params = params
        self.layout = layout
        self.crossbar = crossbar
        self.agent = agent if agent is not None else TranslationAgent()
        # Pre-resolve the engine-side taps; None means the agent declared
        # the tap a no-op, so the hot paths skip the call outright.
        self._at_l3 = self.agent.at_l3 if self.agent.uses_tap(TapPoint.L3) else None
        self._at_home = self.agent.at_home if self.agent.uses_tap(TapPoint.HOME) else None
        self.inclusion_hook = inclusion_hook or (lambda node, block, action: None)
        self._rng = rng if rng is not None else random.Random(params.seed)
        self.ams: List[AttractionMemory] = [
            AttractionMemory(layout, params.am_assoc, node=n) for n in range(params.nodes)
        ]
        self.directories: List[Directory] = [Directory(n) for n in range(params.nodes)]
        self.counters = Counters()
        self._trace = None
        self._em_fetch = None
        self._em_upgrade = None
        self._em_invalidate = None
        # Demand entry points are rebound on trace attachment (see the
        # ``trace`` setter): the untraced hot path — one call per SLC
        # miss / write upgrade in the sweep inner loop — jumps straight
        # to the implementation with no per-transaction is-None check.
        self.fetch = self._fetch
        self.upgrade_for_write = self._upgrade_for_write
        # Translation cycles of the transaction in flight (reported via
        # AccessOutcome.translation; reset by the demand entry points).
        self._translation_accum = 0
        # Optional last-resort hook: called with the block whose master
        # found no slot anywhere; returns True after making room (e.g.
        # the page daemon swapped a page of that global set out).
        self.overflow_handler: Optional[Callable[[int], bool]] = None
        # Block of the demand transaction in flight (so a swap-out
        # triggered mid-transaction never purges the page being fetched).
        self.active_demand_block: Optional[int] = None
        # Optional page-fault hook: called when a demand request reaches
        # a block with no master copy (its page was swapped out).  The
        # handler pages it back in and returns True on success.
        self.fault_handler: Optional[Callable[[int], bool]] = None

    @property
    def trace(self):
        """Optional :class:`~repro.obs.trace.Tracer` (set by the
        machine).  When attached, every demand transaction becomes a
        span and injections/invalidations become events; when None the
        demand path pays one pointer check.  Attaching hoists packed
        emitters for the per-transaction record shapes."""
        return self._trace

    @trace.setter
    def trace(self, tracer) -> None:
        self._trace = tracer
        if tracer is None:
            self._em_fetch = self._em_upgrade = self._em_invalidate = None
            self.fetch = self._fetch
            self.upgrade_for_write = self._upgrade_for_write
            return
        span_keys = (("node", "write", "block", "home"), ("remote", "translation"))
        self._em_fetch = tracer.span_emitter(
            "protocol.fetch", *span_keys, bools=("write", "remote")
        )
        self._em_upgrade = tracer.span_emitter(
            "protocol.upgrade", *span_keys, bools=("write", "remote")
        )
        self._em_invalidate = tracer.event_emitter(
            "protocol.invalidate", ("node", "block", "home")
        )
        self.fetch = self._traced_fetch
        self.upgrade_for_write = self._traced_upgrade_for_write

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def home_of(self, addr: int) -> int:
        """Home node: low ``p`` bits of the page number.  Holds for both
        virtual addresses (V-COMA/L3) and our physical layout (the frame
        allocator mirrors the field placement)."""
        return self.layout.home_node(addr)

    def _vpn(self, addr: int) -> int:
        return self.layout.vpn(addr)

    def _dir_lookup_cycles(
        self,
        home: int,
        addr: int,
        for_ownership: bool,
        injection: bool = False,
        requester: Optional[int] = None,
    ) -> int:
        at_home = self._at_home
        if at_home is None:
            return self.params.directory_lookup_latency
        penalty = at_home(home, self._vpn(addr), for_ownership, injection, requester=requester)
        if not injection:
            self._translation_accum += penalty
        return self.params.directory_lookup_latency + penalty

    # ------------------------------------------------------------------
    # demand path (called by nodes on SLC misses / write upgrades)
    # ------------------------------------------------------------------
    def _traced_fetch(self, node: int, addr: int, is_write: bool, now: int) -> AccessOutcome:
        """``fetch`` with the transaction wrapped in a trace span.
        ``fetch``/``upgrade_for_write`` are instance attributes bound by
        the ``trace`` setter — untraced engines dispatch straight to
        ``_fetch``/``_upgrade_for_write``; traced engines come here."""
        return self._traced(self._fetch, self._em_fetch, node, addr, is_write, now)

    def _fetch(self, node: int, addr: int, is_write: bool, now: int) -> AccessOutcome:
        """Satisfy an SLC miss at ``node`` for the block holding
        ``addr``; guarantees the local AM ends with a readable copy
        (EXCLUSIVE when ``is_write``).  Reached as ``engine.fetch`` on
        untraced engines."""
        block = self.layout.block_base(addr)
        self._translation_accum = 0
        self.active_demand_block = block
        state = self.ams[node].lookup(block)
        if state.readable:
            if not is_write or state.writable:
                self.counters.add("am_local_hits")
                return AccessOutcome(self.params.am_hit_latency, False)
            cycles = self.params.am_hit_latency + self._upgrade(node, block, now)
            return AccessOutcome(cycles, True, self._translation_accum)
        cycles = self.params.am_hit_latency + self._remote_fetch(node, block, is_write, now)
        return AccessOutcome(cycles, True, self._translation_accum)

    def _traced_upgrade_for_write(self, node: int, addr: int, now: int) -> AccessOutcome:
        """``upgrade_for_write`` wrapped in a trace span (see
        :meth:`_traced_fetch` for the dispatch scheme)."""
        return self._traced(
            self._upgrade_for_write, self._em_upgrade, node, addr, True, now
        )

    def _traced(self, entry_point, emitters, node, addr, is_write, now) -> AccessOutcome:
        """Run one demand transaction inside a (packed) trace span."""
        begin, end = emitters
        block = self.layout.block_base(addr)
        begin(now, node, bool(is_write), block, self.home_of(block))
        if emitters is self._em_fetch:
            outcome = entry_point(node, addr, is_write, now)
        else:
            outcome = entry_point(node, addr, now)
        end(now + outcome.cycles, outcome.remote, outcome.translation)
        return outcome

    def _upgrade_for_write(self, node: int, addr: int, now: int) -> AccessOutcome:
        """A store hit a clean-shared SLC block: the AM must gain
        exclusive ownership.  (If the AM already owns it exclusively the
        access completes locally.)  Reached as ``engine.upgrade_for_write``
        on untraced engines."""
        block = self.layout.block_base(addr)
        self._translation_accum = 0
        self.active_demand_block = block
        state = self.ams[node].lookup(block)
        if state is AMState.INVALID:
            # SLC held the block but the AM does not — inclusion bug.
            raise ProtocolError(
                f"node {node}: SLC/AM inclusion violated for block {block:#x}"
            )
        if state.writable:
            self.counters.add("am_local_hits")
            return AccessOutcome(self.params.am_hit_latency, False)
        cycles = self.params.am_hit_latency + self._upgrade(node, block, now)
        return AccessOutcome(cycles, True, self._translation_accum)

    def writeback(self, node: int, addr: int, now: int) -> None:
        """A dirty SLC block is written back into the local AM.

        Inclusion guarantees the AM holds the block; dirtiness implies
        the AM owns it exclusively.  No stall (write buffers)."""
        block = self.layout.block_base(addr)
        state = self.ams[node].state_of(block)
        if not state.is_master:
            # Dirty data may also drain during an Exclusive->Master-shared
            # downgrade, hence masters generally (not only EXCLUSIVE).
            raise ProtocolError(
                f"node {node}: writeback of {block:#x} but AM state is {state.name}"
            )
        self.counters.add("slc_writebacks_to_am")

    # ------------------------------------------------------------------
    # remote transactions
    # ------------------------------------------------------------------
    def _remote_fetch(self, node: int, block: int, is_write: bool, now: int) -> int:
        """Fetch a block copy from the system; returns stall cycles
        beyond the local AM lookup."""
        self.counters.add("remote_writes" if is_write else "remote_reads")
        at_l3 = self._at_l3
        penalty = at_l3(node, self._vpn(block)) if at_l3 is not None else 0
        self._translation_accum += penalty
        home = self.home_of(block)
        t = now + penalty
        kind = MessageKind.WRITE_REQUEST if is_write else MessageKind.READ_REQUEST
        t = self.crossbar.transfer(kind, node, home, t)
        t += self._dir_lookup_cycles(home, block, for_ownership=is_write, requester=node)
        entry = self.directories[home].entry(block)
        owner = entry.owner
        faulted = False
        if owner is None and self.fault_handler is not None:
            # Page fault at the home node: the page was swapped out.
            if self.fault_handler(block):
                faulted = True
                self.counters.add("page_faults")
                t += self.params.page_fault_penalty
                entry = self.directories[home].entry(block)
                owner = entry.owner
        if owner is None:
            raise ProtocolError(f"block {block:#x} has no master copy (home {home})")
        if owner == node:
            if not faulted:
                raise ProtocolError(
                    f"node {node} missed on block {block:#x} it is master of"
                )
            # The paged-in master landed at the requester itself.
            if is_write:
                entry.sharers.clear()
                self.ams[node].set_state(block, AMState.EXCLUSIVE)
            return t - now

        if is_write:
            t = self._invalidate_holders(entry, block, home, exclude=node, start=t)
            supplier = owner
            if supplier == home:
                t += self.params.am_hit_latency
            else:
                t = self.crossbar.transfer(MessageKind.FORWARD, home, supplier, t)
                t += self.params.am_hit_latency
            # The supplier's copy was already removed by the
            # invalidation round (owner included).
            t = self.crossbar.transfer(MessageKind.BLOCK_REPLY, supplier, node, t)
            self._make_room(node, block, now)
            self.ams[node].install(block, AMState.EXCLUSIVE)
            entry.owner = node
            entry.sharers.clear()
        else:
            supplier = owner
            if supplier == home:
                t += self.params.am_hit_latency
            else:
                t = self.crossbar.transfer(MessageKind.FORWARD, home, supplier, t)
                t += self.params.am_hit_latency
            # The master keeps its copy but can no longer be Exclusive.
            if self.ams[supplier].state_of(block) is AMState.EXCLUSIVE:
                self.ams[supplier].set_state(block, AMState.MASTER_SHARED)
                self.inclusion_hook(supplier, block, "downgrade")
            t = self.crossbar.transfer(MessageKind.BLOCK_REPLY, supplier, node, t)
            self._make_room(node, block, now)
            self.ams[node].install(block, AMState.SHARED)
            entry.sharers.add(node)
        return t - now

    def _upgrade(self, node: int, block: int, now: int) -> int:
        """Gain exclusive ownership of a block the node already holds
        (Shared or Master-shared); returns stall cycles."""
        self.counters.add("upgrades")
        at_l3 = self._at_l3
        penalty = at_l3(node, self._vpn(block)) if at_l3 is not None else 0
        self._translation_accum += penalty
        home = self.home_of(block)
        t = now + penalty
        t = self.crossbar.transfer(MessageKind.UPGRADE_REQUEST, node, home, t)
        t += self._dir_lookup_cycles(home, block, for_ownership=True, requester=node)
        entry = self.directories[home].entry(block)
        if entry.owner is None:
            raise ProtocolError(f"upgrade of {block:#x}: no master copy")
        t = self._invalidate_holders(entry, block, home, exclude=node, start=t)
        t = self.crossbar.transfer(MessageKind.ACK, home, node, t)
        entry.owner = node
        entry.sharers.clear()
        self.ams[node].set_state(block, AMState.EXCLUSIVE)
        return t - now

    def _invalidate_holders(self, entry, block: int, home: int, exclude: int, start: int) -> int:
        """Invalidate every copy except ``exclude``'s; returns the time
        the slowest ack reaches home (overlapped multicast)."""
        holders = [n for n in entry.holders if n != exclude]
        done = start
        emit = self._em_invalidate
        for holder in holders:
            arrive = self.crossbar.transfer(MessageKind.INVALIDATE, home, holder, start)
            self._invalidate_copy(holder, block)
            ack = self.crossbar.transfer(MessageKind.ACK, holder, home, arrive)
            done = max(done, ack)
            if emit is not None:
                emit(arrive, holder, block, home)
        entry.sharers.difference_update(holders)
        if entry.owner in holders:
            entry.owner = None
        self.counters.add("invalidations", len(holders))
        return done

    def _invalidate_copy(self, node: int, block: int) -> None:
        victim = self.ams[node].invalidate(block)
        if victim is not None:
            self.inclusion_hook(node, block, "invalidate")

    # ------------------------------------------------------------------
    # replacement path
    # ------------------------------------------------------------------
    def _make_room(self, node: int, block: int, now: int) -> None:
        """Ensure the AM set ``block`` maps to at ``node`` has a free
        way, evicting (and possibly injecting) a victim."""
        victim = self.ams[node].choose_victim(block)
        if victim is None:
            return
        self.ams[node].evict(victim.block)
        self.inclusion_hook(node, victim.block, "invalidate")
        if victim.state is AMState.SHARED:
            home = self.home_of(victim.block)
            self.crossbar.transfer(MessageKind.SHARER_DROP, node, home, now)
            self.directories[home].drop_sharer(victim.block, node)
            self.counters.add("sharer_drops")
        else:
            self._inject(node, victim.block, victim.state, now)

    def _inject(self, src: int, block: int, state: AMState, now: int) -> None:
        """Send a replaced master copy toward its home (paper §4.2).

        The home accepts only into an Invalid slot; other nodes accept
        into an Invalid slot or by dropping a Shared replica.  Nodes are
        tried in random order, then a deterministic fallback scan; if no
        node can take the master the global set is over-committed and
        :class:`CapacityError` is raised."""
        self.counters.add("injections")
        home = self.home_of(block)
        if self._trace is not None:
            self._trace.event(
                "protocol.inject", now, node=src, block=block, home=home,
                state=state.name,
            )
        t = self.crossbar.transfer(MessageKind.INJECT, src, home, now)
        t += self._dir_lookup_cycles(home, block, for_ownership=False, injection=True, requester=src)
        entry = self.directories[home].entry(block)

        if home != src and self._accept_injection(home, block, state, entry, home_rules=True):
            return
        candidates = [n for n in range(self.params.nodes) if n != src and n != home]
        self._rng.shuffle(candidates)
        previous = home
        for target in candidates:
            t = self.crossbar.transfer(MessageKind.INJECT_FORWARD, previous, target, t)
            self.counters.add("inject_forwards")
            previous = target
            if self._accept_injection(target, block, state, entry, home_rules=False):
                return
        # Every node is full of masters: ask the page daemon (when one
        # is wired) to swap a page of this global set out, then retry.
        if self.overflow_handler is not None and self.overflow_handler(block):
            self.counters.add("overflow_swaps")
            for target in [home] + candidates:
                if target != src and self._accept_injection(
                    target, block, state, entry, home_rules=False
                ):
                    return
        raise CapacityError(
            f"no node could accept injected master of block {block:#x} "
            f"(global set over-committed; reduce data set or memory pressure)"
        )

    def _accept_injection(self, target: int, block: int, state: AMState, entry, home_rules: bool) -> bool:
        am = self.ams[target]
        resident = am.state_of(block)
        if resident is AMState.SHARED:
            # Merge the master into an existing replica.
            am.set_state(block, state if state is AMState.MASTER_SHARED else AMState.MASTER_SHARED)
            entry.sharers.discard(target)
            entry.owner = target
            self.counters.add("inject_merges")
            return True
        if am.has_invalid_slot(block):
            am.install(block, state)
            entry.owner = target
            return True
        if home_rules:
            return False
        dropped = am.droppable_victim(block)
        if dropped is None:
            return False
        am.evict(dropped.block)
        self.inclusion_hook(target, dropped.block, "invalidate")
        victim_home = self.home_of(dropped.block)
        self.directories[victim_home].drop_sharer(dropped.block, target)
        self.counters.add("inject_displacements")
        am.install(block, state)
        entry.owner = target
        return True

    # ------------------------------------------------------------------
    # preload (paper: data sets are preloaded; no paging simulated)
    # ------------------------------------------------------------------
    def preload_block(self, block: int) -> int:
        """Install the initial master copy of a block, at its home when
        possible, else spread to the nearest node with a free slot.
        Returns the node that received the master."""
        home = self.home_of(block)
        entry = self.directories[home].entry(block)
        if entry.owner is not None:
            return entry.owner
        for offset in range(self.params.nodes):
            target = (home + offset) % self.params.nodes
            if self.ams[target].has_invalid_slot(block):
                self.ams[target].install(block, AMState.MASTER_SHARED)
                entry.owner = target
                return target
        # No free slot: displace a Shared replica (page-in path — during
        # the initial preload no replicas exist and this never triggers).
        for offset in range(self.params.nodes):
            target = (home + offset) % self.params.nodes
            dropped = self.ams[target].droppable_victim(block)
            if dropped is None:
                continue
            self.ams[target].evict(dropped.block)
            self.inclusion_hook(target, dropped.block, "invalidate")
            self.directories[self.home_of(dropped.block)].drop_sharer(
                dropped.block, target
            )
            self.ams[target].install(block, AMState.MASTER_SHARED)
            entry.owner = target
            return target
        raise CapacityError(
            f"preload: no free slot anywhere for block {block:#x} "
            f"(data set exceeds attraction-memory capacity in its global set)"
        )

    # ------------------------------------------------------------------
    # page-out (swap daemon extension)
    # ------------------------------------------------------------------
    def purge_block(self, block: int) -> None:
        """Remove every copy of a block and its directory entry (page
        swap-out).  No timing: the daemon runs off the critical path."""
        home = self.home_of(block)
        entry = self.directories[home].peek(block)
        if entry is None:
            return
        for holder in list(entry.holders):
            self._invalidate_copy(holder, block)
        self.directories[home].forget(block)

    # ------------------------------------------------------------------
    # invariant checking (tests / paranoid mode)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify the directory and the AMs agree.  O(resident blocks);
        meant for tests, not inner loops."""
        seen_masters = {}
        for node, am in enumerate(self.ams):
            for block, state in am.resident_blocks():
                if state.is_master:
                    if block in seen_masters:
                        raise ProtocolError(
                            f"two masters for {block:#x}: nodes "
                            f"{seen_masters[block]} and {node}"
                        )
                    seen_masters[block] = node
                home = self.home_of(block)
                entry = self.directories[home].peek(block)
                if entry is None:
                    raise ProtocolError(f"{block:#x} resident but no directory entry")
                if state is AMState.SHARED and node not in entry.sharers:
                    raise ProtocolError(
                        f"{block:#x} shared at {node} but not in sharer set"
                    )
                if state.is_master and entry.owner != node:
                    raise ProtocolError(
                        f"{block:#x} master at {node} but directory says {entry.owner}"
                    )
                if state is AMState.EXCLUSIVE and entry.sharers:
                    raise ProtocolError(
                        f"{block:#x} exclusive at {node} but sharers {entry.sharers}"
                    )
        for home, directory in enumerate(self.directories):
            for block, entry in directory.blocks():
                entry.check()
                if entry.owner is not None and seen_masters.get(block) != entry.owner:
                    raise ProtocolError(
                        f"directory {home}: owner {entry.owner} of {block:#x} "
                        f"holds no master copy"
                    )
                for sharer in entry.sharers:
                    if self.ams[sharer].state_of(block) is not AMState.SHARED:
                        raise ProtocolError(
                            f"directory {home}: sharer {sharer} of {block:#x} "
                            f"holds no shared copy"
                        )
