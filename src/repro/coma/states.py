"""Coherence states and directory entries (paper Section 4.2).

Each attraction-memory block is in one of four stable states:

``INVALID``
    The slot holds no valid copy.
``SHARED``
    A read-only replica; it may be dropped silently on replacement
    (after notifying the directory).
``MASTER_SHARED``
    The *master* copy while other Shared replicas may exist.  Exactly
    one master exists per block system-wide; replacing it requires
    injection so the data is never lost.
``EXCLUSIVE``
    The only copy, writable.  Also a master for replacement purposes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Set


class AMState(enum.IntEnum):
    INVALID = 0
    SHARED = 1
    MASTER_SHARED = 2
    EXCLUSIVE = 3

    @property
    def is_master(self) -> bool:
        """Master copies must be injected, not dropped, on replacement."""
        return self in (AMState.MASTER_SHARED, AMState.EXCLUSIVE)

    @property
    def readable(self) -> bool:
        return self is not AMState.INVALID

    @property
    def writable(self) -> bool:
        return self is AMState.EXCLUSIVE


@dataclass
class DirectoryEntry:
    """Home-node bookkeeping for one memory block.

    ``owner`` is the node holding the master copy; ``sharers`` holds the
    nodes with Shared replicas (never including the owner).
    """

    owner: Optional[int] = None
    sharers: Set[int] = field(default_factory=set)

    @property
    def holders(self) -> Set[int]:
        """Every node with a valid copy."""
        if self.owner is None:
            return set(self.sharers)
        return self.sharers | {self.owner}

    @property
    def is_exclusive(self) -> bool:
        return self.owner is not None and not self.sharers

    def check(self) -> None:
        """Internal-consistency assertion (used by tests and the
        protocol's paranoid mode)."""
        if self.owner is not None and self.owner in self.sharers:
            raise AssertionError(f"owner {self.owner} also listed as sharer")
