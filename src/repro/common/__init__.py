"""Shared infrastructure: parameters, address layout, statistics, RNG.

Everything else in :mod:`repro` builds on this package.  It is free of
simulation logic; it only defines *how the machine is described* (sizes,
latencies, address-bit fields) and small utilities used everywhere.
"""

from repro.common.errors import (
    CapacityError,
    ConfigurationError,
    ProtocolError,
    ReproError,
    TranslationFault,
)
from repro.common.address import AddressLayout
from repro.common.params import MachineParams
from repro.common.rng import make_rng, substream_seed
from repro.common.stats import Counters, TimeBreakdown

__all__ = [
    "AddressLayout",
    "CapacityError",
    "ConfigurationError",
    "Counters",
    "MachineParams",
    "ProtocolError",
    "ReproError",
    "TimeBreakdown",
    "TranslationFault",
    "make_rng",
    "substream_seed",
]
