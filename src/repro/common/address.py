"""Virtual/physical address field decomposition (paper Figure 6).

Addresses are plain Python ints.  :class:`AddressLayout` derives every
field boundary from a :class:`~repro.common.params.MachineParams`:

``b``
    log2 of the attraction-memory block size — the granularity of
    coherence and of directory entries.
``n``
    log2 of the page size.
``p``
    log2 of the node count.  In V-COMA (and for our round-robin physical
    allocator) the **low p bits of the page number select the home node**.
``s``
    log2 of the number of attraction-memory sets per node.

Derived structures:

* the AM set index of a block is address bits ``[b, b+s)``;
* a page spans ``2^(n-b)`` consecutive AM sets, so pages fall into
  ``2^(s+b-n)`` *global page sets* (page colors) indexed by address bits
  ``[n, s+b)``;
* within a page, a block's directory-entry index is bits ``[b, n)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.params import MachineParams


def _log2(x: int) -> int:
    return x.bit_length() - 1


@dataclass(frozen=True)
class AddressLayout:
    """Bit-field views over integer addresses for one machine geometry."""

    block_bits: int
    page_bits: int
    node_bits: int
    am_set_bits: int
    flc_block_bits: int
    slc_block_bits: int

    @classmethod
    def from_params(cls, params: MachineParams) -> "AddressLayout":
        return cls(
            block_bits=_log2(params.am_block),
            page_bits=_log2(params.page_size),
            node_bits=_log2(params.nodes),
            am_set_bits=_log2(params.am_sets),
            flc_block_bits=_log2(params.flc_block),
            slc_block_bits=_log2(params.slc_block),
        )

    # ------------------------------------------------------------------
    # derived counts
    # ------------------------------------------------------------------
    @property
    def page_size(self) -> int:
        return 1 << self.page_bits

    @property
    def nodes(self) -> int:
        return 1 << self.node_bits

    @property
    def am_sets(self) -> int:
        return 1 << self.am_set_bits

    @property
    def blocks_per_page(self) -> int:
        return 1 << (self.page_bits - self.block_bits)

    @property
    def global_page_set_bits(self) -> int:
        """Width of the global-page-set (page color) index."""
        return self.am_set_bits + self.block_bits - self.page_bits

    @property
    def global_page_sets(self) -> int:
        return 1 << self.global_page_set_bits

    # ------------------------------------------------------------------
    # page-granularity fields
    # ------------------------------------------------------------------
    def vpn(self, addr: int) -> int:
        """Virtual page number."""
        return addr >> self.page_bits

    def page_offset(self, addr: int) -> int:
        return addr & (self.page_size - 1)

    def page_base(self, addr: int) -> int:
        return addr & ~(self.page_size - 1)

    def home_node(self, addr: int) -> int:
        """Home node of a virtual address: low ``p`` bits of the VPN."""
        return (addr >> self.page_bits) & (self.nodes - 1)

    def home_node_of_vpn(self, vpn: int) -> int:
        return vpn & (self.nodes - 1)

    def global_page_set(self, addr: int) -> int:
        """Page color: address bits ``[n, s+b)``."""
        return (addr >> self.page_bits) & (self.global_page_sets - 1)

    def global_page_set_of_vpn(self, vpn: int) -> int:
        return vpn & (self.global_page_sets - 1)

    # ------------------------------------------------------------------
    # block-granularity fields
    # ------------------------------------------------------------------
    def block_number(self, addr: int) -> int:
        """Block number at attraction-memory granularity."""
        return addr >> self.block_bits

    def block_base(self, addr: int) -> int:
        return addr & ~((1 << self.block_bits) - 1)

    def am_set_index(self, addr: int) -> int:
        """Attraction-memory set index: address bits ``[b, b+s)``."""
        return (addr >> self.block_bits) & (self.am_sets - 1)

    def directory_entry_index(self, addr: int) -> int:
        """Index of the block's entry inside its directory page
        (the ``n - b`` page-offset bits above the block offset)."""
        return (addr >> self.block_bits) & (self.blocks_per_page - 1)

    def flc_block_base(self, addr: int) -> int:
        return addr & ~((1 << self.flc_block_bits) - 1)

    def slc_block_base(self, addr: int) -> int:
        return addr & ~((1 << self.slc_block_bits) - 1)

    # ------------------------------------------------------------------
    # construction helpers (used by tests and workloads)
    # ------------------------------------------------------------------
    def make_address(self, vpn: int, offset: int = 0) -> int:
        """Build an address from a page number and page offset."""
        if not 0 <= offset < self.page_size:
            raise ValueError(f"offset {offset} outside page of {self.page_size} bytes")
        return (vpn << self.page_bits) | offset

    def page_am_sets(self, vpn: int) -> range:
        """The consecutive AM set indices a page's blocks occupy."""
        first = self.am_set_index(vpn << self.page_bits)
        return range(first, first + self.blocks_per_page)
