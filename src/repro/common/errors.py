"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything coming out of the simulator with one handler while
still distinguishing configuration mistakes from runtime protocol
violations.
"""


class ReproError(Exception):
    """Base class of all exceptions raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """A :class:`~repro.common.params.MachineParams` (or workload)
    configuration is internally inconsistent — e.g. a cache size that is
    not a multiple of ``block * assoc``, or a page smaller than an
    attraction-memory block."""


class CapacityError(ReproError):
    """A COMA global set ran out of slots for a master copy.

    In a real COMA the page daemon would swap a page out; the simulator
    preloads all pages (as the paper does) and treats global-set pressure
    reaching 1 as a hard error unless the optional swap daemon is
    enabled."""


class ProtocolError(ReproError):
    """The coherence protocol reached a state that should be unreachable
    (e.g. two Exclusive copies of one block).  Always indicates a bug, not
    a workload problem."""


class TranslationFault(ReproError):
    """A virtual address could not be translated — no page-table entry at
    the home node.  With preloaded data sets this means the workload
    touched an address outside its declared segments."""
