"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything coming out of the simulator with one handler while
still distinguishing configuration mistakes from runtime protocol
violations.
"""


class ReproError(Exception):
    """Base class of all exceptions raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """A :class:`~repro.common.params.MachineParams` (or workload)
    configuration is internally inconsistent — e.g. a cache size that is
    not a multiple of ``block * assoc``, or a page smaller than an
    attraction-memory block."""


class CapacityError(ReproError):
    """A COMA global set ran out of slots for a master copy.

    In a real COMA the page daemon would swap a page out; the simulator
    preloads all pages (as the paper does) and treats global-set pressure
    reaching 1 as a hard error unless the optional swap daemon is
    enabled."""


class ProtocolError(ReproError):
    """The coherence protocol reached a state that should be unreachable
    (e.g. two Exclusive copies of one block).  Always indicates a bug, not
    a workload problem."""


class TranslationFault(ReproError):
    """A virtual address could not be translated — no page-table entry at
    the home node.  With preloaded data sets this means the workload
    touched an address outside its declared segments."""


class JobError(ReproError):
    """A worker-side exception that could not be rehydrated in the
    parent (unknown type, unpicklable payload).  Carries the original
    type name and traceback text in its message."""


class RunInterrupted(ReproError):
    """A batch run was interrupted (SIGINT) after a clean shutdown.

    Completed jobs were flushed to the run manifest before this was
    raised, so the sweep can be resumed with ``--resume run_id``.
    """

    def __init__(self, run_id, completed: int, total: int) -> None:
        self.run_id = run_id
        self.completed = completed
        self.total = total
        hint = f"; resume with --resume {run_id}" if run_id else ""
        super().__init__(
            f"interrupted after {completed}/{total} jobs{hint}"
        )


def is_transient(exc: BaseException) -> bool:
    """Whether a job failure is worth retrying.

    *Transient* failures are environmental — I/O errors, corrupt trace
    bytes, worker death, timeouts — and may succeed on a re-run.
    *Deterministic* failures (:class:`ConfigurationError`,
    :class:`ProtocolError`, :class:`TranslationFault`, and any other
    exception reproducibly raised by the simulation itself) would fail
    identically every attempt, so retrying only wastes work.
    """
    if isinstance(exc, OSError):
        return True
    # TraceError lives in repro.system.taptrace, which imports this
    # module; resolve it lazily to avoid the cycle.
    from repro.system.taptrace import TraceError

    return isinstance(exc, TraceError)
