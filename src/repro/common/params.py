"""Machine description: sizes, geometries and latencies.

:class:`MachineParams` is an immutable, validated description of the
simulated multiprocessor.  The defaults are the paper's baseline (Section
5.1): 32 nodes, 200 MHz processors, a 16 KB direct-mapped write-through
FLC with 32-byte blocks, a 64 KB 4-way write-back SLC with 64-byte blocks,
a 4 MB 4-way attraction memory with 128-byte blocks, 4 KB pages, and an
8-bit crossbar at 100 MHz on which an 8-byte request takes 16 processor
cycles and a block message 272.

Tests and benchmarks typically use :meth:`MachineParams.scaled_down`,
which shrinks every memory by a common factor while keeping the paper's
geometry (associativities, block sizes, latency ratios) intact.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.common.errors import ConfigurationError


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


def _log2(x: int) -> int:
    return x.bit_length() - 1


@dataclass(frozen=True)
class MachineParams:
    """Immutable description of the simulated COMA multiprocessor.

    All sizes are in bytes and must be powers of two.  Latencies are in
    processor cycles.  Network message costs are derived from the crossbar
    width and the clock ratio but can be overridden.
    """

    nodes: int = 32
    cpu_clock_mhz: int = 200
    network_clock_mhz: int = 100
    page_size: int = 4096

    flc_size: int = 16 * 1024
    flc_block: int = 32
    flc_assoc: int = 1

    slc_size: int = 64 * 1024
    slc_block: int = 64
    slc_assoc: int = 4

    am_size: int = 4 * 1024 * 1024
    am_block: int = 128
    am_assoc: int = 4

    slc_hit_latency: int = 6
    am_hit_latency: int = 74
    translation_miss_penalty: int = 40
    directory_lookup_latency: int = 4
    page_fault_penalty: int = 5000
    router_latency_cycles: int = 4

    network_width_bytes: int = 1
    request_payload_bytes: int = 8
    message_header_bytes: int = 8

    seed: int = 1998

    def __post_init__(self) -> None:
        for name in (
            "nodes",
            "page_size",
            "flc_size",
            "flc_block",
            "flc_assoc",
            "slc_size",
            "slc_block",
            "slc_assoc",
            "am_size",
            "am_block",
            "am_assoc",
        ):
            value = getattr(self, name)
            if not _is_pow2(value):
                raise ConfigurationError(f"{name}={value} must be a power of two")
        for name in (
            "cpu_clock_mhz",
            "network_clock_mhz",
            "slc_hit_latency",
            "am_hit_latency",
            "translation_miss_penalty",
            "directory_lookup_latency",
            "page_fault_penalty",
            "router_latency_cycles",
            "network_width_bytes",
            "request_payload_bytes",
            "message_header_bytes",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.cpu_clock_mhz % self.network_clock_mhz != 0:
            raise ConfigurationError("cpu clock must be a multiple of the network clock")
        if not self.flc_block <= self.slc_block <= self.am_block:
            raise ConfigurationError("block sizes must not shrink down the hierarchy")
        for level, (size, block, assoc) in {
            "flc": (self.flc_size, self.flc_block, self.flc_assoc),
            "slc": (self.slc_size, self.slc_block, self.slc_assoc),
            "am": (self.am_size, self.am_block, self.am_assoc),
        }.items():
            if size % (block * assoc) != 0:
                raise ConfigurationError(
                    f"{level}_size must be a multiple of block*assoc "
                    f"({size} % {block * assoc} != 0)"
                )
            if not _is_pow2(size // (block * assoc)):
                raise ConfigurationError(f"{level} set count must be a power of two")
        if self.page_size < self.am_block:
            raise ConfigurationError("a page must hold at least one attraction-memory block")
        if self.am_way_size < self.page_size:
            raise ConfigurationError(
                "attraction-memory way size must be at least one page "
                f"(way={self.am_way_size}, page={self.page_size}); "
                "a page must map onto consecutive AM sets"
            )

    # ------------------------------------------------------------------
    # derived geometry
    # ------------------------------------------------------------------
    @property
    def clock_ratio(self) -> int:
        """Processor cycles per network cycle."""
        return self.cpu_clock_mhz // self.network_clock_mhz

    @property
    def flc_sets(self) -> int:
        return self.flc_size // (self.flc_block * self.flc_assoc)

    @property
    def slc_sets(self) -> int:
        return self.slc_size // (self.slc_block * self.slc_assoc)

    @property
    def am_sets(self) -> int:
        return self.am_size // (self.am_block * self.am_assoc)

    @property
    def am_way_size(self) -> int:
        """Bytes covered by one way of the attraction memory (S*B)."""
        return self.am_size // self.am_assoc

    @property
    def global_page_sets(self) -> int:
        """Number of *global page sets* (page colors): ``S*B / N``."""
        return self.am_way_size // self.page_size

    @property
    def pages_per_am(self) -> int:
        return self.am_size // self.page_size

    @property
    def page_slots_per_global_set(self) -> int:
        """Maximum page slots in a global page set: ``P * K`` (paper §6)."""
        return self.nodes * self.am_assoc

    @property
    def blocks_per_page(self) -> int:
        """Directory entries per directory page (paper §4.2)."""
        return self.page_size // self.am_block

    @property
    def total_am_pages(self) -> int:
        """System-wide attraction-memory capacity in pages."""
        return self.pages_per_am * self.nodes

    # ------------------------------------------------------------------
    # derived latencies (processor cycles)
    # ------------------------------------------------------------------
    @property
    def request_msg_cycles(self) -> int:
        """Cycles to deliver an 8-byte request over the crossbar.

        8 payload bytes on a 1-byte-wide link at a 2:1 clock ratio gives
        the paper's 16 processor cycles.
        """
        flits = -(-self.request_payload_bytes // self.network_width_bytes)
        return flits * self.clock_ratio

    @property
    def block_msg_cycles(self) -> int:
        """Cycles to deliver a message carrying one AM block.

        Header + 128-byte block on the default crossbar gives the paper's
        272 processor cycles.
        """
        payload = self.am_block + self.message_header_bytes
        flits = -(-payload // self.network_width_bytes)
        return flits * self.clock_ratio

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def replace(self, **changes) -> "MachineParams":
        """Return a copy with the given fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def paper_baseline(cls) -> "MachineParams":
        """The exact configuration of Section 5.1."""
        return cls()

    @classmethod
    def scaled_down(cls, factor: int = 64, nodes: int = 8, **overrides) -> "MachineParams":
        """A geometry-preserving shrink of the paper machine.

        ``factor`` divides every memory size (FLC floor 1 KB, SLC floor
        2 KB, AM floor 16 KB) while keeping block sizes, associativities
        and latencies; ``nodes`` replaces the node count.  Extra keyword
        overrides are applied last.
        """
        if factor < 1:
            raise ConfigurationError("scale factor must be >= 1")
        base = cls()
        params = {
            "nodes": nodes,
            "flc_size": max(base.flc_size // factor, 1024),
            "slc_size": max(base.slc_size // factor, 2048),
            "am_size": max(base.am_size // factor, 16 * 1024),
            "page_size": min(base.page_size, max(base.am_size // factor, 16 * 1024) // base.am_assoc),
        }
        params.update(overrides)
        return cls(**params)

    def describe(self) -> str:
        """Human-readable multi-line summary of the configuration."""
        lines = [
            f"{self.nodes} nodes @ {self.cpu_clock_mhz} MHz",
            f"FLC {self.flc_size // 1024} KB {self.flc_assoc}-way, {self.flc_block} B blocks (write-through)",
            f"SLC {self.slc_size // 1024} KB {self.slc_assoc}-way, {self.slc_block} B blocks (write-back)",
            f"AM  {self.am_size // 1024} KB {self.am_assoc}-way, {self.am_block} B blocks",
            f"page {self.page_size} B, {self.global_page_sets} global page sets "
            f"x {self.page_slots_per_global_set} slots",
            f"latency: SLC {self.slc_hit_latency}, AM {self.am_hit_latency}, "
            f"request {self.request_msg_cycles}, block {self.block_msg_cycles}, "
            f"TLB/DLB miss {self.translation_miss_penalty} cycles",
        ]
        return "\n".join(lines)
