"""Deterministic random-number substreams.

Every stochastic component (random TLB replacement, injection-forwarding
target choice, workload generators) draws from its own named substream so
that changing one component's consumption never perturbs another — runs
are reproducible bit-for-bit given ``MachineParams.seed``.
"""

from __future__ import annotations

import hashlib
import random


def substream_seed(seed: int, *names) -> int:
    """Derive a stable 64-bit seed for a named substream.

    ``names`` may mix strings and ints (e.g. ``("tlb", node_id)``).
    """
    digest = hashlib.sha256(repr((seed,) + tuple(names)).encode()).digest()
    return int.from_bytes(digest[:8], "little")


def make_rng(seed: int, *names) -> random.Random:
    """Create an independent :class:`random.Random` for a substream."""
    return random.Random(substream_seed(seed, *names))
