"""Statistics containers used across the simulator.

:class:`Counters` is a thin, explicit counter bag (a ``dict`` with
attribute access and arithmetic helpers); :class:`TimeBreakdown` is the
per-node cycle account that Figure 10 of the paper plots (busy / sync /
local stall / remote stall / translation stall).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterator, Tuple


class Counters:
    """A mapping of named integer counters.

    Unknown names read as zero, so call sites can increment freely:

    >>> c = Counters()
    >>> c.add("flc_miss")
    >>> c["flc_miss"]
    1
    """

    __slots__ = ("_values",)

    def __init__(self, **initial: int) -> None:
        self._values: Dict[str, int] = dict(initial)

    def add(self, name: str, amount: int = 1) -> None:
        self._values[name] = self._values.get(name, 0) + amount

    def __getitem__(self, name: str) -> int:
        return self._values.get(name, 0)

    def __setitem__(self, name: str, value: int) -> None:
        self._values[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._values.items()))

    def __len__(self) -> int:
        return len(self._values)

    def merge(self, other: "Counters") -> "Counters":
        """Return a new :class:`Counters` with summed values."""
        merged = Counters(**self._values)
        for name, value in other:
            merged.add(name, value)
        return merged

    def to_dict(self) -> Dict[str, int]:
        return dict(self._values)

    def to_metrics(
        self,
        registry,
        family: str = "repro_events_total",
        help: str = "merged simulator counters by event name",
        **labels,
    ):
        """Project this bag onto one labeled counter family in a
        :class:`~repro.obs.metrics.MetricsRegistry` (each key becomes
        an ``event=<name>`` sample).  Summing label-wise matches
        :meth:`merge`, so registries built from merged bags equal
        merged registries built from the parts."""
        from repro.obs.metrics import Counter  # local: common stays low-layer

        metric: Counter = registry.counter(family, help=help)
        for name, value in self:
            metric.inc(value, event=name, **labels)
        return metric

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"Counters({inner})"


class LatencyHistogram:
    """Power-of-two-bucketed latency distribution.

    Bucket ``i`` counts events with latency in ``[2^i, 2^(i+1))``
    (bucket 0 additionally holds zero-latency events).  Cheap enough
    for per-reference recording (one ``bit_length`` per event).
    """

    __slots__ = ("_buckets", "count", "total")

    def __init__(self) -> None:
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0

    def record(self, latency: int) -> None:
        bucket = latency.bit_length() - 1 if latency > 0 else 0
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += latency

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket(self, index: int) -> int:
        return self._buckets.get(index, 0)

    def buckets(self) -> Dict[int, int]:
        """``{bucket index: count}`` for non-empty buckets."""
        return dict(sorted(self._buckets.items()))

    def percentile(self, fraction: float) -> int:
        """Upper bound of the bucket containing the given quantile.

        An empty histogram has no quantiles; it returns 0 for every
        valid fraction (the fraction is still range-checked first).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if not self.count:
            return 0
        threshold = fraction * self.count
        seen = 0
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen >= threshold:
                return (1 << (bucket + 1)) - 1
        return (1 << (max(self._buckets) + 1)) - 1

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        merged = LatencyHistogram()
        for hist in (self, other):
            for bucket, count in hist._buckets.items():
                merged._buckets[bucket] = merged._buckets.get(bucket, 0) + count
            merged.count += hist.count
            merged.total += hist.total
        return merged

    def to_metrics(
        self,
        registry,
        family: str = "repro_latency_cycles",
        help: str = "latency distribution (cycles)",
        **labels,
    ):
        """Fold this histogram into a
        :class:`~repro.obs.metrics.Histogram` family.  Lossless: the
        registry uses the same power-of-two bucketing, so buckets,
        count, and sum transfer exactly and bucket-wise merge is
        preserved."""
        from repro.obs.metrics import Histogram  # local: common stays low-layer

        metric: Histogram = registry.histogram(family, help=help)
        metric.absorb(self._buckets, self.count, self.total, **labels)
        return metric

    def to_dict(self) -> Dict[str, int]:
        """JSON-serializable form (bucket keys stringified)."""
        return {
            "buckets": {str(b): n for b, n in sorted(self._buckets.items())},
            "count": self.count,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "LatencyHistogram":
        hist = cls()
        for bucket, count in data.get("buckets", {}).items():
            hist._buckets[int(bucket)] = int(count)
        hist.count = int(data.get("count", 0))
        hist.total = int(data.get("total", 0))
        return hist

    def render(self, width: int = 40) -> str:
        if not self.count:
            return "(no samples)"
        peak = max(self._buckets.values())
        lines = []
        for bucket in sorted(self._buckets):
            count = self._buckets[bucket]
            low = 0 if bucket == 0 else 1 << bucket
            high = (1 << (bucket + 1)) - 1
            bar = "#" * max(1, round(count / peak * width))
            lines.append(f"{low:>7}-{high:<7} {count:>8} |{bar}")
        lines.append(f"mean={self.mean:.1f} count={self.count}")
        return "\n".join(lines)


@dataclass(slots=True)
class TimeBreakdown:
    """Per-node execution-time account, in processor cycles.

    Matches Figure 10's stacked bars: ``busy`` (instruction execution),
    ``sync`` (barrier/lock waiting), ``loc_stall`` (local cache and
    attraction-memory misses), ``rem_stall`` (remote attraction-memory
    misses) plus ``tlb_stall`` (address-translation penalty, charged
    separately so the TLB overhead can be read off directly).
    """

    busy: int = 0
    sync: int = 0
    loc_stall: int = 0
    rem_stall: int = 0
    tlb_stall: int = 0

    @property
    def total(self) -> int:
        return self.busy + self.sync + self.loc_stall + self.rem_stall + self.tlb_stall

    @property
    def memory_stall(self) -> int:
        """Processor stall on local + remote memory accesses (the
        denominator of the paper's Table 4)."""
        return self.loc_stall + self.rem_stall

    def translation_overhead_ratio(self) -> float:
        """Table 4's metric: translation stall / memory stall."""
        if self.memory_stall == 0:
            return 0.0
        return self.tlb_stall / self.memory_stall

    def __add__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        return TimeBreakdown(
            busy=self.busy + other.busy,
            sync=self.sync + other.sync,
            loc_stall=self.loc_stall + other.loc_stall,
            rem_stall=self.rem_stall + other.rem_stall,
            tlb_stall=self.tlb_stall + other.tlb_stall,
        )

    def scaled(self, divisor: float) -> "AverageBreakdown":
        """Average over ``divisor`` nodes (used for machine-wide bars)."""
        if divisor <= 0:
            raise ValueError("divisor must be positive")
        return AverageBreakdown(
            busy=self.busy / divisor,
            sync=self.sync / divisor,
            loc_stall=self.loc_stall / divisor,
            rem_stall=self.rem_stall / divisor,
            tlb_stall=self.tlb_stall / divisor,
        )

    def to_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(slots=True)
class AverageBreakdown:
    """A :class:`TimeBreakdown` averaged over nodes (float-valued)."""

    busy: float = 0.0
    sync: float = 0.0
    loc_stall: float = 0.0
    rem_stall: float = 0.0
    tlb_stall: float = 0.0

    @property
    def total(self) -> float:
        return self.busy + self.sync + self.loc_stall + self.rem_stall + self.tlb_stall

    def normalized_to(self, baseline: "AverageBreakdown") -> Dict[str, float]:
        """Components as fractions of another breakdown's total (the
        paper normalizes every bar to the baseline scheme)."""
        if baseline.total == 0:
            raise ValueError("baseline breakdown has zero total time")
        return {
            "busy": self.busy / baseline.total,
            "sync": self.sync / baseline.total,
            "loc_stall": self.loc_stall / baseline.total,
            "rem_stall": self.rem_stall / baseline.total,
            "tlb_stall": self.tlb_stall / baseline.total,
            "total": self.total / baseline.total,
        }
