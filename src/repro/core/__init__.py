"""The paper's primary contribution: dynamic address-translation options.

This package holds the translation hardware models — the generic
:class:`TranslationBuffer` (covering TLBs and V-COMA's DLB in
fully-associative, set-associative and direct-mapped organizations with
the paper's random replacement), banks of buffers for size sweeps, the
:class:`Scheme` enumeration of the five designs (L0-TLB, L1-TLB, L2-TLB,
L3-TLB, V-COMA), and V-COMA's directory address space (directory pages
plus the virtual-to-directory-address translation of paper Figure 6).
"""

from repro.core.tlb import Organization, TranslationBuffer, TranslationBank
from repro.core.schemes import Scheme, TapPoint, TAP_OF_SCHEME, SCHEME_ORDER
from repro.core.directory_space import (
    DirectoryAddressSpace,
    DirectoryPageHandle,
)
from repro.core.dlb import DirectoryLookasideBuffer

__all__ = [
    "DirectoryAddressSpace",
    "DirectoryLookasideBuffer",
    "DirectoryPageHandle",
    "Organization",
    "SCHEME_ORDER",
    "Scheme",
    "TAP_OF_SCHEME",
    "TapPoint",
    "TranslationBank",
    "TranslationBuffer",
]
