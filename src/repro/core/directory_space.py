"""V-COMA's directory address space (paper Section 4.2).

Virtual addresses are unsuitable for addressing directory memory (the
virtual space is huge and sparse), so V-COMA translates virtual addresses
into *directory addresses*.  Directory memory is organized in **directory
pages**: one directory page per resident virtual page, holding one
directory entry per memory block of that page.  The virtual-memory system
allocates and reclaims directory memory in directory-page units; the
directory page plays the role a pageframe plays in a conventional system.

:class:`DirectoryAddressSpace` is the per-home-node allocator of directory
pages.  Directory addresses are dense small integers (entry granularity),
which is exactly the property the paper wants: the necessary directory
memory is sized by main memory, not by the virtual space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import CapacityError


@dataclass(frozen=True)
class DirectoryPageHandle:
    """A directory page: its base directory address and entry count."""

    base: int
    entries: int

    def entry_address(self, index: int) -> int:
        if not 0 <= index < self.entries:
            raise IndexError(f"directory entry {index} outside page of {self.entries}")
        return self.base + index


class DirectoryAddressSpace:
    """Allocator of directory pages for one home node.

    Parameters
    ----------
    entries_per_page:
        Directory entries per directory page = memory blocks per page.
    capacity_pages:
        Maximum simultaneously-allocated directory pages; ``None`` means
        unbounded (the paper sizes directory memory to main memory — the
        simulator enforces that only when asked, e.g. by the swap-daemon
        extension).
    """

    def __init__(self, entries_per_page: int, capacity_pages: Optional[int] = None) -> None:
        if entries_per_page <= 0:
            raise ValueError("entries_per_page must be positive")
        self.entries_per_page = entries_per_page
        self.capacity_pages = capacity_pages
        self._free: List[int] = []
        self._next_base = 0
        self._allocated: Dict[int, DirectoryPageHandle] = {}

    @property
    def allocated_pages(self) -> int:
        return len(self._allocated)

    def allocate(self) -> DirectoryPageHandle:
        """Allocate one directory page, reusing reclaimed space first."""
        if (
            self.capacity_pages is not None
            and self.allocated_pages >= self.capacity_pages
            and not self._free
        ):
            raise CapacityError(
                f"directory memory exhausted ({self.capacity_pages} pages)"
            )
        if self._free:
            base = self._free.pop()
        else:
            base = self._next_base
            self._next_base += self.entries_per_page
        handle = DirectoryPageHandle(base=base, entries=self.entries_per_page)
        self._allocated[base] = handle
        return handle

    def reclaim(self, handle: DirectoryPageHandle) -> None:
        """Return a directory page to the free pool (page-out path)."""
        if handle.base not in self._allocated:
            raise KeyError(f"directory page at {handle.base} is not allocated")
        del self._allocated[handle.base]
        self._free.append(handle.base)

    def is_allocated(self, base: int) -> bool:
        return base in self._allocated

    def __len__(self) -> int:
        return len(self._allocated)
