"""The DLB (Directory Lookaside Buffer) of V-COMA (paper Figures 5 and 7).

The DLB sits between a home node's protocol engine and its directory
memory.  It caches virtual-page-number → directory-page translations so
that most directory lookups avoid walking the home's page table.  Unlike
a TLB it is *shared*: every node's coherence requests for pages homed
here consult the same DLB, giving the paper's *sharing* and *prefetching*
effects.

The DLB also shadows the page-access metadata the virtual-memory system
needs: the Reference bit is set by every translation, and the Modify bit
is set when a node asks for exclusive ownership of any block of the page
(paper Section 4.3).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Tuple

from repro.core.tlb import Organization, TranslationBuffer

#: Resolver signature: VPN -> directory-page base address.  Raising
#: :class:`TranslationFault` models a page fault at the home node.
Resolver = Callable[[int], int]


class DirectoryLookasideBuffer:
    """A translation cache from virtual page numbers to directory pages.

    Composes a :class:`TranslationBuffer` (for capacity/organization/
    replacement behaviour) with the translated payload and the R/M bits.
    """

    def __init__(
        self,
        entries: int,
        resolver: Resolver,
        organization: Organization = Organization.FULLY_ASSOCIATIVE,
        assoc: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._buffer = TranslationBuffer(entries, organization, assoc=assoc, rng=rng)
        self._resolver = resolver
        self._payload: Dict[int, int] = {}
        self._referenced: Dict[int, bool] = {}
        self._modified: Dict[int, bool] = {}
        #: Optional ``(vpn, hit)`` observer fired by :meth:`translate`
        #: (tracing; distinct from the underlying buffer's hook).
        self.trace_hook = None

    # ------------------------------------------------------------------
    @property
    def entries(self) -> int:
        return self._buffer.entries

    @property
    def accesses(self) -> int:
        return self._buffer.accesses

    @property
    def misses(self) -> int:
        return self._buffer.misses

    @property
    def hits(self) -> int:
        return self._buffer.hits

    @property
    def miss_rate(self) -> float:
        return self._buffer.miss_rate

    # ------------------------------------------------------------------
    def translate(self, vpn: int, for_ownership: bool = False) -> Tuple[int, bool]:
        """Translate a VPN to its directory-page base.

        Returns ``(directory_page_base, hit)``.  A miss invokes the
        resolver (page-table walk by the protocol engine); the buffer
        then caches the translation, evicting a random victim if full.
        ``for_ownership`` marks the page Modified (a node requested
        exclusive ownership of one of its blocks).
        """
        hit = self._buffer.access(vpn)
        if self.trace_hook is not None:
            self.trace_hook(vpn, hit)
        if not hit:
            base = self._resolver(vpn)
            self._payload[vpn] = base
            self._garbage_collect()
        self._referenced[vpn] = True
        if for_ownership:
            self._modified[vpn] = True
        return self._payload[vpn], hit

    def _garbage_collect(self) -> None:
        """Drop payloads for entries the underlying buffer evicted."""
        if len(self._payload) <= self._buffer.valid_entries:
            return
        resident = set(self._buffer.resident_pages())
        for vpn in list(self._payload):
            if vpn not in resident:
                del self._payload[vpn]

    def contains(self, vpn: int) -> bool:
        return self._buffer.contains(vpn)

    def invalidate(self, vpn: int) -> bool:
        """Shoot down one entry (page unmap / protection change)."""
        self._payload.pop(vpn, None)
        return self._buffer.invalidate(vpn)

    def flush(self) -> None:
        self._buffer.flush()
        self._payload.clear()

    # ------------------------------------------------------------------
    # page-access metadata (paper Section 4.3)
    # ------------------------------------------------------------------
    def referenced(self, vpn: int) -> bool:
        return self._referenced.get(vpn, False)

    def modified(self, vpn: int) -> bool:
        return self._modified.get(vpn, False)

    def clear_reference_bits(self) -> None:
        """The protocol engine periodically resets reference bits so the
        page daemon can approximate LRU (paper Section 4.1)."""
        self._referenced.clear()

    def reset_stats(self) -> None:
        self._buffer.reset_stats()

    def __repr__(self) -> str:
        return f"DLB(entries={self.entries}, misses={self.misses}/{self.accesses})"
