/* Compiled timing kernel: the scalar simulator's READ/WRITE hot path,
 * ported statement-for-statement so results are bit-identical.
 *
 * The Python side (repro.core.timing_kernels / repro.system.fast_simulator)
 * owns everything between synchronization points is NOT true here: this
 * kernel owns the (clock, node) event heap and processes whole columnar
 * epochs of plain loads/stores; it returns to Python only when the
 * minimum-clock node's next event is a BARRIER/LOCK/UNLOCK, when a node's
 * stream ends (or hits max_refs), or when the heap drains.  Python then
 * performs exactly the scalar engine's synchronization bookkeeping and
 * re-enters.
 *
 * Exactness requirements honoured here:
 *  - CPython's random.Random: MT19937 seeded via init_by_array over the
 *    little-endian 32-bit digits of the 64-bit substream seed;
 *    getrandbits(k<=32) == genrand_uint32() >> (32-k); _randbelow via
 *    rejection sampling; shuffle's exact Fisher-Yates loop.
 *  - Python-dict LRU semantics for caches/AM (insertion order, pop and
 *    re-insert on touch, first key is the victim).
 *  - The protocol engine's statement order (counter creation included:
 *    a counter key exists iff Counters.add() was called, even with 0).
 *
 * Built with plain `gcc -O2 -shared -fPIC` and loaded through cffi's ABI
 * mode; no Python.h involved.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* status / error codes                                                */
/* ------------------------------------------------------------------ */
#define FS_DONE 0
#define FS_SYNC 1
#define FS_NEED_FINISH 2

#define FS_ERR_PROTOCOL (-1)
#define FS_ERR_CAPACITY (-2)
#define FS_ERR_KEY (-3)
#define FS_ERR_INTERNAL (-4)

/* message kinds (order mirrors repro.interconnect.message.MessageKind) */
#define MSG_READ_REQUEST 0
#define MSG_WRITE_REQUEST 1
#define MSG_UPGRADE_REQUEST 2
#define MSG_FORWARD 3
#define MSG_INVALIDATE 4
#define MSG_ACK 5
#define MSG_SHARER_DROP 6
#define MSG_BLOCK_REPLY 7
#define MSG_INJECT 8
#define MSG_INJECT_FORWARD 9
#define N_MSG_KINDS 10

/* AM states (repro.coma.states.AMState) */
#define AM_INVALID 0
#define AM_SHARED 1
#define AM_MASTER_SHARED 2
#define AM_EXCLUSIVE 3

/* SLC/FLC block states (repro.cache.cache) */
#define ST_CLEAN_SHARED 0
#define ST_CLEAN_EXCLUSIVE 1
#define ST_DIRTY 2

/* global counter indices (mirrored in timing_kernels.GLOBAL_COUNTERS) */
#define G_AM_LOCAL_HITS 0
#define G_REMOTE_READS 1
#define G_REMOTE_WRITES 2
#define G_UPGRADES 3
#define G_INVALIDATIONS 4
#define G_INJECTIONS 5
#define G_INJECT_FORWARDS 6
#define G_INJECT_MERGES 7
#define G_INJECT_DISPLACEMENTS 8
#define G_SHARER_DROPS 9
#define G_SLC_WB_TO_AM 10
#define G_MSG_BASE 11 /* 11..20: msg_<kind> in MessageKind order */
#define G_MSG_LOCAL 21
#define G_MSG_REMOTE 22
#define G_NETWORK_CYCLES 23
#define G_PAYLOAD_BYTES 24
#define N_GLOBAL 25

/* per-node counter indices (timing_kernels.NODE_COUNTERS) */
#define C_READS 0
#define C_WRITES 1
#define C_HIDDEN_STORE_CYCLES 2
#define C_REMOTE_ACCESSES 3
#define C_AM_LOCAL_ACCESSES 4
#define C_SLC_WRITEBACKS 5
#define C_SLC_COHERENCE_WRITEBACKS 6
#define C_INCLUSION_INVALIDATIONS 7
#define C_INCLUSION_DOWNGRADES 8
#define N_NODE_CTR 9

/* translation taps */
#define TAP_NONE (-1)
#define TAP_L0 0
#define TAP_L1 1
#define TAP_L2 2
#define TAP_L3 3
#define TAP_HOME 4

#define N_HIST_BUCKETS 64

/* sweep tap-stream indices (timing_kernels.SWEEP_TAPS order; the
 * uncoupled StudyAgent/CaptureAgent observation points) */
#define SW_L0 0
#define SW_L1 1
#define SW_L2 2
#define SW_L2NW 3
#define SW_L3 4
#define SW_HOME 5
#define N_SWEEP_TAPS 6

/* geometry array indices (timing_kernels.GEOM fields) */
enum {
    GEOM_NODES = 0,
    GEOM_THINK,
    GEOM_PAGE_BITS,
    GEOM_BLOCK_BITS,
    GEOM_FLC_BLOCK,
    GEOM_FLC_SETS,
    GEOM_FLC_ASSOC,
    GEOM_SLC_BLOCK,
    GEOM_SLC_SETS,
    GEOM_SLC_ASSOC,
    GEOM_AM_SETS,
    GEOM_AM_ASSOC,
    GEOM_SLC_HIT,
    GEOM_AM_HIT,
    GEOM_REQ_CYCLES,
    GEOM_BLK_CYCLES,
    GEOM_DIR_LATENCY,
    GEOM_PENALTY,
    GEOM_VIRTUAL_FLC,
    GEOM_VIRTUAL_SLC,
    GEOM_VIRTUAL_AM,
    GEOM_RELAXED,
    GEOM_TAP, /* TAP_NONE when no timing agent */
    GEOM_INCLUDE_L2_WB,
    GEOM_TLB_ENTRIES,
    GEOM_TLB_SETS,
    GEOM_TLB_ASSOC,
    GEOM_MAX_REFS, /* -1: unlimited */
    GEOM_AM_BLOCK,
    GEOM_REQ_PAYLOAD,
    GEOM_BLK_PAYLOAD,
    GEOM_DIR_CAPACITY,
    GEOM_MAP_CAPACITY,
    GEOM_LEN
};

/* ------------------------------------------------------------------ */
/* CPython-compatible Mersenne Twister                                 */
/* ------------------------------------------------------------------ */
#define MT_N 624
#define MT_M 397
#define MT_MATRIX_A 0x9908b0dfU
#define MT_UPPER 0x80000000U
#define MT_LOWER 0x7fffffffU

typedef struct {
    uint32_t mt[MT_N];
    int index;
} MT;

/* States transfer from/to random.Random.getstate()/setstate() (625
 * words: mt[624] + index), so the generator never needs Python's
 * seeding logic — only the core recurrence and tempering. */
static void mt_load(MT *r, const uint32_t *state) {
    memcpy(r->mt, state, MT_N * sizeof(uint32_t));
    r->index = (int)state[MT_N];
}

static uint32_t mt_genrand(MT *r) {
    uint32_t y;
    if (r->index >= MT_N) {
        int kk;
        uint32_t *mt = r->mt;
        for (kk = 0; kk < MT_N - MT_M; kk++) {
            y = (mt[kk] & MT_UPPER) | (mt[kk + 1] & MT_LOWER);
            mt[kk] = mt[kk + MT_M] ^ (y >> 1) ^ ((y & 1U) ? MT_MATRIX_A : 0U);
        }
        for (; kk < MT_N - 1; kk++) {
            y = (mt[kk] & MT_UPPER) | (mt[kk + 1] & MT_LOWER);
            mt[kk] = mt[kk + (MT_M - MT_N)] ^ (y >> 1) ^ ((y & 1U) ? MT_MATRIX_A : 0U);
        }
        y = (mt[MT_N - 1] & MT_UPPER) | (mt[0] & MT_LOWER);
        mt[MT_N - 1] = mt[MT_M - 1] ^ (y >> 1) ^ ((y & 1U) ? MT_MATRIX_A : 0U);
        r->index = 0;
    }
    y = r->mt[r->index++];
    y ^= (y >> 11);
    y ^= (y << 7) & 0x9d2c5680U;
    y ^= (y << 15) & 0xefc60000U;
    y ^= (y >> 18);
    return y;
}

/* random.getrandbits(k) for 1 <= k <= 32 */
static inline uint32_t mt_getrandbits(MT *r, int k) {
    return mt_genrand(r) >> (32 - k);
}

static inline int bit_length32(uint32_t n) {
    int b = 0;
    while (n) {
        b++;
        n >>= 1;
    }
    return b;
}

/* random.Random._randbelow_with_getrandbits */
static uint32_t mt_randbelow(MT *r, uint32_t n) {
    if (!n) return 0;
    int k = bit_length32(n);
    uint32_t v = mt_getrandbits(r, k);
    while (v >= n) v = mt_getrandbits(r, k);
    return v;
}

/* random.Random.shuffle */
static void mt_shuffle(MT *r, int32_t *arr, int len) {
    for (int i = len - 1; i >= 1; i--) {
        uint32_t j = mt_randbelow(r, (uint32_t)(i + 1));
        int32_t tmp = arr[i];
        arr[i] = arr[j];
        arr[j] = tmp;
    }
}

/* ------------------------------------------------------------------ */
/* ordered (LRU) set-associative tag store == Python dict semantics    */
/* ------------------------------------------------------------------ */
typedef struct {
    int64_t *blocks; /* sets * assoc, per-set insertion order (LRU first) */
    uint8_t *states;
    int32_t *count; /* per set */
    int64_t sets;
    int64_t assoc;
    int64_t set_mask;
    int block_shift;
    int64_t block_mask; /* ~(block_size-1) */
    int64_t hits, misses;
} Lru;

static int lru_init(Lru *c, int64_t sets, int64_t assoc, int64_t block_size) {
    c->sets = sets;
    c->assoc = assoc;
    c->set_mask = sets - 1;
    c->block_shift = bit_length32((uint32_t)block_size) - 1;
    c->block_mask = ~(block_size - 1);
    c->hits = 0;
    c->misses = 0;
    c->blocks = (int64_t *)malloc(sizeof(int64_t) * sets * assoc);
    c->states = (uint8_t *)malloc(sizeof(uint8_t) * sets * assoc);
    c->count = (int32_t *)calloc(sets, sizeof(int32_t));
    return (c->blocks && c->states && c->count) ? 0 : -1;
}

static void lru_free(Lru *c) {
    free(c->blocks);
    free(c->states);
    free(c->count);
}

static inline int64_t lru_set_of(const Lru *c, int64_t addr) {
    return (addr >> c->block_shift) & c->set_mask;
}

static inline int lru_find(const Lru *c, int64_t set, int64_t block) {
    const int64_t *b = c->blocks + set * c->assoc;
    int n = c->count[set];
    for (int i = 0; i < n; i++) {
        if (b[i] == block) return i;
    }
    return -1;
}

/* dict pop + reinsert: move way `i` to the back, keep its state */
static inline void lru_touch(Lru *c, int64_t set, int i) {
    int n = c->count[set];
    if (i == n - 1) return;
    int64_t *b = c->blocks + set * c->assoc;
    uint8_t *s = c->states + set * c->assoc;
    int64_t blk = b[i];
    uint8_t st = s[i];
    memmove(b + i, b + i + 1, (n - 1 - i) * sizeof(int64_t));
    memmove(s + i, s + i + 1, (n - 1 - i) * sizeof(uint8_t));
    b[n - 1] = blk;
    s[n - 1] = st;
}

static inline void lru_remove_at(Lru *c, int64_t set, int i) {
    int n = c->count[set];
    int64_t *b = c->blocks + set * c->assoc;
    uint8_t *s = c->states + set * c->assoc;
    memmove(b + i, b + i + 1, (n - 1 - i) * sizeof(int64_t));
    memmove(s + i, s + i + 1, (n - 1 - i) * sizeof(uint8_t));
    c->count[set] = n - 1;
}

static inline void lru_append(Lru *c, int64_t set, int64_t block, uint8_t state) {
    int n = c->count[set];
    c->blocks[set * c->assoc + n] = block;
    c->states[set * c->assoc + n] = state;
    c->count[set] = n + 1;
}

/* ------------------------------------------------------------------ */
/* open-addressed int64 -> slot hash maps (no deletion)                */
/* ------------------------------------------------------------------ */
typedef struct {
    int64_t *keys; /* -1 == empty */
    int64_t *slot; /* payload index (or value) */
    int64_t capacity;
    int64_t mask;
    int64_t used;
} Map;

static int map_init(Map *m, int64_t capacity_hint) {
    int64_t cap = 16;
    while (cap < capacity_hint * 2) cap <<= 1;
    m->capacity = cap;
    m->mask = cap - 1;
    m->used = 0;
    m->keys = (int64_t *)malloc(sizeof(int64_t) * cap);
    m->slot = (int64_t *)malloc(sizeof(int64_t) * cap);
    if (!m->keys || !m->slot) return -1;
    for (int64_t i = 0; i < cap; i++) m->keys[i] = -1;
    return 0;
}

static void map_free(Map *m) {
    free(m->keys);
    free(m->slot);
}

static inline uint64_t map_hash(int64_t key) {
    uint64_t h = (uint64_t)key;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
}

static int64_t map_get(const Map *m, int64_t key) {
    uint64_t i = map_hash(key) & m->mask;
    while (m->keys[i] != -1) {
        if (m->keys[i] == key) return m->slot[i];
        i = (i + 1) & m->mask;
    }
    return -1;
}

static int map_grow(Map *m);

static int map_put(Map *m, int64_t key, int64_t value) {
    if ((m->used + 1) * 10 >= m->capacity * 7) {
        if (map_grow(m)) return -1;
    }
    uint64_t i = map_hash(key) & m->mask;
    while (m->keys[i] != -1) {
        if (m->keys[i] == key) {
            m->slot[i] = value;
            return 0;
        }
        i = (i + 1) & m->mask;
    }
    m->keys[i] = key;
    m->slot[i] = value;
    m->used++;
    return 0;
}

static int map_grow(Map *m) {
    int64_t old_cap = m->capacity;
    int64_t *ok = m->keys, *os = m->slot;
    m->capacity = old_cap * 2;
    m->mask = m->capacity - 1;
    m->keys = (int64_t *)malloc(sizeof(int64_t) * m->capacity);
    m->slot = (int64_t *)malloc(sizeof(int64_t) * m->capacity);
    if (!m->keys || !m->slot) return -1;
    for (int64_t i = 0; i < m->capacity; i++) m->keys[i] = -1;
    m->used = 0;
    for (int64_t i = 0; i < old_cap; i++) {
        if (ok[i] != -1) {
            uint64_t j = map_hash(ok[i]) & m->mask;
            while (m->keys[j] != -1) j = (j + 1) & m->mask;
            m->keys[j] = ok[i];
            m->slot[j] = os[i];
            m->used++;
        }
    }
    free(ok);
    free(os);
    return 0;
}

/* ------------------------------------------------------------------ */
/* directory storage: block -> (owner, sharer bitmask)                 */
/* ------------------------------------------------------------------ */
typedef struct {
    Map index; /* block -> entry slot */
    int64_t *blocks;
    int32_t *owner;
    uint64_t *sharers; /* nentries * swords */
    int64_t nentries;
    int64_t cap_entries;
    int swords;
} Dir;

static int dir_init(Dir *d, int64_t capacity_hint, int swords) {
    d->swords = swords;
    d->nentries = 0;
    d->cap_entries = capacity_hint > 16 ? capacity_hint : 16;
    d->blocks = (int64_t *)malloc(sizeof(int64_t) * d->cap_entries);
    d->owner = (int32_t *)malloc(sizeof(int32_t) * d->cap_entries);
    d->sharers = (uint64_t *)calloc(d->cap_entries * swords, sizeof(uint64_t));
    if (!d->blocks || !d->owner || !d->sharers) return -1;
    return map_init(&d->index, capacity_hint);
}

static void dir_free(Dir *d) {
    free(d->blocks);
    free(d->owner);
    free(d->sharers);
    map_free(&d->index);
}

/* entry slot, creating on first touch (caller counts the lookup) */
static int64_t dir_entry_slot(Dir *d, int64_t block) {
    int64_t slot = map_get(&d->index, block);
    if (slot >= 0) return slot;
    if (d->nentries >= d->cap_entries) {
        int64_t nc = d->cap_entries * 2;
        int64_t *nb = (int64_t *)realloc(d->blocks, sizeof(int64_t) * nc);
        int32_t *no = (int32_t *)realloc(d->owner, sizeof(int32_t) * nc);
        uint64_t *ns = (uint64_t *)realloc(d->sharers, sizeof(uint64_t) * nc * d->swords);
        if (!nb || !no || !ns) return FS_ERR_INTERNAL;
        memset(ns + d->cap_entries * d->swords, 0,
               (nc - d->cap_entries) * d->swords * sizeof(uint64_t));
        d->blocks = nb;
        d->owner = no;
        d->sharers = ns;
        d->cap_entries = nc;
    }
    slot = d->nentries++;
    d->blocks[slot] = block;
    d->owner[slot] = -1;
    if (map_put(&d->index, block, slot)) return FS_ERR_INTERNAL;
    return slot;
}

static inline void sharers_add(Dir *d, int64_t slot, int node) {
    d->sharers[slot * d->swords + (node >> 6)] |= 1ULL << (node & 63);
}

static inline void sharers_clear_bit(Dir *d, int64_t slot, int node) {
    d->sharers[slot * d->swords + (node >> 6)] &= ~(1ULL << (node & 63));
}

static inline int sharers_has(const Dir *d, int64_t slot, int node) {
    return (d->sharers[slot * d->swords + (node >> 6)] >> (node & 63)) & 1;
}

static inline void sharers_zero(Dir *d, int64_t slot) {
    memset(d->sharers + slot * d->swords, 0, d->swords * sizeof(uint64_t));
}

/* ------------------------------------------------------------------ */
/* translation buffer (TLB / DLB)                                      */
/* ------------------------------------------------------------------ */
typedef struct {
    int64_t *tags; /* sets * assoc; position == way */
    int32_t *len;  /* per set */
    int64_t entries, sets, assoc;
    int assoc_bits;
    int64_t accesses, misses;
    MT rng;
} Tlb;

static int tlb_init(Tlb *t, int64_t entries, int64_t sets, int64_t assoc) {
    t->entries = entries;
    t->sets = sets;
    t->assoc = assoc;
    t->assoc_bits = bit_length32((uint32_t)assoc);
    t->accesses = 0;
    t->misses = 0;
    t->tags = (int64_t *)malloc(sizeof(int64_t) * sets * assoc);
    t->len = (int32_t *)calloc(sets, sizeof(int32_t));
    return (t->tags && t->len) ? 0 : -1;
}

static void tlb_free(Tlb *t) {
    free(t->tags);
    free(t->len);
}

/* TranslationBuffer.access: returns 1 on hit */
static int tlb_access(Tlb *t, int64_t page) {
    t->accesses++;
    int64_t set = (int64_t)(page % t->sets);
    int64_t *ways = t->tags + set * t->assoc;
    int n = t->len[set];
    for (int i = 0; i < n; i++) {
        if (ways[i] == page) return 1;
    }
    /* _install */
    t->misses++;
    if (n < t->assoc) {
        ways[n] = page;
        t->len[set] = n + 1;
    } else if (t->assoc > 1) {
        uint32_t way = mt_getrandbits(&t->rng, t->assoc_bits);
        while (way >= (uint32_t)t->assoc) way = mt_getrandbits(&t->rng, t->assoc_bits);
        ways[way] = page;
    } else {
        ways[0] = page;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* tap-stream capture: growable page-number vectors                    */
/*                                                                     */
/* The uncoupled sweep agents (StudyAgent / CaptureAgent) never stall   */
/* the hierarchy -- they only observe the page number reaching each of  */
/* the six translation taps.  In capture mode the kernel appends those  */
/* pages, per (tap, node), in exact scalar call order; the bank models  */
/* are then replayed over each stream with one fs_bank_run call.        */
/* ------------------------------------------------------------------ */
typedef struct {
    int64_t *data;
    int64_t len, cap;
} Cap;

static int cap_push(Cap *c, int64_t page) {
    if (c->len >= c->cap) {
        int64_t nc = c->cap ? c->cap * 2 : 1024;
        int64_t *nd = (int64_t *)realloc(c->data, sizeof(int64_t) * nc);
        if (!nd) return -1;
        c->data = nd;
        c->cap = nc;
    }
    c->data[c->len++] = page;
    return 0;
}

/* ------------------------------------------------------------------ */
/* binary heap of (time, node), lexicographic                          */
/* ------------------------------------------------------------------ */
typedef struct {
    int64_t *t;
    int32_t *n;
    int len;
    int cap;
} Heap;

static int heap_init(Heap *h, int cap) {
    h->len = 0;
    h->cap = cap;
    h->t = (int64_t *)malloc(sizeof(int64_t) * cap);
    h->n = (int32_t *)malloc(sizeof(int32_t) * cap);
    return (h->t && h->n) ? 0 : -1;
}

static void heap_free(Heap *h) {
    free(h->t);
    free(h->n);
}

static inline int heap_less(const Heap *h, int a, int b) {
    if (h->t[a] != h->t[b]) return h->t[a] < h->t[b];
    return h->n[a] < h->n[b];
}

static int heap_push(Heap *h, int64_t t, int32_t n) {
    if (h->len >= h->cap) {
        int nc = h->cap * 2;
        int64_t *nt = (int64_t *)realloc(h->t, sizeof(int64_t) * nc);
        int32_t *nn = (int32_t *)realloc(h->n, sizeof(int32_t) * nc);
        if (!nt || !nn) return -1;
        h->t = nt;
        h->n = nn;
        h->cap = nc;
    }
    int i = h->len++;
    h->t[i] = t;
    h->n[i] = n;
    while (i > 0) {
        int parent = (i - 1) >> 1;
        if (heap_less(h, i, parent)) {
            int64_t tt = h->t[i];
            int32_t tn = h->n[i];
            h->t[i] = h->t[parent];
            h->n[i] = h->n[parent];
            h->t[parent] = tt;
            h->n[parent] = tn;
            i = parent;
        } else {
            break;
        }
    }
    return 0;
}

static void heap_pop(Heap *h, int64_t *t_out, int32_t *n_out) {
    *t_out = h->t[0];
    *n_out = h->n[0];
    h->len--;
    if (h->len == 0) return;
    h->t[0] = h->t[h->len];
    h->n[0] = h->n[h->len];
    int i = 0;
    for (;;) {
        int l = 2 * i + 1, r = 2 * i + 2, m = i;
        if (l < h->len && heap_less(h, l, m)) m = l;
        if (r < h->len && heap_less(h, r, m)) m = r;
        if (m == i) break;
        int64_t tt = h->t[i];
        int32_t tn = h->n[i];
        h->t[i] = h->t[m];
        h->n[i] = h->n[m];
        h->t[m] = tt;
        h->n[m] = tn;
        i = m;
    }
}

/* ------------------------------------------------------------------ */
/* the simulator state                                                 */
/* ------------------------------------------------------------------ */
typedef struct FastSim {
    /* geometry */
    int64_t nodes, think;
    int page_bits, block_bits, node_bits;
    int64_t page_mask, node_mask, am_block_mask, am_block;
    int64_t slc_hit, am_hit, req_cycles, blk_cycles, dir_latency, penalty;
    int64_t req_payload, blk_payload;
    int virtual_flc, virtual_slc, virtual_am, needs_physical, relaxed;
    int tap, include_l2_wb;
    int64_t max_refs;

    Lru *flc, *slc, *am; /* per node */
    Dir dir;
    int64_t *dir_lookups; /* per home */
    Tlb *tlbs;
    int ntlb;
    MT engine_rng;
    Map vpn2pfn, pfn2vpn;

    int64_t glob[N_GLOBAL], glob_calls[N_GLOBAL];
    int64_t *node_ctr, *node_calls;              /* nodes * N_NODE_CTR */
    int64_t *loc_stall, *rem_stall, *tlb_stall;  /* per node */
    int64_t *rh_buckets, *wh_buckets;            /* nodes * N_HIST_BUCKETS */
    int64_t *rh_count, *rh_total, *wh_count, *wh_total;

    const uint8_t **ops;
    const int64_t **vals;
    int64_t *slen, *pos;

    int64_t *clock, *refs_done;
    uint8_t *finished;
    Heap heap;

    int64_t translation_accum;
    int64_t active_block;

    int32_t *cand; /* injection candidate scratch */

    /* tap-stream capture (uncoupled sweep mode) */
    Cap *caps; /* N_SWEEP_TAPS * nodes, tap-major; 0 when capture off */
    int capture;
    int cap_oom; /* sticky allocation failure, surfaced by fs_run */
} FastSim;

static inline void cap_feed(FastSim *s, int tap, int node, int64_t page) {
    if (cap_push(&s->caps[tap * s->nodes + node], page)) s->cap_oom = 1;
}

/* counter add == Counters.add (key exists once called, even with 0) */
static inline void gadd(FastSim *s, int idx, int64_t amount) {
    s->glob[idx] += amount;
    s->glob_calls[idx]++;
}

static inline void cadd(FastSim *s, int node, int idx, int64_t amount) {
    s->node_ctr[node * N_NODE_CTR + idx] += amount;
    s->node_calls[node * N_NODE_CTR + idx]++;
}

static inline void hist_record(int64_t *buckets, int64_t *count, int64_t *total, int64_t latency) {
    int bucket = 0;
    if (latency > 0) {
        bucket = 63 - __builtin_clzll((uint64_t)latency);
    }
    buckets[bucket]++;
    (*count)++;
    (*total) += latency;
}

/* ------------------------------------------------------------------ */
/* address plumbing                                                    */
/* ------------------------------------------------------------------ */
static inline int64_t to_phys(FastSim *s, int64_t vaddr, int *err) {
    int64_t pfn = map_get(&s->vpn2pfn, vaddr >> s->page_bits);
    if (pfn < 0) {
        *err = FS_ERR_KEY;
        return 0;
    }
    return (pfn << s->page_bits) | (vaddr & s->page_mask);
}

static inline int64_t to_virt(FastSim *s, int64_t paddr, int *err) {
    int64_t vpn = map_get(&s->pfn2vpn, paddr >> s->page_bits);
    if (vpn < 0) {
        *err = FS_ERR_KEY;
        return 0;
    }
    return (vpn << s->page_bits) | (paddr & s->page_mask);
}

static inline int home_of(FastSim *s, int64_t addr) {
    return (int)((addr >> s->page_bits) & s->node_mask);
}

/* TimingAgent._translate at a per-node tap */
static inline int64_t translate(FastSim *s, int buffer, int64_t vpn) {
    return tlb_access(&s->tlbs[buffer], vpn) ? 0 : s->penalty;
}

/* ------------------------------------------------------------------ */
/* crossbar (latency-only mode; contention/topology stay scalar)       */
/* ------------------------------------------------------------------ */
static inline int64_t xfer(FastSim *s, int kind, int src, int dst, int64_t now) {
    gadd(s, G_MSG_BASE + kind, 1);
    if (src == dst) {
        gadd(s, G_MSG_LOCAL, 1);
        return now;
    }
    int carries = (kind == MSG_BLOCK_REPLY || kind == MSG_INJECT || kind == MSG_INJECT_FORWARD);
    int64_t cycles = carries ? s->blk_cycles : s->req_cycles;
    int64_t payload = carries ? s->blk_payload : s->req_payload;
    gadd(s, G_MSG_REMOTE, 1);
    gadd(s, G_NETWORK_CYCLES, cycles);
    gadd(s, G_PAYLOAD_BYTES, payload);
    return now + cycles;
}

/* ProtocolEngine._dir_lookup_cycles */
static inline int64_t dir_lookup_cycles(FastSim *s, int home, int64_t addr, int injection) {
    if (s->capture)
        cap_feed(s, SW_HOME, home, (addr >> s->page_bits) >> s->node_bits);
    if (s->tap != TAP_HOME) return s->dir_latency;
    int64_t key = (addr >> s->page_bits) >> s->node_bits;
    int64_t pen = translate(s, home, key);
    if (!injection) s->translation_accum += pen;
    return s->dir_latency + pen;
}

/* Directory.entry(): counts the lookup, creates on first touch */
static inline int64_t dir_entry(FastSim *s, int home, int64_t block) {
    s->dir_lookups[home]++;
    return dir_entry_slot(&s->dir, block);
}

/* ------------------------------------------------------------------ */
/* inclusion hooks (Node.on_inclusion)                                 */
/* ------------------------------------------------------------------ */
static int engine_writeback(FastSim *s, int node, int64_t proto_addr) {
    int64_t block = proto_addr & s->am_block_mask;
    Lru *am = &s->am[node];
    int64_t set = lru_set_of(am, block);
    int way = lru_find(am, set, block);
    uint8_t state = (way >= 0) ? am->states[set * am->assoc + way] : AM_INVALID;
    if (state != AM_MASTER_SHARED && state != AM_EXCLUSIVE) return FS_ERR_PROTOCOL;
    gadd(s, G_SLC_WB_TO_AM, 1);
    return 0;
}

/* Node._write_back / _write_back_downgraded common tail */
static int node_writeback_tail(FastSim *s, int node, int64_t slc_block) {
    int err = 0;
    int64_t vaddr = s->virtual_slc ? slc_block : to_virt(s, slc_block, &err);
    if (err) return err;
    /* sweep agents feed every writeback into the L2 bank (and only
     * the L2 bank -- L2_NO_WBACK models the physical-pointer bypass) */
    if (s->capture) cap_feed(s, SW_L2, node, vaddr >> s->page_bits);
    if (s->tap == TAP_L2) {
        if (s->include_l2_wb) {
            /* cycles discarded by the caller, TLB side effects kept */
            (void)translate(s, node, vaddr >> s->page_bits);
        }
    }
    int64_t proto = s->virtual_am ? vaddr : to_phys(s, vaddr, &err);
    if (err) return err;
    return engine_writeback(s, node, proto);
}

static int node_write_back(FastSim *s, int node, int64_t slc_block) {
    cadd(s, node, C_SLC_WRITEBACKS, 1);
    return node_writeback_tail(s, node, slc_block);
}

static int node_write_back_downgraded(FastSim *s, int node, int64_t slc_block) {
    cadd(s, node, C_SLC_COHERENCE_WRITEBACKS, 1);
    return node_writeback_tail(s, node, slc_block);
}

static inline int64_t proto_to_slc(FastSim *s, int64_t proto_block, int *err) {
    if (s->virtual_slc == s->virtual_am) return proto_block;
    if (s->virtual_slc) return to_virt(s, proto_block, err);
    return to_phys(s, proto_block, err);
}

static inline int64_t slc_to_flc(FastSim *s, int64_t slc_block, int *err) {
    if (s->virtual_flc == s->virtual_slc) return slc_block;
    if (s->virtual_flc) return to_virt(s, slc_block, err);
    return to_phys(s, slc_block, err);
}

static void lru_invalidate_span(Lru *c, int64_t base, int64_t span, int64_t step) {
    int64_t start = base & c->block_mask;
    for (int64_t block = start; block < base + span; block += step) {
        int64_t set = lru_set_of(c, block);
        int way = lru_find(c, set, block);
        if (way >= 0) lru_remove_at(c, set, way);
    }
}

static int inclusion_invalidate(FastSim *s, int node, int64_t proto_block) {
    int err = 0;
    int64_t slc_base = proto_to_slc(s, proto_block, &err);
    if (err) return err;
    Lru *slc = &s->slc[node];
    lru_invalidate_span(slc, slc_base, s->am_block, 1LL << slc->block_shift);
    int64_t flc_base = slc_to_flc(s, slc_base, &err);
    if (err) return err;
    Lru *flc = &s->flc[node];
    lru_invalidate_span(flc, flc_base, s->am_block, 1LL << flc->block_shift);
    cadd(s, node, C_INCLUSION_INVALIDATIONS, 1);
    return 0;
}

static int inclusion_downgrade(FastSim *s, int node, int64_t proto_block) {
    int err = 0;
    int64_t slc_base = proto_to_slc(s, proto_block, &err);
    if (err) return err;
    Lru *slc = &s->slc[node];
    int64_t step = 1LL << slc->block_shift;
    int64_t start = slc_base & slc->block_mask;
    for (int64_t block = start; block < slc_base + s->am_block; block += step) {
        int64_t set = lru_set_of(slc, block);
        int way = lru_find(slc, set, block);
        if (way < 0) continue;
        uint8_t old = slc->states[set * slc->assoc + way];
        if (old == ST_DIRTY) {
            int rc = node_write_back_downgraded(s, node, block);
            if (rc) return rc;
            /* the writeback may not move this set's ways (it only touches
             * AM state), so `way` stays valid */
        }
        slc->states[set * slc->assoc + way] = ST_CLEAN_SHARED;
    }
    cadd(s, node, C_INCLUSION_DOWNGRADES, 1);
    return 0;
}

/* dispatcher mirroring Machine._inclusion_hook actions */
#define INCLUSION_INVALIDATE 0
#define INCLUSION_DOWNGRADE 1

static int inclusion(FastSim *s, int node, int64_t proto_block, int action) {
    if (action == INCLUSION_INVALIDATE) return inclusion_invalidate(s, node, proto_block);
    return inclusion_downgrade(s, node, proto_block);
}

/* ------------------------------------------------------------------ */
/* attraction-memory helpers                                           */
/* ------------------------------------------------------------------ */
static inline uint8_t am_state_of(FastSim *s, int node, int64_t addr) {
    Lru *am = &s->am[node];
    int64_t block = addr & s->am_block_mask;
    int64_t set = lru_set_of(am, block);
    int way = lru_find(am, set, block);
    return way < 0 ? AM_INVALID : am->states[set * am->assoc + way];
}

/* AttractionMemory.lookup: counts + LRU touch */
static uint8_t am_lookup(FastSim *s, int node, int64_t block) {
    Lru *am = &s->am[node];
    int64_t set = lru_set_of(am, block);
    int way = lru_find(am, set, block);
    if (way < 0) {
        am->misses++;
        return AM_INVALID;
    }
    am->hits++;
    uint8_t state = am->states[set * am->assoc + way];
    lru_touch(am, set, way);
    return state;
}

/* AttractionMemory.set_state on a resident block (state != INVALID) */
static int am_set_state(FastSim *s, int node, int64_t addr, uint8_t state) {
    Lru *am = &s->am[node];
    int64_t block = addr & s->am_block_mask;
    int64_t set = lru_set_of(am, block);
    int way = lru_find(am, set, block);
    if (way < 0) return FS_ERR_PROTOCOL;
    am->states[set * am->assoc + way] = state;
    return 0;
}

/* AttractionMemory.install (caller made room; block absent) */
static int am_install(FastSim *s, int node, int64_t block, uint8_t state) {
    Lru *am = &s->am[node];
    int64_t set = lru_set_of(am, block);
    int way = lru_find(am, set, block);
    if (way >= 0) {
        lru_touch(am, set, way);
        am->states[set * am->assoc + am->count[set] - 1] = state;
        return 0;
    }
    if (am->count[set] >= am->assoc) return FS_ERR_PROTOCOL;
    lru_append(am, set, block, state);
    return 0;
}

/* AttractionMemory.invalidate: returns 1 when the block was present */
static int am_invalidate(FastSim *s, int node, int64_t block) {
    Lru *am = &s->am[node];
    int64_t set = lru_set_of(am, block);
    int way = lru_find(am, set, block);
    if (way < 0) return 0;
    lru_remove_at(am, set, way);
    return 1;
}

/* ------------------------------------------------------------------ */
/* protocol engine                                                     */
/* ------------------------------------------------------------------ */
static int invalidate_copy(FastSim *s, int node, int64_t block) {
    if (am_invalidate(s, node, block)) {
        return inclusion(s, node, block, INCLUSION_INVALIDATE);
    }
    return 0;
}

/* returns the done time or negative error */
static int64_t invalidate_holders(FastSim *s, int64_t slot, int64_t block, int home,
                                  int exclude, int64_t start) {
    Dir *d = &s->dir;
    int64_t done = start;
    int64_t count = 0;
    int owner = d->owner[slot];
    uint64_t owner_cleared = 0;
    for (int n = 0; n < (int)s->nodes; n++) {
        int holder = sharers_has(d, slot, n) || (owner >= 0 && owner == n);
        if (!holder || n == exclude) continue;
        int64_t arrive = xfer(s, MSG_INVALIDATE, home, n, start);
        int rc = invalidate_copy(s, n, block);
        if (rc) return rc;
        int64_t ack = xfer(s, MSG_ACK, n, home, arrive);
        if (ack > done) done = ack;
        sharers_clear_bit(d, slot, n);
        if (owner >= 0 && owner == n) owner_cleared = 1;
        count++;
    }
    if (owner_cleared) d->owner[slot] = -1;
    gadd(s, G_INVALIDATIONS, count);
    return done;
}

static int inject(FastSim *s, int src, int64_t block, uint8_t state, int64_t now);

static int make_room(FastSim *s, int node, int64_t block, int64_t now) {
    Lru *am = &s->am[node];
    int64_t set = lru_set_of(am, block);
    if (am->count[set] < am->assoc) return 0;
    /* choose_victim: LRU Shared replica, else LRU master (way 0) */
    int way = -1;
    uint8_t vstate = AM_INVALID;
    int n = am->count[set];
    uint8_t *states = am->states + set * am->assoc;
    for (int i = 0; i < n; i++) {
        if (states[i] == AM_SHARED) {
            way = i;
            vstate = AM_SHARED;
            break;
        }
    }
    if (way < 0) {
        way = 0;
        vstate = states[0];
    }
    int64_t victim = am->blocks[set * am->assoc + way];
    lru_remove_at(am, set, way);
    int rc = inclusion(s, node, victim, INCLUSION_INVALIDATE);
    if (rc) return rc;
    if (vstate == AM_SHARED) {
        int vhome = home_of(s, victim);
        (void)xfer(s, MSG_SHARER_DROP, node, vhome, now);
        int64_t slot = map_get(&s->dir.index, victim);
        if (slot >= 0) sharers_clear_bit(&s->dir, slot, node);
        gadd(s, G_SHARER_DROPS, 1);
        return 0;
    }
    return inject(s, node, victim, vstate, now);
}

static int accept_injection(FastSim *s, int target, int64_t block, uint8_t state,
                            int64_t slot, int home_rules) {
    uint8_t resident = am_state_of(s, target, block);
    if (resident == AM_SHARED) {
        int rc = am_set_state(s, target, block, AM_MASTER_SHARED);
        if (rc) return rc;
        sharers_clear_bit(&s->dir, slot, target);
        s->dir.owner[slot] = target;
        gadd(s, G_INJECT_MERGES, 1);
        return 1;
    }
    Lru *am = &s->am[target];
    int64_t set = lru_set_of(am, block);
    if (am->count[set] < am->assoc) {
        int rc = am_install(s, target, block, state);
        if (rc) return rc;
        s->dir.owner[slot] = target;
        return 1;
    }
    if (home_rules) return 0;
    /* droppable_victim: first Shared in LRU order */
    int n = am->count[set];
    uint8_t *states = am->states + set * am->assoc;
    int way = -1;
    for (int i = 0; i < n; i++) {
        if (states[i] == AM_SHARED) {
            way = i;
            break;
        }
    }
    if (way < 0) return 0;
    int64_t dropped = am->blocks[set * am->assoc + way];
    lru_remove_at(am, set, way);
    int rc = inclusion(s, target, dropped, INCLUSION_INVALIDATE);
    if (rc) return rc;
    int64_t dslot = map_get(&s->dir.index, dropped);
    if (dslot >= 0) sharers_clear_bit(&s->dir, dslot, target);
    gadd(s, G_INJECT_DISPLACEMENTS, 1);
    rc = am_install(s, target, block, state);
    if (rc) return rc;
    s->dir.owner[slot] = target;
    return 1;
}

static int inject(FastSim *s, int src, int64_t block, uint8_t state, int64_t now) {
    gadd(s, G_INJECTIONS, 1);
    int home = home_of(s, block);
    int64_t t = xfer(s, MSG_INJECT, src, home, now);
    t += dir_lookup_cycles(s, home, block, 1);
    int64_t slot = dir_entry(s, home, block);
    if (slot < 0) return (int)slot;
    if (home != src) {
        int rc = accept_injection(s, home, block, state, slot, 1);
        if (rc < 0) return rc;
        if (rc) return 0;
    }
    int m = 0;
    for (int n = 0; n < (int)s->nodes; n++) {
        if (n != src && n != home) s->cand[m++] = n;
    }
    mt_shuffle(&s->engine_rng, s->cand, m);
    int prev = home;
    for (int i = 0; i < m; i++) {
        t = xfer(s, MSG_INJECT_FORWARD, prev, s->cand[i], t);
        gadd(s, G_INJECT_FORWARDS, 1);
        prev = s->cand[i];
        int rc = accept_injection(s, s->cand[i], block, state, slot, 0);
        if (rc < 0) return rc;
        if (rc) return 0;
    }
    /* overflow handlers are a scalar-path feature; the fast path is
     * gated off machines that wire one */
    return FS_ERR_CAPACITY;
}

/* returns stall cycles beyond the AM lookup, or negative error */
static int64_t remote_fetch(FastSim *s, int node, int64_t block, int is_write, int64_t now) {
    gadd(s, is_write ? G_REMOTE_WRITES : G_REMOTE_READS, 1);
    int64_t penalty = 0;
    if (s->capture) cap_feed(s, SW_L3, node, block >> s->page_bits);
    if (s->tap == TAP_L3) penalty = translate(s, node, block >> s->page_bits);
    s->translation_accum += penalty;
    int home = home_of(s, block);
    int64_t t = now + penalty;
    t = xfer(s, is_write ? MSG_WRITE_REQUEST : MSG_READ_REQUEST, node, home, t);
    t += dir_lookup_cycles(s, home, block, 0);
    int64_t slot = dir_entry(s, home, block);
    if (slot < 0) return slot;
    int owner = s->dir.owner[slot];
    if (owner < 0) return FS_ERR_PROTOCOL; /* no master copy */
    if (owner == node) return FS_ERR_PROTOCOL; /* missed on own master */

    if (is_write) {
        t = invalidate_holders(s, slot, block, home, node, t);
        if (t < 0) return t;
        int supplier = owner;
        if (supplier == home) {
            t += s->am_hit;
        } else {
            t = xfer(s, MSG_FORWARD, home, supplier, t);
            t += s->am_hit;
        }
        t = xfer(s, MSG_BLOCK_REPLY, supplier, node, t);
        int rc = make_room(s, node, block, now);
        if (rc) return rc;
        slot = map_get(&s->dir.index, block); /* re-find: inject may rehash */
        rc = am_install(s, node, block, AM_EXCLUSIVE);
        if (rc) return rc;
        s->dir.owner[slot] = node;
        sharers_zero(&s->dir, slot);
    } else {
        int supplier = owner;
        if (supplier == home) {
            t += s->am_hit;
        } else {
            t = xfer(s, MSG_FORWARD, home, supplier, t);
            t += s->am_hit;
        }
        if (am_state_of(s, supplier, block) == AM_EXCLUSIVE) {
            int rc = am_set_state(s, supplier, block, AM_MASTER_SHARED);
            if (rc) return rc;
            rc = inclusion(s, supplier, block, INCLUSION_DOWNGRADE);
            if (rc) return rc;
        }
        t = xfer(s, MSG_BLOCK_REPLY, supplier, node, t);
        int rc = make_room(s, node, block, now);
        if (rc) return rc;
        slot = map_get(&s->dir.index, block);
        rc = am_install(s, node, block, AM_SHARED);
        if (rc) return rc;
        sharers_add(&s->dir, slot, node);
    }
    return t - now;
}

static int64_t upgrade(FastSim *s, int node, int64_t block, int64_t now) {
    gadd(s, G_UPGRADES, 1);
    int64_t penalty = 0;
    if (s->capture) cap_feed(s, SW_L3, node, block >> s->page_bits);
    if (s->tap == TAP_L3) penalty = translate(s, node, block >> s->page_bits);
    s->translation_accum += penalty;
    int home = home_of(s, block);
    int64_t t = now + penalty;
    t = xfer(s, MSG_UPGRADE_REQUEST, node, home, t);
    t += dir_lookup_cycles(s, home, block, 0);
    int64_t slot = dir_entry(s, home, block);
    if (slot < 0) return slot;
    if (s->dir.owner[slot] < 0) return FS_ERR_PROTOCOL;
    t = invalidate_holders(s, slot, block, home, node, t);
    if (t < 0) return t;
    t = xfer(s, MSG_ACK, home, node, t);
    s->dir.owner[slot] = node;
    sharers_zero(&s->dir, slot);
    int rc = am_set_state(s, node, block, AM_EXCLUSIVE);
    if (rc) return rc;
    return t - now;
}

/* ProtocolEngine._fetch; *remote / *translation are the outcome fields */
static int64_t engine_fetch(FastSim *s, int node, int64_t addr, int is_write, int64_t now,
                            int *remote, int64_t *translation) {
    int64_t block = addr & s->am_block_mask;
    s->translation_accum = 0;
    s->active_block = block;
    uint8_t state = am_lookup(s, node, block);
    if (state != AM_INVALID) {
        if (!is_write || state == AM_EXCLUSIVE) {
            gadd(s, G_AM_LOCAL_HITS, 1);
            *remote = 0;
            *translation = 0;
            return s->am_hit;
        }
        int64_t up = upgrade(s, node, block, now);
        if (up < 0) return up;
        *remote = 1;
        *translation = s->translation_accum;
        return s->am_hit + up;
    }
    int64_t rf = remote_fetch(s, node, block, is_write, now);
    if (rf < 0) return rf;
    *remote = 1;
    *translation = s->translation_accum;
    return s->am_hit + rf;
}

/* ProtocolEngine._upgrade_for_write */
static int64_t engine_upgrade_for_write(FastSim *s, int node, int64_t addr, int64_t now,
                                        int *remote, int64_t *translation) {
    int64_t block = addr & s->am_block_mask;
    s->translation_accum = 0;
    s->active_block = block;
    uint8_t state = am_lookup(s, node, block);
    if (state == AM_INVALID) return FS_ERR_PROTOCOL; /* SLC/AM inclusion violated */
    if (state == AM_EXCLUSIVE) {
        gadd(s, G_AM_LOCAL_HITS, 1);
        *remote = 0;
        *translation = 0;
        return s->am_hit;
    }
    int64_t up = upgrade(s, node, block, now);
    if (up < 0) return up;
    *remote = 1;
    *translation = s->translation_accum;
    return s->am_hit + up;
}

/* ------------------------------------------------------------------ */
/* the node (Node._process + fills + attribution)                      */
/* ------------------------------------------------------------------ */
static int node_fill_flc(FastSim *s, int node, int64_t flc_addr) {
    Lru *flc = &s->flc[node];
    int64_t block = flc_addr & flc->block_mask;
    int64_t set = lru_set_of(flc, block);
    int way = lru_find(flc, set, block);
    if (way >= 0) {
        /* refresh; FLC state is always CLEAN_SHARED so max() is a no-op */
        lru_touch(flc, set, way);
        return 0;
    }
    if (flc->count[set] >= flc->assoc) {
        lru_remove_at(flc, set, 0); /* victims always clean */
    }
    lru_append(flc, set, block, ST_CLEAN_SHARED);
    return 0;
}

static int node_fill_slc(FastSim *s, int node, int64_t slc_addr, int64_t proto_addr, int dirty) {
    uint8_t state;
    if (dirty) {
        state = ST_DIRTY;
    } else {
        state = (am_state_of(s, node, proto_addr) == AM_EXCLUSIVE) ? ST_CLEAN_EXCLUSIVE
                                                                   : ST_CLEAN_SHARED;
    }
    Lru *slc = &s->slc[node];
    int64_t block = slc_addr & slc->block_mask;
    int64_t set = lru_set_of(slc, block);
    int way = lru_find(slc, set, block);
    if (way >= 0) {
        uint8_t old = slc->states[set * slc->assoc + way];
        lru_touch(slc, set, way);
        slc->states[set * slc->assoc + slc->count[set] - 1] = old > state ? old : state;
        return 0;
    }
    int64_t victim_block = 0;
    uint8_t victim_state = 0;
    int have_victim = 0;
    if (slc->count[set] >= slc->assoc) {
        victim_block = slc->blocks[set * slc->assoc];
        victim_state = slc->states[set * slc->assoc];
        lru_remove_at(slc, set, 0);
        have_victim = 1;
    }
    lru_append(slc, set, block, state);
    if (!have_victim) return 0;
    int err = 0;
    int64_t flc_base = slc_to_flc(s, victim_block, &err);
    if (err) return err;
    Lru *flc = &s->flc[node];
    lru_invalidate_span(flc, flc_base, 1LL << slc->block_shift, 1LL << flc->block_shift);
    if (victim_state == ST_DIRTY) {
        return node_write_back(s, node, victim_block);
    }
    return 0;
}

/* Node._process: returns stall + tlb cycles or negative error */
static int64_t node_process(FastSim *s, int node, int is_write, int64_t vaddr, int64_t now) {
    int err = 0;
    int64_t vpn = vaddr >> s->page_bits;
    int64_t tlb = 0;
    if (s->capture) cap_feed(s, SW_L0, node, vpn);
    if (s->tap == TAP_L0) tlb += translate(s, node, vpn);
    int64_t paddr = s->needs_physical ? to_phys(s, vaddr, &err) : vaddr;
    if (err) return err;
    int64_t flc_addr = s->virtual_flc ? vaddr : paddr;
    int64_t slc_addr = s->virtual_slc ? vaddr : paddr;
    int64_t proto_addr = s->virtual_am ? vaddr : paddr;
    int64_t stall = 0;

    Lru *flc = &s->flc[node];
    Lru *slc = &s->slc[node];

    if (!is_write) {
        cadd(s, node, C_READS, 1);
        /* flc.lookup */
        int64_t fblock = flc_addr & flc->block_mask;
        int64_t fset = lru_set_of(flc, fblock);
        int fway = lru_find(flc, fset, fblock);
        if (fway >= 0) {
            flc->hits++;
            lru_touch(flc, fset, fway);
        } else {
            flc->misses++;
            if (s->capture) cap_feed(s, SW_L1, node, vpn);
            if (s->tap == TAP_L1) tlb += translate(s, node, vpn);
            /* slc.lookup */
            int64_t sblock = slc_addr & slc->block_mask;
            int64_t sset = lru_set_of(slc, sblock);
            int sway = lru_find(slc, sset, sblock);
            if (sway >= 0) {
                slc->hits++;
                lru_touch(slc, sset, sway);
                stall += s->slc_hit;
                s->loc_stall[node] += s->slc_hit;
            } else {
                slc->misses++;
                if (s->capture) {
                    cap_feed(s, SW_L2, node, vpn);
                    cap_feed(s, SW_L2NW, node, vpn);
                }
                if (s->tap == TAP_L2) tlb += translate(s, node, vpn);
                int remote = 0;
                int64_t translation = 0;
                int64_t cycles = engine_fetch(s, node, proto_addr, 0, now + stall + tlb,
                                              &remote, &translation);
                if (cycles < 0) return cycles;
                stall += cycles;
                /* _attribute */
                s->tlb_stall[node] += translation;
                if (remote) {
                    s->rem_stall[node] += cycles - translation;
                    cadd(s, node, C_REMOTE_ACCESSES, 1);
                } else {
                    s->loc_stall[node] += cycles - translation;
                    cadd(s, node, C_AM_LOCAL_ACCESSES, 1);
                }
                int rc = node_fill_slc(s, node, slc_addr, proto_addr, 0);
                if (rc) return rc;
            }
            int rc = node_fill_flc(s, node, flc_addr);
            if (rc) return rc;
        }
    } else {
        cadd(s, node, C_WRITES, 1);
        /* flc.lookup: write-through, no-write-allocate */
        int64_t fblock = flc_addr & flc->block_mask;
        int64_t fset = lru_set_of(flc, fblock);
        int fway = lru_find(flc, fset, fblock);
        if (fway >= 0) {
            flc->hits++;
            lru_touch(flc, fset, fway);
        } else {
            flc->misses++;
        }
        if (s->capture) cap_feed(s, SW_L1, node, vpn);
        if (s->tap == TAP_L1) tlb += translate(s, node, vpn);
        /* slc.state_of + lookup */
        int64_t sblock = slc_addr & slc->block_mask;
        int64_t sset = lru_set_of(slc, sblock);
        int sway = lru_find(slc, sset, sblock);
        if (sway < 0) {
            slc->misses++; /* slc.lookup counting the miss */
            if (s->capture) {
                cap_feed(s, SW_L2, node, vpn);
                cap_feed(s, SW_L2NW, node, vpn);
            }
            if (s->tap == TAP_L2) tlb += translate(s, node, vpn);
            int remote = 0;
            int64_t translation = 0;
            int64_t cycles = engine_fetch(s, node, proto_addr, 1, now + stall + tlb,
                                          &remote, &translation);
            if (cycles < 0) return cycles;
            stall += cycles;
            s->tlb_stall[node] += translation;
            if (remote) {
                s->rem_stall[node] += cycles - translation;
                cadd(s, node, C_REMOTE_ACCESSES, 1);
            } else {
                s->loc_stall[node] += cycles - translation;
                cadd(s, node, C_AM_LOCAL_ACCESSES, 1);
            }
            int rc = node_fill_slc(s, node, slc_addr, proto_addr, 1);
            if (rc) return rc;
        } else {
            uint8_t state = slc->states[sset * slc->assoc + sway];
            slc->hits++; /* slc.lookup hit (refresh LRU) */
            lru_touch(slc, sset, sway);
            sway = slc->count[sset] - 1; /* now at the back */
            stall += s->slc_hit;
            s->loc_stall[node] += s->slc_hit;
            if (state == ST_CLEAN_SHARED) {
                if (s->capture) {
                    cap_feed(s, SW_L2, node, vpn);
                    cap_feed(s, SW_L2NW, node, vpn);
                }
                if (s->tap == TAP_L2) tlb += translate(s, node, vpn);
                int remote = 0;
                int64_t translation = 0;
                int64_t cycles = engine_upgrade_for_write(s, node, proto_addr,
                                                          now + stall + tlb, &remote,
                                                          &translation);
                if (cycles < 0) return cycles;
                stall += cycles;
                s->tlb_stall[node] += translation;
                if (remote) {
                    s->rem_stall[node] += cycles - translation;
                    cadd(s, node, C_REMOTE_ACCESSES, 1);
                } else {
                    s->loc_stall[node] += cycles - translation;
                    cadd(s, node, C_AM_LOCAL_ACCESSES, 1);
                }
                /* protocol work never moves this node's SLC ways */
            }
            slc->states[sset * slc->assoc + sway] = ST_DIRTY;
        }
    }
    s->tlb_stall[node] += tlb;
    return stall + tlb;
}

/* Node.reference: histogram + relaxed-store handling */
static int64_t node_reference(FastSim *s, int node, int is_write, int64_t vaddr, int64_t now) {
    if (is_write && s->relaxed) {
        int64_t loc = s->loc_stall[node];
        int64_t rem = s->rem_stall[node];
        int64_t tlb = s->tlb_stall[node];
        int64_t cycles = node_process(s, node, 1, vaddr, now);
        if (cycles < 0) return cycles;
        s->loc_stall[node] = loc;
        s->rem_stall[node] = rem;
        s->tlb_stall[node] = tlb;
        cadd(s, node, C_HIDDEN_STORE_CYCLES, cycles);
        hist_record(s->wh_buckets + node * N_HIST_BUCKETS, &s->wh_count[node],
                    &s->wh_total[node], 0);
        return 0;
    }
    int64_t cycles = node_process(s, node, is_write, vaddr, now);
    if (cycles < 0) return cycles;
    if (is_write) {
        hist_record(s->wh_buckets + node * N_HIST_BUCKETS, &s->wh_count[node],
                    &s->wh_total[node], cycles);
    } else {
        hist_record(s->rh_buckets + node * N_HIST_BUCKETS, &s->rh_count[node],
                    &s->rh_total[node], cycles);
    }
    return cycles;
}

/* ------------------------------------------------------------------ */
/* public API                                                          */
/* ------------------------------------------------------------------ */
void fs_destroy(FastSim *s);

FastSim *fs_create(const int64_t *geom) {
    FastSim *s = (FastSim *)calloc(1, sizeof(FastSim));
    if (!s) return 0;
    s->nodes = geom[GEOM_NODES];
    s->think = geom[GEOM_THINK];
    s->page_bits = (int)geom[GEOM_PAGE_BITS];
    s->block_bits = (int)geom[GEOM_BLOCK_BITS];
    s->node_bits = bit_length32((uint32_t)s->nodes) - 1;
    s->page_mask = (1LL << s->page_bits) - 1;
    s->node_mask = s->nodes - 1;
    s->am_block = geom[GEOM_AM_BLOCK];
    s->am_block_mask = ~(s->am_block - 1);
    s->slc_hit = geom[GEOM_SLC_HIT];
    s->am_hit = geom[GEOM_AM_HIT];
    s->req_cycles = geom[GEOM_REQ_CYCLES];
    s->blk_cycles = geom[GEOM_BLK_CYCLES];
    s->dir_latency = geom[GEOM_DIR_LATENCY];
    s->penalty = geom[GEOM_PENALTY];
    s->req_payload = geom[GEOM_REQ_PAYLOAD];
    s->blk_payload = geom[GEOM_BLK_PAYLOAD];
    s->virtual_flc = (int)geom[GEOM_VIRTUAL_FLC];
    s->virtual_slc = (int)geom[GEOM_VIRTUAL_SLC];
    s->virtual_am = (int)geom[GEOM_VIRTUAL_AM];
    s->needs_physical = !(s->virtual_flc && s->virtual_slc && s->virtual_am);
    s->relaxed = (int)geom[GEOM_RELAXED];
    s->tap = (int)geom[GEOM_TAP];
    s->include_l2_wb = (int)geom[GEOM_INCLUDE_L2_WB];
    s->max_refs = geom[GEOM_MAX_REFS];

    int64_t nodes = s->nodes;
    s->flc = (Lru *)calloc(nodes, sizeof(Lru));
    s->slc = (Lru *)calloc(nodes, sizeof(Lru));
    s->am = (Lru *)calloc(nodes, sizeof(Lru));
    s->dir_lookups = (int64_t *)calloc(nodes, sizeof(int64_t));
    s->node_ctr = (int64_t *)calloc(nodes * N_NODE_CTR, sizeof(int64_t));
    s->node_calls = (int64_t *)calloc(nodes * N_NODE_CTR, sizeof(int64_t));
    s->loc_stall = (int64_t *)calloc(nodes, sizeof(int64_t));
    s->rem_stall = (int64_t *)calloc(nodes, sizeof(int64_t));
    s->tlb_stall = (int64_t *)calloc(nodes, sizeof(int64_t));
    s->rh_buckets = (int64_t *)calloc(nodes * N_HIST_BUCKETS, sizeof(int64_t));
    s->wh_buckets = (int64_t *)calloc(nodes * N_HIST_BUCKETS, sizeof(int64_t));
    s->rh_count = (int64_t *)calloc(nodes, sizeof(int64_t));
    s->rh_total = (int64_t *)calloc(nodes, sizeof(int64_t));
    s->wh_count = (int64_t *)calloc(nodes, sizeof(int64_t));
    s->wh_total = (int64_t *)calloc(nodes, sizeof(int64_t));
    s->ops = (const uint8_t **)calloc(nodes, sizeof(void *));
    s->vals = (const int64_t **)calloc(nodes, sizeof(void *));
    s->slen = (int64_t *)calloc(nodes, sizeof(int64_t));
    s->pos = (int64_t *)calloc(nodes, sizeof(int64_t));
    s->clock = (int64_t *)calloc(nodes, sizeof(int64_t));
    s->refs_done = (int64_t *)calloc(nodes, sizeof(int64_t));
    s->finished = (uint8_t *)calloc(nodes, sizeof(uint8_t));
    s->cand = (int32_t *)calloc(nodes, sizeof(int32_t));
    /* Any failed calloc above, or any init below, releases the whole
       partially-built struct (fs_destroy tolerates NULL members), so a
       NULL return never leaks. */
    if (!s->flc || !s->slc || !s->am || !s->dir_lookups || !s->node_ctr ||
        !s->node_calls || !s->loc_stall || !s->rem_stall || !s->tlb_stall ||
        !s->rh_buckets || !s->wh_buckets || !s->rh_count || !s->rh_total ||
        !s->wh_count || !s->wh_total || !s->ops || !s->vals || !s->slen ||
        !s->pos || !s->clock || !s->refs_done || !s->finished || !s->cand) {
        fs_destroy(s);
        return 0;
    }

    for (int64_t n = 0; n < nodes; n++) {
        if (lru_init(&s->flc[n], geom[GEOM_FLC_SETS], geom[GEOM_FLC_ASSOC], geom[GEOM_FLC_BLOCK]) ||
            lru_init(&s->slc[n], geom[GEOM_SLC_SETS], geom[GEOM_SLC_ASSOC], geom[GEOM_SLC_BLOCK]) ||
            lru_init(&s->am[n], geom[GEOM_AM_SETS], geom[GEOM_AM_ASSOC], s->am_block)) {
            fs_destroy(s);
            return 0;
        }
    }
    int swords = (int)((nodes + 63) / 64);
    if (dir_init(&s->dir, geom[GEOM_DIR_CAPACITY], swords) ||
        map_init(&s->vpn2pfn, geom[GEOM_MAP_CAPACITY]) ||
        map_init(&s->pfn2vpn, geom[GEOM_MAP_CAPACITY])) {
        fs_destroy(s);
        return 0;
    }

    s->ntlb = 0;
    if (s->tap != TAP_NONE) {
        s->ntlb = (int)nodes;
        s->tlbs = (Tlb *)calloc(s->ntlb, sizeof(Tlb));
        if (!s->tlbs) {
            s->ntlb = 0;
            fs_destroy(s);
            return 0;
        }
        for (int i = 0; i < s->ntlb; i++) {
            if (tlb_init(&s->tlbs[i], geom[GEOM_TLB_ENTRIES], geom[GEOM_TLB_SETS],
                         geom[GEOM_TLB_ASSOC])) {
                fs_destroy(s);
                return 0;
            }
        }
    }
    if (heap_init(&s->heap, (int)(nodes * 2 + 8))) {
        fs_destroy(s);
        return 0;
    }
    for (int64_t n = 0; n < nodes; n++) {
        heap_push(&s->heap, 0, (int32_t)n);
    }
    s->active_block = -1;
    return s;
}

void fs_destroy(FastSim *s) {
    /* Must also release partially-built structs from a failed
       fs_create: every per-node array may be NULL, and zeroed members
       free cleanly (free(NULL) is a no-op everywhere below). */
    if (!s) return;
    for (int64_t n = 0; s->flc && n < s->nodes; n++) lru_free(&s->flc[n]);
    for (int64_t n = 0; s->slc && n < s->nodes; n++) lru_free(&s->slc[n]);
    for (int64_t n = 0; s->am && n < s->nodes; n++) lru_free(&s->am[n]);
    free(s->flc);
    free(s->slc);
    free(s->am);
    dir_free(&s->dir);
    map_free(&s->vpn2pfn);
    map_free(&s->pfn2vpn);
    if (s->tlbs) {
        for (int i = 0; i < s->ntlb; i++) tlb_free(&s->tlbs[i]);
        free(s->tlbs);
    }
    heap_free(&s->heap);
    free(s->dir_lookups);
    free(s->node_ctr);
    free(s->node_calls);
    free(s->loc_stall);
    free(s->rem_stall);
    free(s->tlb_stall);
    free(s->rh_buckets);
    free(s->wh_buckets);
    free(s->rh_count);
    free(s->rh_total);
    free(s->wh_count);
    free(s->wh_total);
    free(s->ops);
    free(s->vals);
    free(s->slen);
    free(s->pos);
    free(s->clock);
    free(s->refs_done);
    free(s->finished);
    if (s->caps) {
        for (int64_t i = 0; i < N_SWEEP_TAPS * s->nodes; i++) free(s->caps[i].data);
        free(s->caps);
    }
    free(s->cand);
    free(s);
}

/* ---- snapshot loading ---- */
void fs_set_stream(FastSim *s, int node, const uint8_t *ops, const int64_t *vals, int64_t len) {
    s->ops[node] = ops;
    s->vals[node] = vals;
    s->slen[node] = len;
}

int fs_pagemap_add(FastSim *s, int64_t vpn, int64_t pfn) {
    if (map_put(&s->vpn2pfn, vpn, pfn)) return FS_ERR_INTERNAL;
    if (map_put(&s->pfn2vpn, pfn, vpn)) return FS_ERR_INTERNAL;
    return 0;
}

int fs_am_load(FastSim *s, int node, int64_t block, int state) {
    Lru *am = &s->am[node];
    int64_t set = lru_set_of(am, block);
    if (am->count[set] >= am->assoc) return FS_ERR_INTERNAL;
    lru_append(am, set, block, (uint8_t)state);
    return 0;
}

int fs_dir_load(FastSim *s, int64_t block, int owner, const uint64_t *sharer_words) {
    int64_t slot = dir_entry_slot(&s->dir, block);
    if (slot < 0) return (int)slot;
    s->dir.owner[slot] = owner;
    memcpy(s->dir.sharers + slot * s->dir.swords, sharer_words,
           s->dir.swords * sizeof(uint64_t));
    return 0;
}

void fs_seed_engine(FastSim *s, const uint32_t *state) {
    mt_load(&s->engine_rng, state);
}

void fs_seed_tlb(FastSim *s, int idx, const uint32_t *state) {
    mt_load(&s->tlbs[idx].rng, state);
}

/* ---- tap-stream capture (uncoupled sweep mode) ---- */
int fs_set_capture(FastSim *s, int enable) {
    if (enable && !s->caps) {
        s->caps = (Cap *)calloc((size_t)(N_SWEEP_TAPS * s->nodes), sizeof(Cap));
        if (!s->caps) return FS_ERR_INTERNAL;
    }
    s->capture = enable ? 1 : 0;
    return 0;
}

int64_t fs_cap_count(FastSim *s, int tap, int node) {
    return s->caps ? s->caps[tap * s->nodes + node].len : 0;
}

const int64_t *fs_cap_data(FastSim *s, int tap, int node) {
    return s->caps ? s->caps[tap * s->nodes + node].data : NULL;
}

/* ---- run control ---- */
int fs_run(FastSim *s, int64_t *out) {
    Heap *h = &s->heap;
    const int64_t think = s->think;
    while (h->len) {
        int64_t now;
        int32_t n;
        heap_pop(h, &now, &n);
        if (s->finished[n]) continue;
        if (s->max_refs >= 0 && s->refs_done[n] >= s->max_refs) {
            out[0] = n;
            out[1] = now;
            return FS_NEED_FINISH;
        }
        if (s->pos[n] >= s->slen[n]) {
            out[0] = n;
            out[1] = now;
            return FS_NEED_FINISH;
        }
        uint8_t op = s->ops[n][s->pos[n]];
        if (op <= 1) {
            int64_t value = s->vals[n][s->pos[n]];
            s->pos[n]++;
            int64_t stall = node_reference(s, n, op, value, now + think);
            if (stall < 0) return (int)stall;
            if (s->cap_oom) return FS_ERR_INTERNAL;
            int64_t t = now + think + stall;
            s->clock[n] = t;
            s->refs_done[n]++;
            if (heap_push(h, t, n)) return FS_ERR_INTERNAL;
        } else {
            out[0] = n;
            out[1] = now;
            out[2] = op;
            out[3] = s->vals[n][s->pos[n]];
            return FS_SYNC;
        }
    }
    return FS_DONE;
}

/* lock-word stores from the Python sync handlers */
int64_t fs_reference(FastSim *s, int node, int is_write, int64_t vaddr, int64_t now) {
    int64_t cycles = node_reference(s, node, is_write, vaddr, now);
    if (cycles >= 0 && s->cap_oom) return FS_ERR_INTERNAL;
    return cycles;
}

void fs_consume_op(FastSim *s, int node) { s->pos[node]++; }

void fs_push(FastSim *s, int64_t t, int node) { heap_push(&s->heap, t, (int32_t)node); }

void fs_set_clock(FastSim *s, int node, int64_t t) { s->clock[node] = t; }

int64_t fs_get_clock(FastSim *s, int node) { return s->clock[node]; }

void fs_mark_finished(FastSim *s, int node) { s->finished[node] = 1; }

int64_t fs_refs_done(FastSim *s, int node) { return s->refs_done[node]; }

int64_t fs_pos(FastSim *s, int node) { return s->pos[node]; }

/* ---- copyback accessors ---- */
void fs_export_global(FastSim *s, int64_t *values, int64_t *calls) {
    memcpy(values, s->glob, sizeof(s->glob));
    memcpy(calls, s->glob_calls, sizeof(s->glob_calls));
}

void fs_export_node_counters(FastSim *s, int node, int64_t *values, int64_t *calls) {
    memcpy(values, s->node_ctr + node * N_NODE_CTR, N_NODE_CTR * sizeof(int64_t));
    memcpy(calls, s->node_calls + node * N_NODE_CTR, N_NODE_CTR * sizeof(int64_t));
}

void fs_export_breakdown(FastSim *s, int node, int64_t *out) {
    out[0] = s->loc_stall[node];
    out[1] = s->rem_stall[node];
    out[2] = s->tlb_stall[node];
}

void fs_export_hist(FastSim *s, int node, int is_write, int64_t *buckets, int64_t *count_total) {
    if (is_write) {
        memcpy(buckets, s->wh_buckets + node * N_HIST_BUCKETS,
               N_HIST_BUCKETS * sizeof(int64_t));
        count_total[0] = s->wh_count[node];
        count_total[1] = s->wh_total[node];
    } else {
        memcpy(buckets, s->rh_buckets + node * N_HIST_BUCKETS,
               N_HIST_BUCKETS * sizeof(int64_t));
        count_total[0] = s->rh_count[node];
        count_total[1] = s->rh_total[node];
    }
}

/* which: 0 flc, 1 slc, 2 am.  Returns resident count; blocks/states in
 * set order, LRU order within each set. */
int64_t fs_export_cache(FastSim *s, int node, int which, int64_t *blocks, uint8_t *states) {
    Lru *c = which == 0 ? &s->flc[node] : which == 1 ? &s->slc[node] : &s->am[node];
    int64_t k = 0;
    for (int64_t set = 0; set < c->sets; set++) {
        int n = c->count[set];
        for (int i = 0; i < n; i++) {
            blocks[k] = c->blocks[set * c->assoc + i];
            states[k] = c->states[set * c->assoc + i];
            k++;
        }
    }
    return k;
}

void fs_cache_stats(FastSim *s, int node, int which, int64_t *out) {
    Lru *c = which == 0 ? &s->flc[node] : which == 1 ? &s->slc[node] : &s->am[node];
    out[0] = c->hits;
    out[1] = c->misses;
}

int64_t fs_dir_count(FastSim *s) { return s->dir.nentries; }

void fs_export_dir(FastSim *s, int64_t *blocks, int32_t *owners, uint64_t *sharers) {
    memcpy(blocks, s->dir.blocks, s->dir.nentries * sizeof(int64_t));
    memcpy(owners, s->dir.owner, s->dir.nentries * sizeof(int32_t));
    memcpy(sharers, s->dir.sharers, s->dir.nentries * s->dir.swords * sizeof(uint64_t));
}

void fs_export_dir_lookups(FastSim *s, int64_t *out) {
    memcpy(out, s->dir_lookups, s->nodes * sizeof(int64_t));
}

/* tags flat (sets*assoc) + per-set lengths; returns total entries */
int64_t fs_export_tlb(FastSim *s, int idx, int64_t *tags, int32_t *lens, int64_t *stats) {
    Tlb *t = &s->tlbs[idx];
    memcpy(tags, t->tags, t->sets * t->assoc * sizeof(int64_t));
    memcpy(lens, t->len, t->sets * sizeof(int32_t));
    stats[0] = t->accesses;
    stats[1] = t->misses;
    int64_t total = 0;
    for (int64_t i = 0; i < t->sets; i++) total += t->len[i];
    return total;
}

/* 625 words: mt[624] + index (random.Random setstate layout) */
void fs_export_engine_rng(FastSim *s, uint32_t *out) {
    memcpy(out, s->engine_rng.mt, MT_N * sizeof(uint32_t));
    out[MT_N] = (uint32_t)s->engine_rng.index;
}

void fs_export_tlb_rng(FastSim *s, int idx, uint32_t *out) {
    memcpy(out, s->tlbs[idx].rng.mt, MT_N * sizeof(uint32_t));
    out[MT_N] = (uint32_t)s->tlbs[idx].rng.index;
}

int64_t fs_translation_accum(FastSim *s) { return s->translation_accum; }

int64_t fs_active_block(FastSim *s) { return s->active_block; }

/* selftest hook: n draws of genrand (== getrandbits(32)) from a
 * transferred random.Random state */
void fs_rng_selftest(const uint32_t *state, uint32_t *out, int n) {
    MT r;
    mt_load(&r, state);
    for (int i = 0; i < n; i++) out[i] = mt_genrand(&r);
}

/* selftest hook: shuffle 0..len-1 in place, matching random.shuffle */
void fs_shuffle_selftest(const uint32_t *state, int32_t *arr, int len) {
    MT r;
    mt_load(&r, state);
    mt_shuffle(&r, arr, len);
}

/* One TranslationBuffer replayed over one recorded tap stream: the
 * "one C call per node stream" bank kernel of the uncoupled sweep
 * engine.  Banks never interact, so per-stream replay with the
 * buffer's own Mersenne Twister substream reproduces every victim
 * draw -- and therefore every miss count -- of the coupled scalar
 * run.  rng_state (625 words, random.Random layout) is read on entry
 * and overwritten with the post-run state; tags/lens receive the
 * final contents (sets*assoc / sets slots).  Returns the miss count,
 * or negative on allocation failure. */
int64_t fs_bank_run(int64_t entries, int64_t sets, int64_t assoc, uint32_t *rng_state,
                    const int64_t *pages, int64_t n, int64_t *tags, int32_t *lens) {
    Tlb t;
    if (tlb_init(&t, entries, sets, assoc)) {
        tlb_free(&t);
        return FS_ERR_INTERNAL;
    }
    mt_load(&t.rng, rng_state);
    for (int64_t i = 0; i < n; i++) tlb_access(&t, pages[i]);
    memcpy(tags, t.tags, (size_t)(sets * assoc) * sizeof(int64_t));
    memcpy(lens, t.len, (size_t)sets * sizeof(int32_t));
    memcpy(rng_state, t.rng.mt, MT_N * sizeof(uint32_t));
    rng_state[MT_N] = (uint32_t)t.rng.index;
    int64_t misses = t.misses;
    tlb_free(&t);
    return misses;
}

/* ------------------------------------------------------------------ */
/* trace rendering: packed binary trace records -> JSONL text          */
/*                                                                     */
/* The tracer (repro.obs.trace) batches hot records as                 */
/* [u8 codec_id][n x little-endian int64] and registers, per codec,    */
/* the literal JSON segments between value slots plus one kind byte    */
/* per slot: 0 = int, 1 = int rendered as null when negative,          */
/* 2 = index into a shared string table (enum choices, "true"/"false").*/
/* Rendering here must be byte-identical to the tracer's Python        */
/* fallback (and to its generic dict encoder) -- the Python side       */
/* self-checks every codec against the generic encoder at creation.    */
/* ------------------------------------------------------------------ */

static char *tr_itoa(char *o, int64_t v) {
    char tmp[24];
    int n = 0;
    uint64_t u = (v < 0) ? (uint64_t)(-(v + 1)) + 1u : (uint64_t)v;
    if (v < 0) *o++ = '-';
    do {
        tmp[n++] = (char)('0' + (u % 10u));
        u /= 10u;
    } while (u);
    while (n) *o++ = tmp[--n];
    return o;
}

/* Returns bytes written, -1 if `cap` is too small (caller grows and
 * retries), -2 on a malformed stream/table. */
int64_t fs_trace_render(const char *stream_, int64_t nbytes,
                        const int32_t *nslots, const int32_t *kind_off,
                        const char *kinds_,
                        const char *segs, const int64_t *seg_off,
                        const int32_t *seg_base,
                        const char *strs, const int64_t *str_off, int64_t nstr,
                        char *out, int64_t cap) {
    const uint8_t *p = (const uint8_t *)stream_;
    const uint8_t *pe = p + nbytes;
    const uint8_t *kinds = (const uint8_t *)kinds_;
    char *o = out;
    char *oe = out + cap;
    while (p < pe) {
        int c = *p++;
        int ns = nslots[c];
        if (p + 8 * ns > pe) return -2;
        int kbase = kind_off[c];
        int sbase = seg_base[c];
        for (int j = 0; j <= ns; j++) {
            int64_t s0 = seg_off[sbase + j];
            int64_t s1 = seg_off[sbase + j + 1];
            if (o + (s1 - s0) + 24 > oe) return -1;
            memcpy(o, segs + s0, (size_t)(s1 - s0));
            o += s1 - s0;
            if (j == ns) break;
            int64_t v;
            memcpy(&v, p, 8); /* stream is little-endian, like the host */
            p += 8;
            uint8_t k = kinds[kbase + j];
            if (k == 2) {
                if (v < 0 || v >= nstr) return -2;
                int64_t t0 = str_off[v];
                int64_t t1 = str_off[v + 1];
                if (o + (t1 - t0) > oe) return -1;
                memcpy(o, strs + t0, (size_t)(t1 - t0));
                o += t1 - t0;
            } else if (k == 1 && v < 0) {
                memcpy(o, "null", 4);
                o += 4;
            } else {
                o = tr_itoa(o, v);
            }
        }
    }
    return o - out;
}
