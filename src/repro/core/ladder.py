"""The supervised degradation ladder: compiled → numpy → pure-Python.

Every simulation in this package can be produced by three engines, in
strictly decreasing speed and strictly increasing dependency-freedom:

1. **compiled** — the ``fastsim.c`` columnar engine (gcc + cffi),
   ~8-12x the seed throughput.  Timing runs and uncoupled sweeps.
2. **numpy** — the vectorized TLB/DLB replay kernels
   (:mod:`repro.core.replay`); sweeps replayed from recorded traces.
3. **scalar** — the pure-Python reference engines.  Always available;
   the differential-testing oracle every other tier is gated against.

All tiers are bit-identical by construction (the equivalence suites
enforce it), so degrading is always *safe* — the ladder's job is to
make it **supervised**: each tier is probed for health, every
degradation is recorded with a structured ``fallback_reason`` (stamped
through ``RunResult`` → ``RunSummary`` → ``GridStats``), counted in the
runtime metrics registry (:mod:`repro.obs.runtime`), and reported to
the user exactly once.  ``repro doctor`` renders the resolved ladder
and exits non-zero when only the last-resort tier is left.

Deterministic failure injection for tests and CI lives here too:
``REPRO_FASTSIM_FAULT`` forces the compiled engine to fail in a chosen
way (``oom``, ``internal``, ``create``) so the degrade-to-scalar path
is provable without actually exhausting memory.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ReproError

#: Force a deterministic compiled-engine failure: ``oom`` (allocation
#: failure mid-run), ``create`` (engine construction fails), or
#: ``internal`` (sticky internal error status).  Test/CI hook only.
FAULT_ENV = "REPRO_FASTSIM_FAULT"


class EngineDegraded(ReproError):
    """The compiled engine failed in a way the scalar oracle recovers
    from (allocation failure, internal error, injected fault) — the
    caller should re-run on the next ladder tier, not crash.

    Genuine simulation errors (``ProtocolError``, ``CapacityError``,
    deadlocks) are *not* wrapped: the scalar engine would raise them
    too, so degrading would only burn time reproducing the failure.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def injected_fault() -> Optional[str]:
    """The :data:`FAULT_ENV` fault kind, or None."""
    value = os.environ.get(FAULT_ENV, "").strip().lower()
    return value or None


# ---------------------------------------------------------------------------
# tier health probes
# ---------------------------------------------------------------------------


@dataclass
class TierHealth:
    """One ladder tier's probe result."""

    tier: str
    healthy: bool
    detail: str
    #: Tier-specific identity: library digest, numpy version, ...
    version: Optional[str] = None
    extra: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "tier": self.tier,
            "healthy": self.healthy,
            "detail": self.detail,
            "version": self.version,
            **({"extra": dict(self.extra)} if self.extra else {}),
        }


def probe_compiled() -> TierHealth:
    """Health of the compiled fastsim tier (build + dlopen + self-test)."""
    from repro.core import timing_kernels as tk

    health = tk.backend_health()
    return TierHealth(
        tier="compiled",
        healthy=health["status"] == "ok",
        detail=health["detail"],
        version=health["digest"],
        extra={
            "path": health["path"],
            "cflags": list(health["cflags"]),
            "quarantined_libraries": health["quarantined_libraries"],
        },
    )


def probe_numpy() -> TierHealth:
    """Health of the vectorized replay tier."""
    from repro.core.replay import NO_NUMPY_ENV, get_numpy

    if os.environ.get(NO_NUMPY_ENV):
        return TierHealth("numpy", False, f"disabled ({NO_NUMPY_ENV})")
    numpy = get_numpy()
    if numpy is None:
        return TierHealth("numpy", False, "numpy not installed")
    try:
        version = str(numpy.__version__)
        # A one-element smoke op: a broken install fails here, not
        # deep inside a replay kernel.
        if int(numpy.asarray([41], dtype=numpy.int64).sum()) + 1 != 42:
            return TierHealth("numpy", False, "numpy arithmetic smoke test failed")
    except Exception as exc:  # pragma: no cover - broken installs vary
        return TierHealth("numpy", False, f"numpy probe crashed ({exc})")
    return TierHealth("numpy", True, "vectorized replay kernels", version=version)


def probe_scalar() -> TierHealth:
    """The pure-Python last resort — healthy by definition."""
    return TierHealth(
        tier="scalar",
        healthy=True,
        detail="pure-Python reference engines (differential oracle)",
        version=sys.version.split()[0],
    )


def degradation_ladder() -> List[TierHealth]:
    """Probe every tier, fastest first."""
    return [probe_compiled(), probe_numpy(), probe_scalar()]


def resolved_tier(ladder: Optional[List[TierHealth]] = None) -> TierHealth:
    """The tier runs will actually execute on (first healthy rung)."""
    for tier in ladder or degradation_ladder():
        if tier.healthy:
            return tier
    raise ReproError("no healthy engine tier")  # scalar is unconditional


def only_last_resort(ladder: Optional[List[TierHealth]] = None) -> bool:
    """True when every tier above pure-Python is unhealthy (the
    condition under which ``repro doctor`` exits non-zero)."""
    rungs = ladder or degradation_ladder()
    return not any(tier.healthy for tier in rungs if tier.tier != "scalar")


def render_ladder(ladder: Optional[List[TierHealth]] = None) -> str:
    """Human-readable ladder report (the body of ``repro doctor``)."""
    from repro.obs.runtime import fallback_counts

    rungs = ladder or degradation_ladder()
    fallbacks = fallback_counts()
    lines = ["degradation ladder (fastest first):"]
    resolved = resolved_tier(rungs).tier
    for tier in rungs:
        mark = "ok " if tier.healthy else "BAD"
        arrow = " <- active" if tier.tier == resolved else ""
        version = f" [{tier.version}]" if tier.version else ""
        lines.append(f"  {mark}  {tier.tier:<9}{version} {tier.detail}{arrow}")
        path = tier.extra.get("path")
        if path:
            lines.append(f"       library: {path}")
        cflags = tier.extra.get("cflags")
        if cflags:
            lines.append(f"       cflags: {' '.join(cflags)}")
        quarantined = tier.extra.get("quarantined_libraries")
        if quarantined:
            lines.append(f"       quarantined libraries: {quarantined}")
        degraded = fallbacks.get(tier.tier)
        if degraded:
            lines.append(f"       degraded runs this process: {degraded}")
    return "\n".join(lines)
