"""Vectorized TLB/DLB bank replay kernels.

Miss-count experiments (paper Figures 8/9, Tables 2/3) are decoupled:
translation state never feeds back into the cache hierarchy, so a
recorded tap stream can drive translation buffers of *every* size and
organization after the fact.  This module is the replay half of that
pipeline: given one page-number stream, compute the miss count of each
``(entries, organization)`` design point **bit-identically** to feeding
the same stream through :class:`~repro.core.tlb.TranslationBuffer`.

Three kernels:

* **direct-mapped** — fully vectorized.  A one-way set caches exactly
  the last page that indexed it, so the miss count is the number of
  page *transitions* within each set's access subsequence; one stable
  sort by set index exposes those subsequences to numpy.  No RNG is
  involved (a 1-way set never draws a victim), matching the scalar
  path's RNG consumption of zero.
* **random-replacement (fully/set-associative)** — vectorized scan with
  a scalar miss path.  Random replacement only mutates state on a miss,
  so any stretch of hits can be validated in one numpy gather against
  the residency table; the kernel scans adaptively-sized chunks and
  only drops to Python for the tail of a chunk containing a miss.  The
  miss path reproduces :meth:`TranslationBuffer._install` exactly —
  same ``random.Random`` substream, same rejection-sampled
  ``getrandbits`` victim draw — so the eviction sequence, and therefore
  every downstream hit/miss, is identical.
* **scalar fallback** — feeds a real :class:`TranslationBuffer`.  Used
  when numpy is unavailable (or ``REPRO_NO_NUMPY`` is set), keeping
  numpy an optional dependency; identical by construction.

Kernel selection is automatic per organization and per process; every
path yields the same miss counts, asserted by
``tests/unit/test_replay.py`` and the integration equivalence suite.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.core.tlb import Organization, TranslationBank, TranslationBuffer

#: Set non-empty to force the pure-Python kernels even when numpy is
#: importable (used by the CI matrix and the equivalence tests).
NO_NUMPY_ENV = "REPRO_NO_NUMPY"

#: Chunk bounds for the random-replacement scan.  The chunk doubles
#: after an all-hit gather and halves after a chunk containing a miss,
#: so hit-dominated streams run at gather speed while miss-dense
#: streams degrade gracefully toward the scalar loop.
_MIN_CHUNK = 256
_MAX_CHUNK = 65536

_numpy_module = None  # unresolved


def get_numpy():
    """The numpy module, or None (not installed / disabled by env)."""
    global _numpy_module
    if os.environ.get(NO_NUMPY_ENV):
        return None
    if _numpy_module is None:
        try:
            import numpy
            _numpy_module = numpy
        except ImportError:
            _numpy_module = False
    return _numpy_module or None


def _compiled_backend():
    """The compiled fastsim backend, or None.

    Imported lazily: :mod:`repro.core.timing_kernels` imports this
    module for :func:`get_numpy`, so a top-level import would be
    circular.  ``get_backend`` honors ``REPRO_NO_NUMBA`` per call.
    """
    from repro.core.timing_kernels import get_backend

    return get_backend()


def _buffer_geometry(entries: int, organization: Organization) -> Tuple[int, int]:
    """(assoc, sets) for one bank member, mirroring TranslationBank."""
    if entries <= 0 or entries & (entries - 1):
        raise ConfigurationError(f"entries={entries} must be a positive power of two")
    if organization is Organization.FULLY_ASSOCIATIVE:
        assoc = entries
    elif organization is Organization.DIRECT_MAPPED:
        assoc = 1
    else:
        assoc = min(TranslationBank.SET_ASSOC_WAYS, entries)
    return assoc, entries // assoc


class ReplayStream:
    """One recorded page-number stream, with numpy state shared across
    every design point replayed from it (the dense-id relabelling and
    the page array are config-independent)."""

    __slots__ = (
        "pages",
        "_np",
        "_arr",
        "_ids",
        "_ids_list",
        "_pages_list",
        "_unique",
        "_i64",
    )

    def __init__(self, pages: Sequence[int]) -> None:
        self.pages = pages
        self._np = get_numpy()
        self._arr = None
        self._ids = None
        self._ids_list = None
        self._pages_list = None
        self._unique = 0
        self._i64 = None

    def __len__(self) -> int:
        return len(self.pages)

    # -- lazy shared state ----------------------------------------------
    def _page_array(self):
        if self._arr is None:
            self._arr = self._np.asarray(self.pages, dtype=self._np.uint64)
        return self._arr

    def _pages_i64(self):
        """The stream as a signed-64 column (the compiled kernel's input
        type); converted once per stream, shared by every design point."""
        if self._i64 is None:
            if self._np is not None:
                self._i64 = self._np.asarray(self.pages, dtype=self._np.int64)
            else:
                import array as _array

                self._i64 = _array.array("q", self.pages)
        return self._i64

    def _dense_ids(self):
        """Pages relabelled to 0..U-1 so residency fits a flat table."""
        if self._ids is None:
            unique, ids = self._np.unique(self._page_array(), return_inverse=True)
            self._ids = ids
            self._unique = int(unique.size)
            self._ids_list = ids.tolist()
            self._pages_list = self._page_array().tolist()
        return self._ids

    # -- kernels ---------------------------------------------------------
    def misses(self, entries: int, organization: Organization, rng) -> int:
        """Miss count for one design point, bit-identical to the scalar
        :class:`TranslationBuffer` fed the same stream with ``rng``."""
        assoc, sets = _buffer_geometry(entries, organization)
        if self.pages:
            compiled = _compiled_backend()
            if compiled is not None:
                return self._compiled_misses(entries, assoc, sets, rng, compiled)
        if self._np is None or not self.pages:
            return _scalar_misses(self.pages, entries, organization, assoc, rng)
        if assoc == 1:
            return self._direct_mapped_misses(sets)
        return self._random_replacement_misses(assoc, sets, rng)

    def _compiled_misses(self, entries: int, assoc: int, sets: int, rng, compiled) -> int:
        """One ``fs_bank_run`` call — the compiled sweep engine's bank
        kernel replaying this stream through one buffer geometry.  The
        RNG is advanced exactly as the scalar buffer would (the C side
        runs the same rejection-sampled victim draws)."""
        from repro.core import timing_kernels as tk

        ffi, lib = compiled.ffi, compiled.lib
        pages = self._pages_i64()
        rng_words = tk.rng_state_words(rng)
        tags = ffi.new("int64_t[]", sets * assoc)
        lens = ffi.new("int32_t[]", sets)
        count = int(
            lib.fs_bank_run(
                entries,
                sets,
                assoc,
                ffi.from_buffer("uint32_t[]", rng_words),
                ffi.from_buffer("int64_t[]", pages),
                len(pages),
                tags,
                lens,
            )
        )
        if count < 0:
            raise MemoryError("compiled bank replay: allocation failed")
        tk.load_rng_state(rng, rng_words)
        return count

    def _direct_mapped_misses(self, sets: int) -> int:
        np = self._np
        pages = self._page_array()
        set_idx = pages & np.uint64(sets - 1)
        order = np.argsort(set_idx, kind="stable")
        sorted_sets = set_idx[order]
        sorted_pages = pages[order]
        # First access of each set group misses; within a group, every
        # page transition misses (the single way held a different page).
        miss = np.empty(len(pages), dtype=bool)
        miss[0] = True
        np.not_equal(sorted_pages[1:], sorted_pages[:-1], out=miss[1:])
        miss[1:] |= sorted_sets[1:] != sorted_sets[:-1]
        return int(np.count_nonzero(miss))

    def _random_replacement_misses(self, assoc: int, sets: int, rng) -> int:
        np = self._np
        ids = self._dense_ids()
        ids_list = self._ids_list
        pages_list = self._pages_list
        resident = bytearray(self._unique)
        res_view = np.frombuffer(resident, dtype=np.uint8)
        tags: List[List[int]] = [[] for _ in range(sets)]
        set_mask = sets - 1
        getrandbits = rng.getrandbits
        bits = assoc.bit_length()
        misses = 0
        n = len(ids_list)
        i = 0
        chunk = _MIN_CHUNK * 4
        while i < n:
            hi = min(n, i + chunk)
            seg = res_view[ids[i:hi]]
            first = int(seg.argmin())
            if seg[first]:
                # Hits throughout: no state change, nothing to replay.
                i = hi
                if chunk < _MAX_CHUNK:
                    chunk <<= 1
                continue
            for j in range(i + first, hi):
                page_id = ids_list[j]
                if resident[page_id]:
                    continue
                misses += 1
                ways = tags[pages_list[j] & set_mask]
                if len(ways) < assoc:
                    ways.append(page_id)
                else:
                    # Same rejection-sampled draw as TranslationBuffer.
                    way = getrandbits(bits)
                    while way >= assoc:
                        way = getrandbits(bits)
                    resident[ways[way]] = 0
                    ways[way] = page_id
                resident[page_id] = 1
            i = hi
            if chunk > _MIN_CHUNK:
                chunk >>= 1
        return misses


def _scalar_misses(
    pages: Sequence[int],
    entries: int,
    organization: Organization,
    assoc: int,
    rng,
) -> int:
    """Pure-Python reference path: a real TranslationBuffer."""
    buffer = TranslationBuffer(
        entries,
        organization,
        assoc=assoc if organization is Organization.SET_ASSOCIATIVE else None,
        rng=rng,
    )
    access = buffer.access
    for page in pages:
        access(page)
    return buffer.misses


def bank_miss_counts(
    pages: Sequence[int],
    configs: Iterable[Tuple[int, Organization]],
    seed: int,
    name: str,
    stream: Optional[ReplayStream] = None,
) -> Dict[Tuple[int, Organization], int]:
    """Replay one stream through a whole bank of design points.

    ``seed``/``name`` address the same RNG substreams a
    :class:`TranslationBank` constructed with ``(seed, name)`` would
    give its member buffers, so the result equals
    ``TranslationBank(configs, seed, name)`` fed ``pages`` one by one.
    """
    if stream is None:
        stream = ReplayStream(pages)
    counts: Dict[Tuple[int, Organization], int] = {}
    for entries, organization in configs:
        key = (entries, organization)
        if key in counts:
            continue
        rng = make_rng(seed, name, entries, organization.value)
        counts[key] = stream.misses(entries, organization, rng)
    return counts
