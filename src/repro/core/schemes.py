"""The five dynamic-address-translation designs (paper Section 3).

Each scheme is defined by *where* in the memory hierarchy the translation
structure sits, i.e. which access stream reaches it:

========  =====================================================
Scheme    Stream translated
========  =====================================================
L0-TLB    every processor reference (classic per-CPU TLB)
L1-TLB    FLC misses **plus all stores** (the FLC is write-through)
L2-TLB    SLC misses plus SLC writebacks (unless bypassed)
L3-TLB    attraction-memory misses (remote requests)
V-COMA    home-node directory lookups (the shared DLB)
========  =====================================================

The :class:`TapPoint` enumeration names these streams; the simulator
exposes a tap at each point so that a single run can drive TLB models for
every scheme (see ``repro.system.taps``).
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple


class Scheme(enum.Enum):
    """One of the paper's five translation designs."""

    L0_TLB = "L0-TLB"
    L1_TLB = "L1-TLB"
    L2_TLB = "L2-TLB"
    L3_TLB = "L3-TLB"
    V_COMA = "V-COMA"

    @property
    def uses_virtual_flc(self) -> bool:
        """Is the first-level cache virtually indexed and tagged?"""
        return self is not Scheme.L0_TLB

    @property
    def uses_virtual_slc(self) -> bool:
        return self in (Scheme.L2_TLB, Scheme.L3_TLB, Scheme.V_COMA)

    @property
    def uses_virtual_am(self) -> bool:
        """Is the attraction memory virtually indexed and tagged?

        Virtual AMs constrain page placement to the global set selected
        by the virtual address (page coloring); physical AMs place pages
        wherever the OS allocated frames.
        """
        return self in (Scheme.L3_TLB, Scheme.V_COMA)

    @property
    def translation_is_shared(self) -> bool:
        """V-COMA's DLB is shared at the home node; every TLB is
        per-node."""
        return self is Scheme.V_COMA

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class TapPoint(enum.Enum):
    """Points in the hierarchy where a translation stream can be observed.

    ``L2_NO_WBACK`` is the paper's ``L2-TLB/no_wback`` variant: the L2
    stream with SLC writebacks excluded (modelling physical pointers kept
    in the virtual SLC so writebacks bypass the TLB).
    """

    L0 = "L0"
    L1 = "L1"
    L2 = "L2"
    L2_NO_WBACK = "L2/no_wback"
    L3 = "L3"
    HOME = "HOME"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


TAP_OF_SCHEME: Dict[Scheme, TapPoint] = {
    Scheme.L0_TLB: TapPoint.L0,
    Scheme.L1_TLB: TapPoint.L1,
    Scheme.L2_TLB: TapPoint.L2,
    Scheme.L3_TLB: TapPoint.L3,
    Scheme.V_COMA: TapPoint.HOME,
}

#: Presentation order used by every table in the paper.
SCHEME_ORDER: Tuple[Scheme, ...] = (
    Scheme.L0_TLB,
    Scheme.L1_TLB,
    Scheme.L2_TLB,
    Scheme.L3_TLB,
    Scheme.V_COMA,
)
