"""Compiled columnar timing kernels (backend loader + stream columnarization).

The timing path's hot loop — heap-ordered reference interleaving through
FLC/SLC/AM lookups, protocol transitions, and crossbar charging — is
irreducibly sequential *between* synchronization points but involves no
Python-level decisions there: barriers, locks, and stream end are the
only events where cross-node ordering must consult simulator policy.
``fastsim.c`` exploits that split.  Each node's reference stream is
materialized into columnar arrays (one ``uint8`` opcode column, one
``int64`` value column) and handed to a compiled engine that runs the
whole machine — heap, caches, attraction memories, directory, TLB/DLB,
RNG — returning to Python only at sync events.  The scalar engine in
:mod:`repro.system.simulator` is retained as the differential-testing
oracle; every counter, breakdown, histogram, cache image, and RNG state
the compiled engine produces is copied back bit-identically
(``tests/integration/test_timing_equivalence.py``).

Backend selection mirrors the replay kernels' ``REPRO_NO_NUMPY`` switch:

* The C source is compiled on first use with the host ``gcc`` into a
  per-user cache directory (``$REPRO_FASTSIM_CACHE`` or
  ``~/.cache/repro-fastsim``), keyed by a source hash, and loaded
  through ``cffi``'s ABI mode — no ``Python.h`` or build system needed.
* ``REPRO_NO_NUMBA`` (historical name, kept for symmetry with the issue
  tracker) disables the compiled backend entirely; the simulator then
  falls back to the scalar engine.
* Missing ``cffi`` or ``gcc`` degrade the same way: ``get_backend()``
  returns ``None`` and :func:`backend_status` says why.
"""

from __future__ import annotations

import array
import hashlib
import os
import random
import shlex
import subprocess
import tempfile
from typing import Iterable, List, Optional, Tuple

from collections import OrderedDict

from repro.core.replay import get_numpy
from repro.core.schemes import TapPoint
from repro.system.refs import BARRIER

#: Set non-empty to force the scalar timing engine even when the
#: compiled backend would load (CI matrix + equivalence tests).
NO_NUMBA_ENV = "REPRO_NO_NUMBA"

#: Override the shared-library cache directory.
CACHE_ENV = "REPRO_FASTSIM_CACHE"

#: Extra compiler flags (shlex-split), folded into the library digest so
#: e.g. a ``-fsanitize=address,undefined`` build caches separately from
#: the production ``-O2`` build (the CI sanitizer leg uses this).
CFLAGS_ENV = "REPRO_FASTSIM_CFLAGS"

#: Words drawn by the post-dlopen RNG self-test probe.
_SELFTEST_DRAWS = 16

_C_SOURCE = os.path.join(os.path.dirname(__file__), "fastsim.c")

# ---------------------------------------------------------------------------
# C ABI description (must match fastsim.c exactly)
# ---------------------------------------------------------------------------

CDEF = """
typedef struct FastSim FastSim;

FastSim *fs_create(const int64_t *geom);
void fs_destroy(FastSim *s);
void fs_set_stream(FastSim *s, int node, const uint8_t *ops, const int64_t *vals, int64_t len);
int fs_pagemap_add(FastSim *s, int64_t vpn, int64_t pfn);
int fs_am_load(FastSim *s, int node, int64_t block, int state);
int fs_dir_load(FastSim *s, int64_t block, int owner, const uint64_t *sharer_words);
void fs_seed_engine(FastSim *s, const uint32_t *state);
void fs_seed_tlb(FastSim *s, int idx, const uint32_t *state);
int fs_run(FastSim *s, int64_t *out);
int64_t fs_reference(FastSim *s, int node, int is_write, int64_t vaddr, int64_t now);
void fs_consume_op(FastSim *s, int node);
void fs_push(FastSim *s, int64_t t, int node);
void fs_set_clock(FastSim *s, int node, int64_t t);
int64_t fs_get_clock(FastSim *s, int node);
void fs_mark_finished(FastSim *s, int node);
int64_t fs_refs_done(FastSim *s, int node);
int64_t fs_pos(FastSim *s, int node);
void fs_export_global(FastSim *s, int64_t *values, int64_t *calls);
void fs_export_node_counters(FastSim *s, int node, int64_t *values, int64_t *calls);
void fs_export_breakdown(FastSim *s, int node, int64_t *out);
void fs_export_hist(FastSim *s, int node, int is_write, int64_t *buckets, int64_t *count_total);
int64_t fs_export_cache(FastSim *s, int node, int which, int64_t *blocks, uint8_t *states);
void fs_cache_stats(FastSim *s, int node, int which, int64_t *out);
int64_t fs_dir_count(FastSim *s);
void fs_export_dir(FastSim *s, int64_t *blocks, int32_t *owners, uint64_t *sharers);
void fs_export_dir_lookups(FastSim *s, int64_t *out);
int64_t fs_export_tlb(FastSim *s, int idx, int64_t *tags, int32_t *lens, int64_t *stats);
void fs_export_engine_rng(FastSim *s, uint32_t *out);
void fs_export_tlb_rng(FastSim *s, int idx, uint32_t *out);
int64_t fs_translation_accum(FastSim *s);
int64_t fs_active_block(FastSim *s);
void fs_rng_selftest(const uint32_t *state, uint32_t *out, int n);
void fs_shuffle_selftest(const uint32_t *state, int32_t *arr, int len);
int fs_set_capture(FastSim *s, int enable);
int64_t fs_cap_count(FastSim *s, int tap, int node);
const int64_t *fs_cap_data(FastSim *s, int tap, int node);
int64_t fs_bank_run(int64_t entries, int64_t sets, int64_t assoc, uint32_t *rng_state,
                    const int64_t *pages, int64_t n, int64_t *tags, int32_t *lens);
int64_t fs_trace_render(const char *stream, int64_t nbytes,
                        const int32_t *nslots, const int32_t *kind_off,
                        const char *kinds,
                        const char *segs, const int64_t *seg_off,
                        const int32_t *seg_base,
                        const char *strs, const int64_t *str_off, int64_t nstr,
                        char *out, int64_t cap);
"""

# fs_run status codes.
DONE = 0
SYNC = 1
NEED_FINISH = 2
ERR_PROTOCOL = -1
ERR_CAPACITY = -2
ERR_KEY = -3
ERR_INTERNAL = -4

# GEOM vector slots (order of the C enum).
(
    GEOM_NODES,
    GEOM_THINK,
    GEOM_PAGE_BITS,
    GEOM_BLOCK_BITS,
    GEOM_FLC_BLOCK,
    GEOM_FLC_SETS,
    GEOM_FLC_ASSOC,
    GEOM_SLC_BLOCK,
    GEOM_SLC_SETS,
    GEOM_SLC_ASSOC,
    GEOM_AM_SETS,
    GEOM_AM_ASSOC,
    GEOM_SLC_HIT,
    GEOM_AM_HIT,
    GEOM_REQ_CYCLES,
    GEOM_BLK_CYCLES,
    GEOM_DIR_LATENCY,
    GEOM_PENALTY,
    GEOM_VIRTUAL_FLC,
    GEOM_VIRTUAL_SLC,
    GEOM_VIRTUAL_AM,
    GEOM_RELAXED,
    GEOM_TAP,
    GEOM_INCLUDE_L2_WB,
    GEOM_TLB_ENTRIES,
    GEOM_TLB_SETS,
    GEOM_TLB_ASSOC,
    GEOM_MAX_REFS,
    GEOM_AM_BLOCK,
    GEOM_REQ_PAYLOAD,
    GEOM_BLK_PAYLOAD,
    GEOM_DIR_CAPACITY,
    GEOM_MAP_CAPACITY,
    GEOM_LEN,
) = range(34)

# Tap codes (GEOM_TAP slot).
TAP_NONE = -1
TAP_L0 = 0
TAP_L1 = 1
TAP_L2 = 2
TAP_L3 = 3
TAP_HOME = 4

#: Capture-mode tap streams in C index order (the SW_* defines): the
#: six observation points an uncoupled sweep agent records, matching
#: :class:`repro.core.schemes.TapPoint` member order.
SWEEP_TAPS = (
    TapPoint.L0,
    TapPoint.L1,
    TapPoint.L2,
    TapPoint.L2_NO_WBACK,
    TapPoint.L3,
    TapPoint.HOME,
)

# AM line states, in C numeric order (AMState enum value strings).
AM_STATES = ("invalid", "shared", "master_shared", "exclusive")

#: Global engine counter names, in C index order (fs_export_global).
GLOBAL_COUNTERS = (
    "am_local_hits",
    "remote_reads",
    "remote_writes",
    "upgrades",
    "invalidations",
    "injections",
    "inject_forwards",
    "inject_merges",
    "inject_displacements",
    "sharer_drops",
    "slc_writebacks_to_am",
    "msg_read_request",
    "msg_write_request",
    "msg_upgrade_request",
    "msg_forward",
    "msg_invalidate",
    "msg_ack",
    "msg_sharer_drop",
    "msg_block_reply",
    "msg_inject",
    "msg_inject_forward",
    "msg_local",
    "msg_remote",
    "network_cycles",
    "payload_bytes",
)

#: Per-node counter names, in C index order (fs_export_node_counters).
NODE_COUNTERS = (
    "reads",
    "writes",
    "hidden_store_cycles",
    "remote_accesses",
    "am_local_accesses",
    "slc_writebacks",
    "slc_coherence_writebacks",
    "inclusion_invalidations",
    "inclusion_downgrades",
)

N_HIST_BUCKETS = 64
RNG_STATE_WORDS = 625  # mt[624] + index, from random.Random.getstate()

# ---------------------------------------------------------------------------
# backend loading
# ---------------------------------------------------------------------------


class CompiledBackend:
    """A loaded fastsim shared library plus its cffi FFI."""

    __slots__ = ("ffi", "lib", "path", "digest")

    def __init__(self, ffi, lib, path: str, digest: str = "") -> None:
        self.ffi = ffi
        self.lib = lib
        self.path = path
        #: Source+flags digest (the cache key in the library name).
        self.digest = digest


_backend: Optional[CompiledBackend] = None
_backend_failure: Optional[str] = None
_backend_resolved = False
#: Library files quarantined this process (corrupt/stale ``.so``s moved
#: aside by :func:`_build_library` / the self-test probe).
_quarantined_libraries = 0


def _cache_dir() -> str:
    override = os.environ.get(CACHE_ENV)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-fastsim")


def build_flags() -> List[str]:
    """Extra gcc flags from :data:`CFLAGS_ENV` (shlex rules)."""
    raw = os.environ.get(CFLAGS_ENV, "")
    return shlex.split(raw) if raw else []


def _source_digest(source: bytes, flags: Iterable[str] = ()) -> str:
    hasher = hashlib.sha256(source)
    for flag in flags:
        hasher.update(b"\0" + flag.encode("utf-8"))
    return hasher.hexdigest()[:16]


def _file_digest(path: str) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def _sidecar_path(target: str) -> str:
    return target + ".sha256"


def _verify_library(target: str) -> Optional[str]:
    """None when the cached ``.so`` matches its digest sidecar, else a
    short reason why it must be quarantined and rebuilt."""
    try:
        with open(_sidecar_path(target)) as handle:
            expected = handle.read().strip()
    except OSError:
        return "digest sidecar missing"
    try:
        actual = _file_digest(target)
    except OSError as exc:
        return f"unreadable ({exc})"
    if actual != expected:
        return "digest mismatch (corrupt or tampered binary)"
    return None


def quarantine_library(target: str, cache: Optional[str] = None) -> Optional[str]:
    """Move a suspect ``.so`` (and its sidecar) aside; returns the new
    path, or None if the file had already vanished.  Renames within the
    cache dir, so a concurrent loader holding the old path is safe."""
    global _quarantined_libraries
    cache = cache or os.path.dirname(target)
    name = os.path.basename(target)
    dest = os.path.join(cache, f"{name}.corrupt-{os.getpid()}-{os.urandom(2).hex()}")
    try:
        os.replace(target, dest)
    except OSError:
        dest = None
    try:
        os.unlink(_sidecar_path(target))
    except OSError:
        pass
    _quarantined_libraries += 1
    from repro.obs import runtime as _runtime

    _runtime.record_library_quarantine()
    return dest


def _build_library(source_path: str) -> str:
    """Compile fastsim.c into the cache dir; return the .so path.

    The library name carries a hash of the source *and* the extra
    :data:`CFLAGS_ENV` flags, so edits to the C file (or a sanitizer
    build) force a rebuild while repeated runs reuse the cached binary.
    The build lands under a temp name and is moved in with
    ``os.replace`` so concurrent processes can race harmlessly, and a
    ``.sha256`` sidecar records the binary's digest: a cached ``.so``
    that fails re-verification (bit rot, torn write, tampering) is
    quarantined and rebuilt instead of dlopen'd blind.
    """
    with open(source_path, "rb") as handle:
        source = handle.read()
    flags = build_flags()
    cache = _cache_dir()
    os.makedirs(cache, exist_ok=True)
    target = os.path.join(cache, f"fastsim-{_source_digest(source, flags)}.so")
    if os.path.exists(target):
        problem = _verify_library(target)
        if problem is None:
            return target
        quarantine_library(target, cache)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
    os.close(fd)
    try:
        subprocess.run(
            ["gcc", "-O2", "-shared", "-fPIC"] + flags + ["-o", tmp, source_path],
            check=True,
            capture_output=True,
        )
        digest = _file_digest(tmp)
        side_fd, side_tmp = tempfile.mkstemp(suffix=".sha256", dir=cache)
        with os.fdopen(side_fd, "w") as handle:
            handle.write(digest + "\n")
        os.replace(side_tmp, _sidecar_path(target))
        os.replace(tmp, target)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return target


def _self_test(ffi, lib) -> Optional[str]:
    """Probe a freshly-loaded library before trusting it with a run.

    Exercises the two pure functions whose correctness everything else
    leans on — the Mersenne Twister core (must continue CPython's exact
    draw sequence) and the Fisher-Yates shuffle (must match
    ``random.shuffle``).  A miscompiled, truncated, or ABI-skewed
    binary fails here instead of corrupting simulation results.
    """
    try:
        rng = random.Random(0xC0A7)
        words = rng.getstate()[1]
        state = ffi.new("uint32_t[]", words)
        out = ffi.new("uint32_t[]", _SELFTEST_DRAWS)
        lib.fs_rng_selftest(state, out, _SELFTEST_DRAWS)
        expected = [rng.getrandbits(32) for _ in range(_SELFTEST_DRAWS)]
        got = [int(out[i]) for i in range(_SELFTEST_DRAWS)]
        if got != expected:
            return "MT19937 draw sequence diverges from random.Random"

        rng = random.Random(0x5EED)
        words = rng.getstate()[1]
        state = ffi.new("uint32_t[]", words)
        arr = ffi.new("int32_t[]", list(range(32)))
        lib.fs_shuffle_selftest(state, arr, 32)
        reference = list(range(32))
        rng.shuffle(reference)
        if [int(arr[i]) for i in range(32)] != reference:
            return "shuffle diverges from random.shuffle"
    except Exception as exc:  # missing symbol, bad pointer, ...
        return f"probe crashed ({type(exc).__name__}: {exc})"
    return None


def _resolve_backend() -> None:
    global _backend, _backend_failure, _backend_resolved
    _backend_resolved = True
    try:
        import cffi
    except ImportError:
        _backend_failure = "cffi not installed"
        return
    if not os.path.exists(_C_SOURCE):
        _backend_failure = "fastsim.c missing"
        return
    # One retry: a cached .so that passes digest verification but fails
    # the functional self-test is quarantined and rebuilt from source
    # before the backend is declared unusable.
    for attempt in (1, 2):
        try:
            library = _build_library(_C_SOURCE)
        except (subprocess.CalledProcessError, FileNotFoundError, OSError) as exc:
            detail = ""
            if isinstance(exc, subprocess.CalledProcessError) and exc.stderr:
                detail = ": " + exc.stderr.decode("utf-8", "replace").strip()[:200]
            _backend_failure = f"compile failed ({type(exc).__name__}{detail})"
            return
        try:
            ffi = cffi.FFI()
            ffi.cdef(CDEF)
            lib = ffi.dlopen(library)
        except Exception as exc:  # dlopen / cdef problems
            _backend_failure = f"dlopen failed ({exc})"
            if attempt == 1:
                quarantine_library(library)
                continue
            return
        problem = _self_test(ffi, lib)
        if problem is None:
            digest = os.path.basename(library)[len("fastsim-"):-len(".so")]
            _backend = CompiledBackend(ffi, lib, library, digest)
            _backend_failure = None
            return
        _backend_failure = f"self-test failed ({problem})"
        if attempt == 1:
            quarantine_library(library)
    # Both the cached and the freshly-rebuilt library failed.


def reset_backend() -> None:
    """Forget the cached resolution (tests and ``repro doctor``)."""
    global _backend, _backend_failure, _backend_resolved
    _backend = None
    _backend_failure = None
    _backend_resolved = False


def get_backend() -> Optional[CompiledBackend]:
    """The compiled timing backend, or None (disabled / unavailable).

    The environment gate is honored per call — tests flip it at runtime
    — while the expensive compile/dlopen resolution is cached for the
    process lifetime.
    """
    if os.environ.get(NO_NUMBA_ENV):
        return None
    if not _backend_resolved:
        _resolve_backend()
    return _backend


def backend_status() -> str:
    """Human-readable availability: "compiled" or a fallback reason."""
    if os.environ.get(NO_NUMBA_ENV):
        return f"disabled ({NO_NUMBA_ENV})"
    if not _backend_resolved:
        _resolve_backend()
    if _backend is not None:
        return "compiled"
    return _backend_failure or "unavailable"


def backend_health() -> dict:
    """Structured backend state for the degradation ladder and
    ``repro doctor``: status, library path + digest, build flags, and
    how many cached libraries this process has quarantined."""
    status = backend_status()
    info = {
        "status": "ok" if status == "compiled" else "unavailable",
        "detail": status,
        "path": None,
        "digest": None,
        "cflags": build_flags(),
        "quarantined_libraries": _quarantined_libraries,
    }
    if _backend is not None and not os.environ.get(NO_NUMBA_ENV):
        info["path"] = _backend.path
        info["digest"] = _backend.digest
    return info


# ---------------------------------------------------------------------------
# columnar stream materialization
# ---------------------------------------------------------------------------


def materialize_stream(stream: Iterable[Tuple[int, int]]):
    """Drain one node's ``(op, value)`` stream into columnar arrays.

    Returns ``(ops, values)`` — a ``uint8`` opcode column and an
    ``int64`` value column, numpy arrays when available and
    ``array.array`` otherwise.  Both expose the buffer protocol, so the
    compiled backend ingests either via ``ffi.from_buffer`` with no
    copies beyond this one materialization pass.
    """
    ops_list: List[int] = []
    vals_list: List[int] = []
    append_op = ops_list.append
    append_val = vals_list.append
    for op, value in stream:
        append_op(op)
        append_val(value)
    numpy = get_numpy()
    if numpy is not None:
        count = len(ops_list)
        ops = numpy.fromiter(ops_list, dtype=numpy.uint8, count=count)
        vals = numpy.fromiter(vals_list, dtype=numpy.int64, count=count)
        return ops, vals
    return array.array("B", ops_list), array.array("q", vals_list)


# ---------------------------------------------------------------------------
# grid-level stream sharing
# ---------------------------------------------------------------------------

#: Size cap (in MiB) for the in-process materialized-stream LRU.
STREAM_CACHE_ENV = "REPRO_STREAM_CACHE_MB"

_STREAM_CACHE_DEFAULT_MB = 256.0


class StreamCache:
    """Size-capped in-process LRU of materialized ``(ops, vals)`` columns.

    A sweep/timing grid varies scheme, TLB/DLB geometry, and page size
    across cells, but every cell of the same workload drains the *same*
    reference stream — regeneration per cell is pure waste.  Columns are
    therefore keyed by ``(stream_key, node, kind)`` where ``stream_key``
    identifies the workload recipe (``JobSpec.trace_hash()`` in grid
    runs — the spec identity *minus* bank sizes/orgs and timing knobs)
    and ``kind`` is the materialization flavor (numpy vs ``array``, so a
    ``REPRO_NO_NUMPY`` flip never serves the wrong representation).

    Consumers treat cached columns as immutable — the compiled engine
    only ever reads them (``const`` columns in C), and the scalar path
    never sees them.  The byte cap (:data:`STREAM_CACHE_ENV`, default
    256 MiB) is read per call so tests can shrink it at runtime.
    """

    __slots__ = ("_entries", "_bytes", "hits", "misses", "evictions")

    def __init__(self) -> None:
        self._entries: "OrderedDict" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def max_bytes() -> int:
        raw = os.environ.get(STREAM_CACHE_ENV)
        try:
            mb = float(raw) if raw else _STREAM_CACHE_DEFAULT_MB
        except ValueError:
            mb = _STREAM_CACHE_DEFAULT_MB
        return int(mb * 1024 * 1024)

    @staticmethod
    def _cost(columns) -> int:
        ops, vals = columns
        return len(ops) + 8 * len(vals)  # u8 + i64 per reference

    def get(self, key):
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(self, key, columns) -> None:
        cap = self.max_bytes()
        cost = self._cost(columns)
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        if cost > cap:
            return  # larger than the whole cache: never resident
        self._entries[key] = (columns, cost)
        self._bytes += cost
        while self._bytes > cap and self._entries:
            _, (_, freed) = self._entries.popitem(last=False)
            self._bytes -= freed
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0

    @property
    def total_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)


_stream_cache = StreamCache()


def _clear_stream_cache_after_fork() -> None:
    """Drop fork-inherited columns in child processes.

    A forked ``BatchRunner`` worker inherits the parent's entries by
    copy; keeping them would double-count the byte cap across the pool
    and let parent/child LRU state silently diverge.  Children start
    cold and repopulate their own cache (counters reset too, so
    worker-local hit rates mean what they say)."""
    _stream_cache.clear()
    _stream_cache.hits = 0
    _stream_cache.misses = 0
    _stream_cache.evictions = 0


if hasattr(os, "register_at_fork"):  # absent only on non-posix platforms
    os.register_at_fork(after_in_child=_clear_stream_cache_after_fork)


def stream_cache() -> StreamCache:
    """The process-wide materialized-stream LRU."""
    return _stream_cache


def materialize_shared(stream_key, node: int, stream_factory):
    """Materialize one node's columns, shared across a grid via the LRU.

    ``stream_factory`` is a zero-argument callable producing the
    ``(op, value)`` iterable; it is only invoked on a cache miss.  With
    ``stream_key=None`` (no workload identity available) the cache is
    bypassed entirely.
    """
    if stream_key is None:
        return materialize_stream(stream_factory())
    kind = "numpy" if get_numpy() is not None else "array"
    key = (stream_key, node, kind)
    columns = _stream_cache.get(key)
    if columns is not None:
        return columns
    columns = materialize_stream(stream_factory())
    _stream_cache.put(key, columns)
    return columns


def sync_positions(ops) -> List[int]:
    """Indices of synchronization opcodes in a columnar op stream."""
    numpy = get_numpy()
    if numpy is not None:
        arr = numpy.asarray(ops, dtype=numpy.uint8)
        return [int(i) for i in numpy.flatnonzero(arr >= BARRIER)]
    return [i for i, op in enumerate(ops) if op >= BARRIER]


#: Epoch boundary markers for :func:`epoch_spans`.
EPOCH_END = -1  # stream ran out
EPOCH_TRUNCATED = -2  # max_refs_per_node cut the stream short


def epoch_spans(ops, max_refs: Optional[int] = None) -> List[Tuple[int, int, int]]:
    """Split a columnar op stream into memory-reference epochs.

    Returns ``(start, stop, boundary)`` triples: ``ops[start:stop]`` are
    the memory references of one epoch and ``boundary`` is the index of
    the terminating sync op, :data:`EPOCH_END` when the stream ran out,
    or :data:`EPOCH_TRUNCATED` when ``max_refs`` memory references were
    reached first.  Only memory references count toward ``max_refs``,
    matching the scalar simulator's ``refs_done`` accounting; a sync op
    sitting exactly at the truncation point is *not* executed (the
    simulator finishes the node before consuming it).
    """
    spans: List[Tuple[int, int, int]] = []
    total = len(ops)
    done = 0
    start = 0
    for idx in sync_positions(ops):
        refs_here = idx - start
        if max_refs is not None and done + refs_here >= max_refs:
            spans.append((start, start + (max_refs - done), EPOCH_TRUNCATED))
            return spans
        done += refs_here
        spans.append((start, idx, idx))
        start = idx + 1
    refs_here = total - start
    if max_refs is not None and done + refs_here > max_refs:
        spans.append((start, start + (max_refs - done), EPOCH_TRUNCATED))
    else:
        spans.append((start, total, EPOCH_END))
    return spans


# ---------------------------------------------------------------------------
# RNG state marshalling
# ---------------------------------------------------------------------------


def rng_state_words(rng) -> "array.array":
    """Flatten ``random.Random.getstate()`` into 625 uint32 words.

    The Mersenne Twister state travels to C verbatim (mt[0..623] plus
    the stream index), so the compiled engine continues the exact draw
    sequence with no seeding-algorithm replication.
    """
    version, internal, gauss = rng.getstate()
    if version != 3 or len(internal) != RNG_STATE_WORDS or gauss is not None:
        raise ValueError("unsupported random.Random state shape")
    return array.array("I", internal)


def load_rng_state(rng, words) -> None:
    """Install 625 uint32 words back into a ``random.Random``."""
    state = tuple(words)
    if len(state) != RNG_STATE_WORDS:
        raise ValueError("RNG state must be 625 words")
    rng.setstate((3, state, None))
