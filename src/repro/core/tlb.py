"""TLB and DLB hardware models.

A :class:`TranslationBuffer` caches page-granularity translations.  It is
agnostic about *what* the translation maps to — for the L0-L3 TLBs it
stands for virtual-to-physical page mappings, for V-COMA's DLB it stands
for virtual-page-to-directory-page mappings.  What the paper measures is
the hit/miss behaviour, which only depends on the stream of page numbers,
the capacity, the organization, and the (random) replacement policy.

:class:`TranslationBank` feeds one access stream into many buffers of
different sizes/organizations at once; this is what makes regenerating
Figure 8 and Figure 9 cheap (one hierarchy simulation, all TLB sizes).
"""

from __future__ import annotations

import enum
import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng


class Organization(enum.Enum):
    """TLB/DLB lookup organization."""

    FULLY_ASSOCIATIVE = "fa"
    SET_ASSOCIATIVE = "sa"
    DIRECT_MAPPED = "dm"

    @property
    def suffix(self) -> str:
        """The paper's notation suffix (``/DM`` for direct mapped)."""
        return {"fa": "", "sa": "/SA", "dm": "/DM"}[self.value]


class TranslationBuffer:
    """A TLB or DLB: a cache of page-number translations.

    Parameters
    ----------
    entries:
        Total number of entries (power of two).
    organization:
        Fully associative (paper default), direct mapped, or set
        associative with ``assoc`` ways.
    assoc:
        Ways per set; required iff ``organization`` is set-associative.
    rng:
        Source for random replacement (the paper's policy).  A fresh
        deterministic stream is created when omitted.
    """

    __slots__ = (
        "entries",
        "organization",
        "assoc",
        "sets",
        "_rng",
        "_getrandbits",
        "_assoc_bits",
        "_tags",
        "_where",
        "accesses",
        "misses",
        "trace_hook",
    )

    def __init__(
        self,
        entries: int,
        organization: Organization = Organization.FULLY_ASSOCIATIVE,
        assoc: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigurationError(f"entries={entries} must be a positive power of two")
        if organization is Organization.FULLY_ASSOCIATIVE:
            assoc = entries
        elif organization is Organization.DIRECT_MAPPED:
            assoc = 1
        else:
            if assoc is None or assoc <= 0 or entries % assoc:
                raise ConfigurationError(
                    "set-associative buffers need assoc dividing entries"
                )
        self.entries = entries
        self.organization = organization
        self.assoc = assoc
        self.sets = entries // assoc
        self._rng = rng if rng is not None else make_rng(0, "tlb", entries, organization.value)
        # Victim selection inlines random.Random._randbelow (rejection
        # sampling over bit_length bits), so the drawn stream — and
        # therefore every miss count — is identical to randrange's.
        self._getrandbits = self._rng.getrandbits
        self._assoc_bits = assoc.bit_length()
        # One list of tags per set; position in the list is the way.
        self._tags: List[List[int]] = [[] for _ in range(self.sets)]
        self._where: Dict[int, Tuple[int, int]] = {}
        self.accesses = 0
        self.misses = 0
        #: Optional ``(page, hit)`` observer fired by :meth:`access`
        #: (tracing).  The :class:`TranslationBank` fan-out bypasses it —
        #: sweep banks are measurement instruments, not machine state.
        self.trace_hook = None

    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def valid_entries(self) -> int:
        return len(self._where)

    def _set_of(self, page: int) -> int:
        return page % self.sets

    def contains(self, page: int) -> bool:
        """True iff the page's translation is currently cached (no
        statistics side effects)."""
        return page in self._where

    def access(self, page: int) -> bool:
        """Look up ``page``; on a miss, install it (evicting a random
        victim if the set is full).  Returns True on a hit."""
        self.accesses += 1
        hit = page in self._where
        if not hit:
            self._install(page)
        if self.trace_hook is not None:
            self.trace_hook(page, hit)
        return hit

    def _install(self, page: int) -> None:
        """Miss path: count the miss and install the translation,
        evicting a random victim when the set is full.  Split out so the
        :class:`TranslationBank` fan-out can inline the (dominant) hit
        check without duplicating replacement logic."""
        where = self._where
        self.misses += 1
        set_idx = page % self.sets
        ways = self._tags[set_idx]
        if len(ways) < self.assoc:
            where[page] = (set_idx, len(ways))
            ways.append(page)
        else:
            assoc = self.assoc
            if assoc > 1:
                getrandbits = self._getrandbits
                bits = self._assoc_bits
                way = getrandbits(bits)
                while way >= assoc:
                    way = getrandbits(bits)
            else:
                way = 0
            victim = ways[way]
            del where[victim]
            ways[way] = page
            where[page] = (set_idx, way)

    def probe(self, page: int) -> bool:
        """Like :meth:`access` but without installing on a miss (models a
        lookup that is aborted, e.g. a writeback using a stored physical
        pointer)."""
        self.accesses += 1
        if page in self._where:
            return True
        self.misses += 1
        return False

    def invalidate(self, page: int) -> bool:
        """Remove one translation (TLB shootdown).  Returns True if it
        was present."""
        location = self._where.pop(page, None)
        if location is None:
            return False
        set_idx, way = location
        ways = self._tags[set_idx]
        last = len(ways) - 1
        if way != last:
            moved = ways[last]
            ways[way] = moved
            self._where[moved] = (set_idx, way)
        ways.pop()
        return True

    def flush(self) -> None:
        """Drop every translation (context-switch style flush)."""
        self._tags = [[] for _ in range(self.sets)]
        self._where.clear()

    def resident_pages(self) -> Iterable[int]:
        return self._where.keys()

    def reset_stats(self) -> None:
        self.accesses = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (
            f"TranslationBuffer(entries={self.entries}, "
            f"org={self.organization.value}, misses={self.misses}/{self.accesses})"
        )


class TranslationBank:
    """A set of buffers that all observe the same access stream.

    Used by the sweep experiments: one simulated reference stream is fed
    to every (size, organization) point of Figures 8 and 9
    simultaneously.
    """

    #: Ways used for SET_ASSOCIATIVE bank members (capped by entries).
    SET_ASSOC_WAYS = 4

    __slots__ = ("buffers", "_buffer_list", "_fanout", "accesses")

    def __init__(self, configs: Iterable[Tuple[int, Organization]], seed: int = 0, name: str = "bank") -> None:
        self.buffers: Dict[Tuple[int, Organization], TranslationBuffer] = {}
        for entries, organization in configs:
            key = (entries, organization)
            if key in self.buffers:
                continue
            assoc = None
            if organization is Organization.SET_ASSOCIATIVE:
                assoc = min(self.SET_ASSOC_WAYS, entries)
            self.buffers[key] = TranslationBuffer(
                entries,
                organization,
                assoc=assoc,
                rng=make_rng(seed, name, entries, organization.value),
            )
        self._buffer_list = list(self.buffers.values())
        self._fanout = [(buf._where, buf._install) for buf in self._buffer_list]
        self.accesses = 0

    def access(self, page: int) -> None:
        # Hot path of every sweep simulation: one hierarchy access fans
        # out to every (size, organization) buffer.  The presence dict
        # and the miss-path bound method are pre-resolved, the hit check
        # is inlined (hits dominate), and the per-buffer access count —
        # identical across members by construction — is materialized
        # lazily by _sync_access_counts rather than bumped per access.
        self.accesses += 1
        for where, install in self._fanout:
            if page not in where:
                install(page)

    def _sync_access_counts(self) -> None:
        """Propagate the bank access count to the member buffers (every
        member observes the same stream)."""
        for buffer in self._buffer_list:
            buffer.accesses = self.accesses

    def misses(self, entries: int, organization: Organization = Organization.FULLY_ASSOCIATIVE) -> int:
        return self.buffers[(entries, organization)].misses

    def miss_rate(self, entries: int, organization: Organization = Organization.FULLY_ASSOCIATIVE) -> float:
        self._sync_access_counts()
        return self.buffers[(entries, organization)].miss_rate

    def results(self) -> Dict[Tuple[int, str], int]:
        """Miss counts keyed by ``(entries, organization value)``."""
        self._sync_access_counts()
        return {
            (entries, org.value): buf.misses
            for (entries, org), buf in self.buffers.items()
        }
