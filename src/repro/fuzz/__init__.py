"""Differential fuzzing of the compiled engine against the scalar oracle.

The compiled columnar engine's contract is *bit-identical* results —
not "close", identical down to LRU orders and Mersenne Twister states.
The integration suite pins a curated matrix of cases; this package
generates the rest: random machine geometries, scheme/workload
combinations, and adversarial synchronization patterns (imbalanced
barriers, lock convoys, truncation inside critical sections), each
executed on both engines and compared with the deep machine-state
oracle from :mod:`repro.fuzz.oracle`.

* :mod:`repro.fuzz.strategies` — hypothesis strategies producing
  JSON-serializable :class:`~repro.fuzz.harness.FuzzCase` objects.
* :mod:`repro.fuzz.harness` — the driver: hypothesis-shrunk fuzzing
  (:func:`~repro.fuzz.harness.fuzz`), single-case execution
  (:func:`~repro.fuzz.harness.run_case`), and regression-corpus replay
  (:func:`~repro.fuzz.harness.replay_corpus`).
* ``corpus/`` — the committed regression corpus: every shrunk failing
  case ever found is checked in here and replayed by CI forever.

CLI surface: ``repro fuzz`` (see ``repro fuzz --help``).
"""

from repro.fuzz.harness import (
    DifferentialMismatch,
    FuzzCase,
    FuzzReport,
    default_corpus_dir,
    fuzz,
    replay_corpus,
    run_case,
)

__all__ = [
    "DifferentialMismatch",
    "FuzzCase",
    "FuzzReport",
    "default_corpus_dir",
    "fuzz",
    "replay_corpus",
    "run_case",
]
