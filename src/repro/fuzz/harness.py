"""The differential fuzz driver: execute, shrink, persist, replay.

One :class:`FuzzCase` is a pure-data (JSON-serializable) description of
a paired run; :func:`run_case` executes it on the compiled engine and
the scalar oracle and compares both with the deep-equality oracle.  Any
divergence — different numbers *or* an engine crash — raises
:class:`DifferentialMismatch` carrying the case, which is what lets
hypothesis shrink the failure to a minimal reproducer.

:func:`fuzz` drives hypothesis over :mod:`repro.fuzz.strategies` with a
fixed seed (derandomized CI runs replay identically), and on failure
writes the *shrunk* case into the regression corpus.  The committed
corpus under ``repro/fuzz/corpus`` is replayed by
:func:`replay_corpus` — every divergence ever found stays fixed.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.common.params import MachineParams
from repro.core.schemes import Scheme
from repro.core.tlb import Organization
from repro.fuzz.oracle import diff_paths, literal_machine, machine_state, summary_surface

#: Bumped when the on-disk case schema changes shape.
CASE_FORMAT = 1


class DifferentialMismatch(AssertionError):
    """Compiled and scalar runs of one case diverged (or crashed)."""

    def __init__(self, case: "FuzzCase", diffs: List[str]) -> None:
        self.case = case
        self.diffs = list(diffs)
        preview = "; ".join(self.diffs[:4])
        super().__init__(f"differential mismatch for {case.describe()}: {preview}")


@dataclass
class FuzzCase:
    """One paired compiled-vs-scalar run, as pure data."""

    factor: int
    nodes: int
    page_size: int
    scheme: str
    entries: int
    organization: str
    #: ``{"kind": "named", "name", "intensity"}`` or
    #: ``{"kind": "literal", "pages", "streams": [[[op, value], ...]]}``.
    workload: Dict
    max_refs_per_node: Optional[int] = None

    def describe(self) -> str:
        work = self.workload
        if work.get("kind") == "named":
            label = f"{work['name']}@{work['intensity']}"
        else:
            refs = sum(len(stream) for stream in work.get("streams", ()))
            label = f"literal[{refs} events]"
        return (
            f"{self.scheme}/{label} f{self.factor} n{self.nodes} "
            f"{self.organization}{self.entries}"
            + (f" max_refs={self.max_refs_per_node}" if self.max_refs_per_node else "")
        )

    def to_dict(self) -> Dict:
        payload = asdict(self)
        payload["format"] = CASE_FORMAT
        return payload

    @classmethod
    def from_dict(cls, data: Dict) -> "FuzzCase":
        data = dict(data)
        data.pop("format", None)
        return cls(**data)


@dataclass
class FuzzReport:
    """What one :func:`fuzz` invocation did."""

    cases_run: int = 0
    compiled_cases: int = 0
    failure: Optional[FuzzCase] = None
    error: Optional[str] = None
    saved_to: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.failure is None and self.error is None

    def render(self) -> str:
        if self.ok:
            return (
                f"fuzz: {self.cases_run} cases executed "
                f"({self.compiled_cases} on the compiled engine), no divergence"
            )
        lines = [f"fuzz: DIVERGENCE after {self.cases_run} cases"]
        if self.failure is not None:
            lines.append(f"  shrunk case: {self.failure.describe()}")
        if self.error:
            lines.append(f"  {self.error}")
        if self.saved_to:
            lines.append(f"  saved reproducer: {self.saved_to}")
        return "\n".join(lines)


def default_corpus_dir() -> Path:
    """The committed regression corpus inside the package."""
    return Path(__file__).parent / "corpus"


# ---------------------------------------------------------------------------
# single-case execution
# ---------------------------------------------------------------------------


def _build_params(case: FuzzCase) -> MachineParams:
    return MachineParams.scaled_down(
        factor=case.factor, nodes=case.nodes, page_size=case.page_size
    )


def _paired_results(case: FuzzCase):
    """(fast_result, scalar_result) for one case, freshly built each."""
    scheme = Scheme(case.scheme)
    if case.workload["kind"] == "named":
        from repro.analysis.experiments import run_timing
        from repro.workloads import make_workload

        def one(fast: bool):
            return run_timing(
                _build_params(case),
                scheme,
                make_workload(
                    case.workload["name"], intensity=case.workload["intensity"]
                ),
                case.entries,
                organization=Organization(case.organization),
                max_refs_per_node=case.max_refs_per_node,
                fast=fast,
            )

    else:
        from repro.system.simulator import Simulator

        streams = [
            [tuple(ref) for ref in stream] for stream in case.workload["streams"]
        ]

        def one(fast: bool):
            machine = literal_machine(
                _build_params(case), scheme, streams, pages=case.workload["pages"]
            )
            return Simulator(
                machine, max_refs_per_node=case.max_refs_per_node, fast=fast
            ).run()

    return one(True), one(False)


def run_case(case: FuzzCase) -> Dict[str, object]:
    """Execute one case on both engines; raise on any divergence.

    Returns ``{"backend": ..., "fallback_reason": ...}`` from the fast
    run (an *eligibility* fallback means both runs used the oracle —
    still executed, but it proved nothing about the compiled engine).
    """
    try:
        fast, scalar = _paired_results(case)
    except DifferentialMismatch:
        raise
    except Exception as exc:
        raise DifferentialMismatch(
            case, [f"engine crash: {type(exc).__name__}: {exc}"]
        ) from exc
    diffs = diff_paths(summary_surface(scalar), summary_surface(fast), "summary")
    diffs += diff_paths(
        machine_state(scalar.machine), machine_state(fast.machine), "machine"
    )
    if diffs:
        raise DifferentialMismatch(case, diffs)
    return {"backend": fast.backend, "fallback_reason": fast.fallback_reason}


# ---------------------------------------------------------------------------
# corpus persistence + replay
# ---------------------------------------------------------------------------


def save_case(case: FuzzCase, corpus_dir: Optional[os.PathLike] = None) -> Path:
    """Persist one (shrunk) case as a corpus JSON file, atomically."""
    import hashlib

    from repro.runner.locking import atomic_write_text

    root = Path(corpus_dir) if corpus_dir is not None else default_corpus_dir()
    blob = json.dumps(case.to_dict(), sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode()).hexdigest()[:12]
    path = root / f"case-{digest}.json"
    atomic_write_text(path, json.dumps(case.to_dict(), indent=2, sort_keys=True) + "\n")
    return path


def load_case(path: os.PathLike) -> FuzzCase:
    return FuzzCase.from_dict(json.loads(Path(path).read_text()))


def replay_corpus(corpus_dir: Optional[os.PathLike] = None) -> List[Dict]:
    """Re-run every corpus case; one result row per file.

    Rows are ``{"name", "ok", "detail"}``; an unparsable file is a
    failure (the corpus is part of the contract, not best-effort).
    """
    root = Path(corpus_dir) if corpus_dir is not None else default_corpus_dir()
    rows: List[Dict] = []
    for path in sorted(root.glob("*.json")) if root.is_dir() else []:
        try:
            case = load_case(path)
            info = run_case(case)
        except DifferentialMismatch as exc:
            rows.append({"name": path.name, "ok": False, "detail": str(exc)})
        except (ValueError, KeyError, TypeError) as exc:
            rows.append(
                {"name": path.name, "ok": False, "detail": f"unreadable case: {exc}"}
            )
        else:
            rows.append(
                {"name": path.name, "ok": True, "detail": str(info["backend"])}
            )
    return rows


# ---------------------------------------------------------------------------
# the hypothesis-driven fuzz loop
# ---------------------------------------------------------------------------


def fuzz(
    max_examples: int = 200,
    seed: int = 0,
    corpus_dir: Optional[os.PathLike] = None,
    on_case: Optional[Callable[[FuzzCase, Dict], None]] = None,
) -> FuzzReport:
    """Run the generative differential loop; never raises for findings.

    Hypothesis generates ``max_examples`` cases from a fixed ``seed``
    (identical across machines), shrinks the first divergence to a
    minimal case, and the shrunk reproducer is written into
    ``corpus_dir`` (default: the committed corpus) so the failure is
    pinned forever.  Shrink-phase executions count toward
    ``cases_run``.
    """
    from hypothesis import HealthCheck, given
    from hypothesis import seed as hypothesis_seed
    from hypothesis import settings

    from repro.fuzz.strategies import fuzz_cases

    progress = {"count": 0, "compiled": 0}

    @hypothesis_seed(seed)
    @settings(
        max_examples=max_examples,
        deadline=None,
        database=None,
        derandomize=False,
        suppress_health_check=list(HealthCheck),
    )
    @given(case=fuzz_cases())
    def drive(case: FuzzCase) -> None:
        progress["count"] += 1
        info = run_case(case)
        if info["backend"] == "compiled":
            progress["compiled"] += 1
        if on_case is not None:
            on_case(case, info)

    try:
        drive()
    except DifferentialMismatch as exc:
        saved = save_case(exc.case, corpus_dir)
        return FuzzReport(
            cases_run=progress["count"],
            compiled_cases=progress["compiled"],
            failure=exc.case,
            error="; ".join(exc.diffs[:4]),
            saved_to=str(saved),
        )
    return FuzzReport(
        cases_run=progress["count"], compiled_cases=progress["compiled"]
    )


__all__ = [
    "CASE_FORMAT",
    "DifferentialMismatch",
    "FuzzCase",
    "FuzzReport",
    "default_corpus_dir",
    "fuzz",
    "load_case",
    "replay_corpus",
    "run_case",
    "save_case",
]
