"""The deep-equality oracle for differential runs.

These helpers define what "bit-identical" means for a compiled-vs-scalar
pair: the full :class:`~repro.runner.summary.RunSummary` serialization
(minus the engine tags, which legitimately differ) and a deep image of
the post-run machine — cache/AM sets *in LRU order*, directory entries,
TLB tags and per-TLB RNG states, the engine RNG, latency histograms.
Anything the fast engine fails to copy back shows up as a diff here.

The integration suite (``tests/integration/test_timing_equivalence.py``)
uses the same definitions; they live in the package so the fuzz CLI and
external tooling can import them without a test dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.common.params import MachineParams
from repro.core.schemes import Scheme
from repro.runner.summary import RunSummary
from repro.system.machine import Machine
from repro.system.refs import BARRIER, LOCK, READ, UNLOCK, WRITE
from repro.system.taps import TimingAgent
from repro.workloads import CustomWorkload, SegmentSpec


def summary_surface(result) -> dict:
    """Everything RunSummary serializes, minus the engine tags."""
    payload = RunSummary.from_result(result).to_dict()
    payload.pop("backend", None)
    payload.pop("fallback_reason", None)
    return payload


def sets_image(structure) -> List[list]:
    """Tag/state sets as ordered item lists — dict equality ignores
    insertion order, but here order IS the LRU position."""
    return [list(s.items()) for s in structure._sets]


def machine_state(machine) -> dict:
    """The post-run machine image, deep enough to catch any state the
    fast engine failed to copy back (LRU order included)."""
    engine = machine.engine
    state = {
        "counters": dict(machine.merged_counters().to_dict()),
        "engine_rng": engine._rng.getstate(),
        "translation_accum": engine._translation_accum,
        "active_demand_block": engine.active_demand_block,
        "nodes": [],
        "directories": [],
    }
    for node in machine.nodes:
        state["nodes"].append(
            {
                "flc": (sets_image(node.flc), node.flc.hits, node.flc.misses),
                "slc": (sets_image(node.slc), node.slc.hits, node.slc.misses),
                "read_hist": (
                    dict(node.read_latency._buckets),
                    node.read_latency.count,
                    node.read_latency.total,
                ),
                "write_hist": (
                    dict(node.write_latency._buckets),
                    node.write_latency.count,
                    node.write_latency.total,
                ),
            }
        )
    for n, am in enumerate(engine.ams):
        state["nodes"][n]["am"] = (sets_image(am), am.hits, am.misses)
    for directory in engine.directories:
        state["directories"].append(
            {
                "lookups": directory.lookups,
                "entries": {
                    block: (entry.owner, frozenset(entry.sharers))
                    for block, entry in directory._entries.items()
                },
            }
        )
    agent = machine.agent
    if isinstance(agent, TimingAgent):
        state["tlbs"] = [
            {
                "tags": [list(ways) for ways in agent.buffer(n)._tags],
                "accesses": agent.buffer(n).accesses,
                "misses": agent.buffer(n).misses,
                "rng": agent.buffer(n)._rng.getstate(),
            }
            for n in range(machine.params.nodes)
        ]
    return state


def diff_paths(expected, actual, path: str = "", limit: int = 8) -> List[str]:
    """Human-readable paths where two oracle images diverge (bounded)."""
    out: List[str] = []

    def walk(a, b, where):
        if len(out) >= limit:
            return
        if type(a) is not type(b):
            out.append(f"{where}: type {type(a).__name__} != {type(b).__name__}")
        elif isinstance(a, dict):
            for key in sorted(set(a) | set(b), key=repr):
                if key not in a or key not in b:
                    out.append(f"{where}[{key!r}]: present on one side only")
                else:
                    walk(a[key], b[key], f"{where}[{key!r}]")
        elif isinstance(a, (list, tuple)):
            if len(a) != len(b):
                out.append(f"{where}: length {len(a)} != {len(b)}")
            else:
                for i, (x, y) in enumerate(zip(a, b)):
                    walk(x, y, f"{where}[{i}]")
        elif a != b:
            out.append(f"{where}: {a!r} != {b!r}")

    walk(expected, actual, path or "$")
    return out


SYNC_OPS: Tuple[int, ...] = (BARRIER, LOCK, UNLOCK)
DATA_OPS: Tuple[int, ...] = (READ, WRITE)


def literal_machine(
    params: MachineParams,
    scheme: Scheme,
    streams: Sequence[Sequence[Tuple[int, int]]],
    pages: int = 32,
) -> Machine:
    """A machine over hand-built per-node streams (offsets into one
    ``data`` segment; barrier ids pass through untranslated)."""

    def factory(node, ctx):
        base = ctx.segment("data").base
        for op, value in streams[node]:
            if op in (READ, WRITE, LOCK, UNLOCK):
                yield op, base + value
            else:
                yield op, value

    workload = CustomWorkload(
        [SegmentSpec("data", pages * params.page_size)], factory, name="literal"
    )
    return Machine(params, scheme, workload)


__all__ = [
    "DATA_OPS",
    "SYNC_OPS",
    "diff_paths",
    "literal_machine",
    "machine_state",
    "sets_image",
    "summary_surface",
]
