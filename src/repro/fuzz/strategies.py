"""Hypothesis strategies generating differential fuzz cases.

Cases are deliberately tiny (factor-64 machines, 2-4 nodes, truncated
reference streams) so a 200-example CI budget finishes in seconds while
still sweeping the axes that have historically hidden divergence:
scheme x TLB organization x geometry, and the synchronization patterns
the compiled engine hands back to Python sync policy — imbalanced
barriers, lock convoys, nodes truncated inside critical sections.

Generated synchronization is *valid by construction* (the oracle run
must not deadlock, or the comparison proves nothing):

* every node observes barrier ids in ascending order, truncation only
  ever drops a suffix (a finished node satisfies all later barriers);
* lock/unlock pairs never span a barrier, so a lock holder always
  makes progress to its unlock (``max_refs`` truncation mid-section is
  allowed — process exit releases held locks identically on both
  engines).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.schemes import SCHEME_ORDER
from repro.fuzz.harness import FuzzCase
from repro.system.refs import BARRIER, LOCK, READ, UNLOCK, WRITE

#: Named workloads cheap enough for per-case double (fast+scalar) runs.
NAMED_WORKLOADS = ("radix", "raytrace", "fft")

#: Every generated offset is a multiple of this (word granularity keeps
#: streams hitting shared cache blocks often enough to exercise the
#: coherence protocol instead of sliding past it).
SLOT_BYTES = 64


@st.composite
def _data_refs(draw, slots: int, max_len: int):
    """A burst of plain READ/WRITE references over ``slots`` offsets."""
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from([READ, WRITE]),
                st.integers(0, slots - 1).map(lambda s: s * SLOT_BYTES),
            ),
            max_size=max_len,
        )
    )


@st.composite
def _segment(draw, slots: int, lock_words):
    """One barrier-free stream segment: data bursts, optionally with
    non-nested critical sections over the shared lock words."""
    stream = list(draw(_data_refs(slots, 12)))
    if lock_words:
        for _ in range(draw(st.integers(0, 2))):
            word = draw(st.sampled_from(lock_words))
            stream.append((LOCK, word))
            stream.extend(draw(_data_refs(slots, 4)))
            stream.append((UNLOCK, word))
        stream.extend(draw(_data_refs(slots, 4)))
    return stream


@st.composite
def _literal_workload(draw, nodes: int):
    pages = draw(st.sampled_from([16, 32]))
    slots = pages * 4  # offsets stay well inside the data segment
    n_barriers = draw(st.integers(0, 3))
    lock_words = [
        slot * SLOT_BYTES
        for slot in draw(
            st.lists(st.integers(0, slots - 1), max_size=2, unique=True)
        )
    ]
    streams = []
    for _ in range(nodes):
        # Barriers passed before this node's stream ends: truncating to
        # a prefix is always deadlock-free.
        passed = draw(st.integers(0, n_barriers))
        stream = []
        for barrier in range(passed + 1):
            stream.extend(draw(_segment(slots, lock_words)))
            if barrier < passed:
                stream.append((BARRIER, barrier))
        streams.append(stream)
    return {
        "kind": "literal",
        "pages": pages,
        "streams": [[list(ref) for ref in stream] for stream in streams],
    }


@st.composite
def _named_workload(draw):
    return {
        "kind": "named",
        "name": draw(st.sampled_from(NAMED_WORKLOADS)),
        "intensity": round(draw(st.floats(0.1, 0.6)), 2),
    }


@st.composite
def fuzz_cases(draw):
    """A complete differential case: machine geometry, scheme, TLB
    shape, workload, and optional per-node truncation."""
    nodes = draw(st.sampled_from([2, 4]))  # node counts: powers of two
    named = draw(st.booleans())
    if named:
        workload = draw(_named_workload())
        # Named streams are long: always truncate to bound runtime.
        max_refs = draw(st.integers(50, 400))
    else:
        workload = draw(_literal_workload(nodes))
        max_refs = draw(st.one_of(st.none(), st.integers(5, 60)))
    return FuzzCase(
        factor=draw(st.sampled_from([32, 64])),
        nodes=nodes,
        page_size=256,
        scheme=draw(st.sampled_from([s.value for s in SCHEME_ORDER])),
        entries=draw(st.sampled_from([4, 8])),
        # "sa" needs an explicit assoc TimingAgent doesn't plumb through.
        organization=draw(st.sampled_from(["fa", "dm"])),
        workload=workload,
        max_refs_per_node=max_refs,
    )


__all__ = ["NAMED_WORKLOADS", "SLOT_BYTES", "fuzz_cases"]
