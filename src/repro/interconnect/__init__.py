"""Interconnect substrate: the paper's 8-bit, 100 MHz crossbar.

Message costs follow Section 5.1: an 8-byte request takes 16 processor
cycles and a message carrying an attraction-memory block takes 272.  The
:class:`Crossbar` also offers optional output-port serialization so that
heavily-targeted nodes see queueing (off by default — the paper's model
is latency-only).
"""

from repro.interconnect.crossbar import Crossbar
from repro.interconnect.message import Message, MessageKind
from repro.interconnect.topology import (
    CrossbarTopology,
    Mesh2DTopology,
    RingTopology,
    TOPOLOGIES,
    Topology,
    make_topology,
)

__all__ = [
    "Crossbar",
    "CrossbarTopology",
    "Mesh2DTopology",
    "Message",
    "MessageKind",
    "RingTopology",
    "TOPOLOGIES",
    "Topology",
    "make_topology",
]
