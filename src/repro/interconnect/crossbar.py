"""Crossbar timing model (paper Section 5.1).

The network is an 8-bit-wide crossbar clocked at half the processor
frequency.  With the paper's parameters an 8-byte request costs 16
processor cycles and a 128-byte-block message costs 272; both numbers are
derived from the geometry in :class:`~repro.common.params.MachineParams`
so scaled configurations stay self-consistent.

Two operating modes:

* **latency-only** (default, the paper's model): a transfer between
  distinct nodes costs its size-class latency; node-local transfers are
  free.
* **port contention** (optional): each node's input port serializes
  deliveries — a transfer completes no earlier than the port is free,
  and occupies it for the transfer duration.
"""

from __future__ import annotations

from typing import List

from typing import Optional

from repro.common.params import MachineParams
from repro.common.stats import Counters
from repro.interconnect.message import MessageKind
from repro.interconnect.topology import Topology


class Crossbar:
    """Charges message latencies and counts traffic.

    With a :class:`~repro.interconnect.topology.Topology` attached,
    every hop beyond the first adds ``router_latency_cycles`` (the
    paper's crossbar is the one-hop special case).
    """

    def __init__(
        self,
        params: MachineParams,
        contention: bool = False,
        topology: Optional[Topology] = None,
    ) -> None:
        self.params = params
        self.contention = contention
        self.topology = topology
        self.counters = Counters()
        self._port_free_at: List[int] = [0] * params.nodes

    def cycles_for(self, kind: MessageKind, src: int = 0, dst: int = 1) -> int:
        """Latency of one message in processor cycles (0 if node-local
        — callers skip charging for local hops)."""
        if kind.carries_block:
            base = self.params.block_msg_cycles
        else:
            base = self.params.request_msg_cycles
        if self.topology is not None and src != dst:
            extra_hops = self.topology.hops(src, dst) - 1
            base += extra_hops * self.params.router_latency_cycles
        return base

    def transfer(self, kind: MessageKind, src: int, dst: int, now: int) -> int:
        """Deliver one message starting at processor cycle ``now``.

        Returns the completion time.  Local (``src == dst``) transfers
        are free and bypass the port model.
        """
        self.counters.add(f"msg_{kind.value}")
        if src == dst:
            self.counters.add("msg_local")
            return now
        cycles = self.cycles_for(kind, src, dst)
        self.counters.add("msg_remote")
        self.counters.add("network_cycles", cycles)
        if kind.carries_block:
            payload = self.params.am_block + self.params.message_header_bytes
        else:
            payload = self.params.request_payload_bytes
        self.counters.add("payload_bytes", payload)
        if not self.contention:
            return now + cycles
        start = max(now, self._port_free_at[dst])
        done = start + cycles
        self._port_free_at[dst] = done
        if start > now:
            self.counters.add("contention_cycles", start - now)
        return done

    def traffic_bytes(self) -> int:
        """Total payload bytes moved between distinct nodes."""
        return self.counters["payload_bytes"]
