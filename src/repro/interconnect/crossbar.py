"""Crossbar timing model (paper Section 5.1).

The network is an 8-bit-wide crossbar clocked at half the processor
frequency.  With the paper's parameters an 8-byte request costs 16
processor cycles and a 128-byte-block message costs 272; both numbers are
derived from the geometry in :class:`~repro.common.params.MachineParams`
so scaled configurations stay self-consistent.

Two operating modes:

* **latency-only** (default, the paper's model): a transfer between
  distinct nodes costs its size-class latency; node-local transfers are
  free.
* **port contention** (optional): each node's input port serializes
  deliveries — a transfer completes no earlier than the port is free,
  and occupies it for the transfer duration.
"""

from __future__ import annotations

from typing import List

from typing import Optional

from repro.common.params import MachineParams
from repro.common.stats import Counters
from repro.interconnect.message import KIND_VALUES, MessageKind
from repro.interconnect.topology import Topology


class Crossbar:
    """Charges message latencies and counts traffic.

    With a :class:`~repro.interconnect.topology.Topology` attached,
    every hop beyond the first adds ``router_latency_cycles`` (the
    paper's crossbar is the one-hop special case).
    """

    def __init__(
        self,
        params: MachineParams,
        contention: bool = False,
        topology: Optional[Topology] = None,
    ) -> None:
        self.params = params
        self.contention = contention
        self.topology = topology
        self.counters = Counters()
        self._port_free_at: List[int] = [0] * params.nodes
        # Per-kind (counter name, base cycles, payload bytes), fixed by
        # the geometry — transfer() is on every message's path and must
        # not rebuild strings or re-derive sizes.  Indexed by
        # ``kind.index`` (plain list lookup, no Enum hashing).
        self._kind_info = []
        for kind in MessageKind:
            if kind.carries_block:
                base = params.block_msg_cycles
                payload = params.am_block + params.message_header_bytes
            else:
                base = params.request_msg_cycles
                payload = params.request_payload_bytes
            self._kind_info.append((f"msg_{kind.value}", base, payload))
        self._counter_values = self.counters._values
        self._trace = None
        # Packed "msg" emitter, hoisted once when a tracer attaches so
        # transfer() pays one attribute test when tracing is off and no
        # per-event dict when it is on.
        self._emit_msg = None

    @property
    def trace(self):
        """Optional :class:`~repro.obs.trace.Tracer` (set by the
        machine); every transfer becomes a "msg" event when attached."""
        return self._trace

    @trace.setter
    def trace(self, tracer) -> None:
        self._trace = tracer
        if tracer is None:
            self._emit_msg = None
        else:
            self._emit_msg = tracer.event_emitter(
                "msg",
                ("msg", "src", "dst", "cycles"),
                enums={"msg": KIND_VALUES},
            )

    def cycles_for(self, kind: MessageKind, src: int = 0, dst: int = 1) -> int:
        """Latency of one message in processor cycles (0 if node-local
        — callers skip charging for local hops)."""
        if kind.carries_block:
            base = self.params.block_msg_cycles
        else:
            base = self.params.request_msg_cycles
        if self.topology is not None and src != dst:
            extra_hops = self.topology.hops(src, dst) - 1
            base += extra_hops * self.params.router_latency_cycles
        return base

    def transfer(self, kind: MessageKind, src: int, dst: int, now: int) -> int:
        """Deliver one message starting at processor cycle ``now``.

        Returns the completion time.  Local (``src == dst``) transfers
        are free and bypass the port model.
        """
        values = self._counter_values
        kind_ix = kind.index
        name, cycles, payload = self._kind_info[kind_ix]
        values[name] = values.get(name, 0) + 1
        emit = self._emit_msg
        if src == dst:
            values["msg_local"] = values.get("msg_local", 0) + 1
            if emit is not None:
                emit(now, kind_ix, src, dst, 0)
            return now
        if self.topology is not None:
            extra_hops = self.topology.hops(src, dst) - 1
            cycles += extra_hops * self.params.router_latency_cycles
        values["msg_remote"] = values.get("msg_remote", 0) + 1
        values["network_cycles"] = values.get("network_cycles", 0) + cycles
        values["payload_bytes"] = values.get("payload_bytes", 0) + payload
        if emit is not None:
            # The charged latency rides on the event so a trace alone
            # reconciles against the network_cycles counter.
            emit(now, kind_ix, src, dst, cycles)
        if not self.contention:
            return now + cycles
        start = max(now, self._port_free_at[dst])
        done = start + cycles
        self._port_free_at[dst] = done
        if start > now:
            values["contention_cycles"] = values.get("contention_cycles", 0) + (start - now)
        return done

    def traffic_bytes(self) -> int:
        """Total payload bytes moved between distinct nodes."""
        return self.counters["payload_bytes"]
