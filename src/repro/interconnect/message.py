"""Protocol message vocabulary.

Messages are descriptive records: the simulator charges their latency
through :class:`~repro.interconnect.crossbar.Crossbar` and counts them in
per-kind statistics; no queues of live message objects are kept (the
trace-interleaved engine processes each transaction to completion).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MessageKind(enum.Enum):
    """Kinds of protocol messages, grouped by payload size.

    ``REQUEST``-sized messages carry an address (8 bytes on the wire);
    ``BLOCK``-sized messages carry an attraction-memory block.
    """

    READ_REQUEST = "read_request"
    WRITE_REQUEST = "write_request"
    UPGRADE_REQUEST = "upgrade_request"
    FORWARD = "forward"
    INVALIDATE = "invalidate"
    ACK = "ack"
    SHARER_DROP = "sharer_drop"
    BLOCK_REPLY = "block_reply"
    INJECT = "inject"
    INJECT_FORWARD = "inject_forward"

    @property
    def carries_block(self) -> bool:
        return self in _BLOCK_KINDS


#: Block-payload kinds, as a set so ``carries_block`` is one hash probe
#: (it runs once or twice per simulated message).
_BLOCK_KINDS = frozenset(
    (MessageKind.BLOCK_REPLY, MessageKind.INJECT, MessageKind.INJECT_FORWARD)
)

# Dense per-kind index for table lookups on the transfer hot path:
# list indexing via ``kind.index`` skips Enum.__hash__ (a Python-level
# method) on every simulated message.
for _i, _kind in enumerate(MessageKind):
    _kind.index = _i

#: Wire names in ``index`` order (``KIND_VALUES[kind.index] == kind.value``).
KIND_VALUES = tuple(kind.value for kind in MessageKind)


@dataclass(frozen=True)
class Message:
    """One protocol message (for tracing and tests)."""

    kind: MessageKind
    src: int
    dst: int
    addr: int

    @property
    def is_local(self) -> bool:
        return self.src == self.dst
