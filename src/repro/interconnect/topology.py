"""Interconnect topologies.

The paper's machine uses a crossbar (every pair one hop).  For
scalability exploration the library also models hop-count-based ring and
2-D mesh topologies: a message pays the base wire cost plus a per-hop
router charge.  Topologies only affect *latency*; bandwidth contention
stays in :class:`~repro.interconnect.crossbar.Crossbar`'s port model.
"""

from __future__ import annotations

import abc
import math

from repro.common.errors import ConfigurationError


class Topology(abc.ABC):
    """Distance model between nodes."""

    name = "abstract"

    def __init__(self, nodes: int) -> None:
        if nodes <= 0:
            raise ConfigurationError("topology needs a positive node count")
        self.nodes = nodes

    @abc.abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Router-to-router hops between two distinct nodes (>= 1)."""

    def diameter(self) -> int:
        return max(
            self.hops(0, dst) for dst in range(1, self.nodes)
        ) if self.nodes > 1 else 0

    def average_distance(self) -> float:
        if self.nodes == 1:
            return 0.0
        total = sum(
            self.hops(s, d)
            for s in range(self.nodes)
            for d in range(self.nodes)
            if s != d
        )
        return total / (self.nodes * (self.nodes - 1))

    def _check(self, src: int, dst: int) -> None:
        if not (0 <= src < self.nodes and 0 <= dst < self.nodes):
            raise ConfigurationError(f"node out of range: {src}->{dst}")


class CrossbarTopology(Topology):
    """Every pair of distinct nodes is one hop apart (the paper's
    network)."""

    name = "crossbar"

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        return 0 if src == dst else 1


class RingTopology(Topology):
    """Bidirectional ring; messages take the shorter way round."""

    name = "ring"

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        if src == dst:
            return 0
        clockwise = (dst - src) % self.nodes
        return min(clockwise, self.nodes - clockwise)


class Mesh2DTopology(Topology):
    """2-D mesh with X-Y routing; nodes laid out row-major on the most
    square grid whose area is the node count."""

    name = "mesh2d"

    def __init__(self, nodes: int) -> None:
        super().__init__(nodes)
        width = int(math.isqrt(nodes))
        while nodes % width:
            width -= 1
        self.width = width
        self.height = nodes // width

    def _coords(self, node: int):
        return node % self.width, node // self.width

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        if src == dst:
            return 0
        sx, sy = self._coords(src)
        dx, dy = self._coords(dst)
        return abs(sx - dx) + abs(sy - dy)


TOPOLOGIES = {
    "crossbar": CrossbarTopology,
    "ring": RingTopology,
    "mesh2d": Mesh2DTopology,
}


def make_topology(name: str, nodes: int) -> Topology:
    try:
        factory = TOPOLOGIES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown topology {name!r}; choose from {sorted(TOPOLOGIES)}"
        ) from None
    return factory(nodes)
