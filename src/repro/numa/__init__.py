"""CC-NUMA comparison substrate (paper Section 2, Figure 1).

Before proposing V-COMA the paper examines TLB placement in a
conventional CC-NUMA: L0/L1/L2 per-node TLBs or a SHARED-TLB at the
home memory.  Its argument for moving to COMA is that the SHARED-TLB
placement is only attractive when data can migrate and replicate:

    "In CC-NUMAs the sharing of TLBs is not efficient because of the
    lack of data migration and replication. […] Because page placement
    cannot be optimized for locality, capacity misses are remote most
    of the time resulting in poor performance for applications whose
    significant working set does not fit in the second-level cache."

This package implements that baseline machine: fixed home memories (no
attraction memory), an MSI write-invalidate protocol over the home
directories, and the same cache/translation plumbing as the COMA
machine, so the two architectures run identical workloads and the
paper's motivating comparison (``benchmarks/bench_numa_motivation.py``)
is measurable.

Scheme naming: :data:`SHARED_TLB` aliases ``Scheme.V_COMA`` — both mean
"virtual caches, translation at the home selected by the virtual
address"; the surrounding machine (COMA vs NUMA) decides what that home
does with the request.
"""

from repro.core.schemes import Scheme
from repro.numa.protocol import NumaEngine
from repro.numa.machine import NumaMachine

#: Paper Figure 1's memory-side placement: the home node translates.
SHARED_TLB = Scheme.V_COMA

__all__ = ["NumaEngine", "NumaMachine", "SHARED_TLB"]
