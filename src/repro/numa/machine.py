"""CC-NUMA machine assembly.

Mirrors :class:`~repro.system.machine.Machine` but with fixed home
memories instead of attraction memories: preload allocates frames and
page-table entries only (data "lives" at its home; there are no master
copies to place and no global-set pressure).  The same
:class:`~repro.system.node.Node`, translation agents, and
:class:`~repro.system.simulator.Simulator` drive it, so COMA-vs-NUMA
comparisons hold everything else equal.

Scheme flags mean the same as in the COMA machine; ``Scheme.V_COMA``
here *is* the paper's SHARED-TLB: virtual caches, the home selected by
the virtual address, translation performed at the home on every memory
access.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.address import AddressLayout
from repro.common.params import MachineParams
from repro.common.rng import make_rng
from repro.common.stats import Counters
from repro.coma.protocol import TranslationAgent
from repro.core.schemes import Scheme
from repro.interconnect.crossbar import Crossbar
from repro.interconnect.topology import make_topology
from repro.numa.protocol import NumaEngine
from repro.system.node import Node
from repro.vm.frames import FrameAllocator
from repro.vm.page_table import HomePageTable, PageTableEntry
from repro.vm.pressure import PressureTracker
from repro.vm.segments import SegmentedAddressSpace
from repro.workloads.base import Workload, WorkloadContext


class NumaMachine:
    """A CC-NUMA multiprocessor configured for one translation scheme."""

    def __init__(
        self,
        params: MachineParams,
        scheme: Scheme,
        workload: Workload,
        agent: Optional[TranslationAgent] = None,
        contention: bool = False,
        topology: Optional[str] = None,
        relaxed_writes: bool = False,
    ) -> None:
        self.params = params
        self.scheme = scheme
        self.workload = workload
        self.layout = AddressLayout.from_params(params)
        self.agent = agent if agent is not None else TranslationAgent()
        topo = make_topology(topology, params.nodes) if topology else None
        self.crossbar = Crossbar(params, contention=contention, topology=topo)
        self.counters = Counters()

        self._virtual_home = scheme.uses_virtual_am
        self.page_map: Dict[int, int] = {}
        self.reverse_map: Dict[int, int] = {}
        self.frames: Optional[FrameAllocator] = None
        if not self._virtual_home:
            self.frames = FrameAllocator(self.layout, params.pages_per_am)
        self.page_tables: List[HomePageTable] = [
            HomePageTable(n, self.layout.global_page_sets) for n in range(params.nodes)
        ]
        # NUMA home memories are direct-mapped DRAM: no global-set
        # competition exists.  The tracker stays for interface parity
        # (RunResult.pressure_profile) and reports flat zero.
        self.pressure = PressureTracker(
            self.layout.global_page_sets, params.page_slots_per_global_set
        )

        self.engine = NumaEngine(
            params,
            self.layout,
            self.crossbar,
            agent=self.agent,
            inclusion_hook=self._inclusion_hook,
            rng=make_rng(params.seed, "numa"),
        )

        self.space = SegmentedAddressSpace(params.page_size)
        segments = {}
        for spec in workload.segment_specs(params):
            segments[spec.name] = self.space.allocate(
                spec.name,
                spec.size,
                kind=spec.kind,
                owner=spec.owner,
                alignment=spec.alignment,
                offset=spec.offset,
            )
        self.ctx = WorkloadContext(
            params, self.layout, segments, params.seed, workload.name
        )

        self.nodes: List[Node] = [
            Node(
                n,
                params,
                scheme,
                self.engine,
                self.agent,
                to_physical=self._to_physical,
                to_virtual=self._to_virtual,
                relaxed_writes=relaxed_writes,
            )
            for n in range(params.nodes)
        ]

        self._preload()

    # ------------------------------------------------------------------
    def _to_physical(self, vaddr: int) -> int:
        page_bits = self.layout.page_bits
        pfn = self.page_map[vaddr >> page_bits]
        return (pfn << page_bits) | (vaddr & (self.params.page_size - 1))

    def _to_virtual(self, paddr: int) -> int:
        page_bits = self.layout.page_bits
        vpn = self.reverse_map[paddr >> page_bits]
        return (vpn << page_bits) | (paddr & (self.params.page_size - 1))

    def _preload(self) -> None:
        """Map every page; with physical addressing, frames are handed
        out round robin (the OS's page placement — the thing the paper
        notes cannot chase locality in a CC-NUMA)."""
        layout = self.layout
        for segment in self.space:
            for vpn in segment.pages(self.params.page_size):
                home = layout.home_node_of_vpn(vpn)
                if self._virtual_home:
                    self.page_tables[home].insert(PageTableEntry(vpn, vpn))
                else:
                    pfn = self.frames.allocate(vpn)
                    self.page_map[vpn] = pfn
                    self.reverse_map[pfn] = vpn
                    self.page_tables[home].insert(PageTableEntry(vpn, pfn))
                self.counters.add("pages_preloaded")

    # ------------------------------------------------------------------
    def _inclusion_hook(self, node: int, proto_block: int, action: str) -> None:
        self.nodes[node].on_inclusion(proto_block, action)

    def node_stream(self, node: int):
        return self.workload.node_stream(node, self.ctx)

    def merged_counters(self) -> Counters:
        merged = self.counters.merge(self.engine.counters).merge(self.crossbar.counters)
        for node in self.nodes:
            merged = merged.merge(node.counters)
        return merged

    def __repr__(self) -> str:
        return (
            f"NumaMachine({self.scheme.value}, {self.workload.name}, "
            f"{self.params.nodes} nodes)"
        )
