"""MSI write-invalidate coherence for the CC-NUMA baseline.

Unlike the COMA-F engine there are no attraction memories: every block
has a *fixed* home memory, caches (the nodes' SLCs) hold the only
movable copies, and the home directory tracks which caches hold a block
and whether one of them owns it dirty.

The engine exposes the same surface the :class:`~repro.system.node.Node`
expects from the COMA engine (``fetch`` / ``upgrade_for_write`` /
``writeback`` / ``ams[node]`` ownership views / ``check_invariants``),
so the identical node and simulator code drives both architectures.

Timing (per paper Section 5.1 constants): a memory access costs the
attraction-memory latency (74 cycles — same DRAM), request/block
messages 16/272 cycles, and the directory ``directory_lookup_latency``;
the home-side :class:`~repro.coma.protocol.TranslationAgent` hook fires
on every home lookup, which is exactly the SHARED-TLB stream of paper
Figure 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.common.address import AddressLayout
from repro.common.errors import ProtocolError
from repro.common.params import MachineParams
from repro.common.stats import Counters
from repro.coma.protocol import AccessOutcome, InclusionHook, TranslationAgent
from repro.interconnect.crossbar import Crossbar
from repro.interconnect.message import MessageKind


@dataclass
class CacheLineEntry:
    """Directory entry: which caches hold the block, who owns it dirty."""

    owner: Optional[int] = None  # node with the dirty/exclusive copy
    sharers: Set[int] = field(default_factory=set)

    @property
    def holders(self) -> Set[int]:
        if self.owner is None:
            return set(self.sharers)
        return self.sharers | {self.owner}


class _OwnershipView:
    """Node-side view of coherence state, shaped like an attraction
    memory for the bits :class:`~repro.system.node.Node` reads."""

    class _State:
        __slots__ = ("writable",)

        def __init__(self, writable: bool) -> None:
            self.writable = writable

    def __init__(self, engine: "NumaEngine", node: int) -> None:
        self._engine = engine
        self._node = node

    def state_of(self, addr: int) -> "_OwnershipView._State":
        block = self._engine.layout.block_base(addr)
        entry = self._engine._entries.get(block)
        writable = entry is not None and entry.owner == self._node
        return self._State(writable)


class NumaEngine:
    """Home-memory MSI coherence over fixed per-node memories."""

    def __init__(
        self,
        params: MachineParams,
        layout: AddressLayout,
        crossbar: Crossbar,
        agent: Optional[TranslationAgent] = None,
        inclusion_hook: Optional[InclusionHook] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.params = params
        self.layout = layout
        self.crossbar = crossbar
        self.agent = agent if agent is not None else TranslationAgent()
        self.inclusion_hook = inclusion_hook or (lambda node, block, action: None)
        self._entries: Dict[int, CacheLineEntry] = {}
        self.counters = Counters()
        self._translation_accum = 0
        self.ams: List[_OwnershipView] = [
            _OwnershipView(self, n) for n in range(params.nodes)
        ]

    # ------------------------------------------------------------------
    def home_of(self, addr: int) -> int:
        return self.layout.home_node(addr)

    def _entry(self, block: int) -> CacheLineEntry:
        entry = self._entries.get(block)
        if entry is None:
            entry = CacheLineEntry()
            self._entries[block] = entry
        return entry

    def _home_lookup(self, home: int, block: int, for_ownership: bool, requester: int) -> int:
        penalty = self.agent.at_home(
            home, self.layout.vpn(block), for_ownership, False, requester=requester
        )
        self._translation_accum += penalty
        return self.params.directory_lookup_latency + penalty

    # ------------------------------------------------------------------
    # demand path (Node-compatible surface)
    # ------------------------------------------------------------------
    def fetch(self, node: int, addr: int, is_write: bool, now: int) -> AccessOutcome:
        """SLC miss: get the block from its home memory (or the dirty
        owner's cache via the home)."""
        block = self.layout.block_base(addr)
        self._translation_accum = 0
        home = self.home_of(block)
        penalty = self.agent.at_l3(node, self.layout.vpn(block))
        self._translation_accum += penalty
        t = now + penalty
        remote = home != node
        kind = MessageKind.WRITE_REQUEST if is_write else MessageKind.READ_REQUEST
        t = self.crossbar.transfer(kind, node, home, t)
        t += self._home_lookup(home, block, is_write, node)
        entry = self._entry(block)

        if entry.owner is not None and entry.owner != node:
            # Dirty in another cache: home forwards; owner supplies and
            # writes back / downgrades.
            owner = entry.owner
            remote = True
            t = self.crossbar.transfer(MessageKind.FORWARD, home, owner, t)
            if is_write:
                self.inclusion_hook(owner, block, "invalidate")
                entry.owner = None
            else:
                self.inclusion_hook(owner, block, "downgrade")
                entry.sharers.add(owner)
                entry.owner = None
            t = self.crossbar.transfer(MessageKind.BLOCK_REPLY, owner, node, t)
            self.counters.add("cache_to_cache")
        else:
            # Supplied by home memory.
            t += self.params.am_hit_latency
            t = self.crossbar.transfer(MessageKind.BLOCK_REPLY, home, node, t)
            self.counters.add("memory_supplies")

        if is_write:
            t = self._invalidate_sharers(entry, block, home, exclude=node, start=t)
            entry.owner = node
            entry.sharers.clear()
            self.counters.add("remote_writes" if remote else "local_writes")
        else:
            if entry.owner != node:
                entry.sharers.add(node)
            self.counters.add("remote_reads" if remote else "local_reads")
        cycles = t - now
        return AccessOutcome(cycles, home != node, self._translation_accum)

    def upgrade_for_write(self, node: int, addr: int, now: int) -> AccessOutcome:
        """Store hit on a clean-shared SLC line: gain ownership."""
        block = self.layout.block_base(addr)
        self._translation_accum = 0
        home = self.home_of(block)
        entry = self._entry(block)
        if entry.owner == node:
            return AccessOutcome(0, False)
        t = self.crossbar.transfer(MessageKind.UPGRADE_REQUEST, node, home, now)
        t += self._home_lookup(home, block, True, node)
        if entry.owner is not None and entry.owner != node:
            self.inclusion_hook(entry.owner, block, "invalidate")
            entry.owner = None
        t = self._invalidate_sharers(entry, block, home, exclude=node, start=t)
        t = self.crossbar.transfer(MessageKind.ACK, home, node, t)
        entry.owner = node
        entry.sharers.clear()
        self.counters.add("upgrades")
        return AccessOutcome(t - now, home != node, self._translation_accum)

    def writeback(self, node: int, addr: int, now: int) -> None:
        """Dirty SLC eviction: the line returns to its home memory (no
        processor stall; write buffers)."""
        block = self.layout.block_base(addr)
        home = self.home_of(block)
        entry = self._entry(block)
        if entry.owner is not None and entry.owner != node:
            # Another node's ownership would have invalidated our SLC
            # copy first; a dirty line here is a protocol bug.
            raise ProtocolError(
                f"node {node}: NUMA writeback of {block:#x} owned by {entry.owner}"
            )
        # owner may already be None: several SLC lines live inside one
        # coherence block and the first writeback cleared it.
        entry.owner = None
        self.crossbar.transfer(MessageKind.INJECT, node, home, now)
        self.counters.add("writebacks_to_memory")

    def drop_clean(self, node: int, addr: int) -> None:
        """Silent clean eviction bookkeeping (called by the machine's
        inclusion plumbing when an SLC line leaves)."""
        entry = self._entries.get(self.layout.block_base(addr))
        if entry is not None:
            entry.sharers.discard(node)

    # ------------------------------------------------------------------
    def _invalidate_sharers(self, entry: CacheLineEntry, block: int, home: int, exclude: int, start: int) -> int:
        sharers = [s for s in entry.sharers if s != exclude]
        done = start
        for sharer in sharers:
            arrive = self.crossbar.transfer(MessageKind.INVALIDATE, home, sharer, start)
            self.inclusion_hook(sharer, block, "invalidate")
            ack = self.crossbar.transfer(MessageKind.ACK, sharer, home, arrive)
            done = max(done, ack)
        entry.sharers.difference_update(sharers)
        self.counters.add("invalidations", len(sharers))
        return done

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Directory self-consistency (owner never also a sharer)."""
        for block, entry in self._entries.items():
            if entry.owner is not None and entry.owner in entry.sharers:
                raise ProtocolError(
                    f"NUMA block {block:#x}: owner {entry.owner} also a sharer"
                )
