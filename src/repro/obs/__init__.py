"""Observability: metrics registry, protocol-event tracing, exporters.

Three pieces, all optional and off by default:

* :mod:`repro.obs.metrics` — a unified registry of labeled counters,
  gauges, and power-of-two-bucketed histograms with commutative,
  associative merge semantics (safe to reduce across worker processes
  in any order).
* :mod:`repro.obs.trace` — structured span/event tracing.  A
  :class:`Tracer` attached to a :class:`~repro.system.machine.Machine`
  records one span per protocol transaction (with parent ids, node,
  latency, outcome) into a bounded ring buffer and, optionally, a
  streaming JSONL file.  With no tracer attached the instrumented hot
  paths pay a single ``is None`` check.
* :mod:`repro.obs.export` — OpenMetrics-style text exposition and JSON
  export of a registry, plus ``registry_from_summary`` which turns any
  finished run into a metrics registry (the golden-snapshot surface).

See ``docs/observability.md`` for the trace schema and workflows.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PhaseTimer,
)
from repro.obs.trace import Tracer, read_trace
from repro.obs.profile import (
    CostAttribution,
    ReconciliationError,
    TraceProfile,
    attribute_costs,
    profile_trace,
)
from repro.obs.history import (
    HistoryEntry,
    RunHistory,
    detect_regression,
    entry_from_bench,
    entry_from_summary,
)
from repro.obs.schema import (
    TRACE_FORMAT_VERSION,
    TraceSchemaError,
    scheme_vocabulary,
    validate_trace,
)
from repro.obs.export import (
    registry_from_summary,
    to_json,
    to_openmetrics,
    write_metrics,
)

__all__ = [
    "CostAttribution",
    "Counter",
    "Gauge",
    "HistoryEntry",
    "Histogram",
    "MetricsRegistry",
    "PhaseTimer",
    "ReconciliationError",
    "RunHistory",
    "TRACE_FORMAT_VERSION",
    "TraceProfile",
    "TraceSchemaError",
    "Tracer",
    "attribute_costs",
    "detect_regression",
    "entry_from_bench",
    "entry_from_summary",
    "profile_trace",
    "read_trace",
    "registry_from_summary",
    "scheme_vocabulary",
    "to_json",
    "to_openmetrics",
    "validate_trace",
    "write_metrics",
]
