"""Registry exporters and the run → registry bridge.

``registry_from_summary`` converts any finished run — a live
:class:`~repro.system.results.RunResult` or a detached
:class:`~repro.runner.summary.RunSummary` — into a
:class:`~repro.obs.metrics.MetricsRegistry`.  Both inputs produce the
same registry (RunSummary snapshots everything the bridge reads), which
is what lets the golden-snapshot suite compare ``--jobs 1`` (in-process
RunResult path) and ``--jobs 2`` (pickled RunSummary path) bit for bit.

Two text formats:

* ``to_openmetrics`` — Prometheus/OpenMetrics-style exposition
  (``# TYPE``/``# HELP`` headers, cumulative ``_bucket{le=...}``
  histogram series);
* ``to_json`` — canonical JSON (sorted keys, stable indentation), the
  format the goldens are stored in.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.common.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry, bucket_upper_bound


# ----------------------------------------------------------------------
# run -> registry
# ----------------------------------------------------------------------
def registry_from_summary(
    summary, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Project a finished run onto a metrics registry.

    Accepts a :class:`~repro.system.results.RunResult` or
    :class:`~repro.runner.summary.RunSummary` (anything exposing the
    shared read-side surface).  Only deterministic simulation state is
    exported — no wall-clock values — so identical runs yield identical
    registries regardless of the execution path.
    """
    registry = registry if registry is not None else MetricsRegistry()
    scheme = summary.scheme.value
    workload = summary.workload_name

    registry.gauge(
        "repro_run_info", help="constant 1; run identity carried in labels"
    ).set(1, scheme=scheme, workload=workload)
    registry.gauge(
        "repro_run_time_cycles", help="simulated cycles of the slowest node"
    ).set(summary.total_time)
    registry.counter(
        "repro_run_barriers_total", help="global barrier episodes"
    ).inc(summary.barriers)

    refs = registry.counter(
        "repro_node_refs_total", help="memory references issued per node"
    )
    for node, count in enumerate(summary.refs_per_node):
        refs.inc(count, node=node)

    time_cycles = registry.counter(
        "repro_node_time_cycles_total",
        help="per-node simulated cycles by breakdown component",
    )
    for node, breakdown in enumerate(summary.breakdowns):
        for component, cycles in breakdown.to_dict().items():
            time_cycles.inc(cycles, node=node, component=component)

    counters = summary.counters
    items = counters.to_dict().items() if hasattr(counters, "to_dict") else counters.items()
    events = registry.counter(
        "repro_events_total", help="merged simulator counters by event name"
    )
    for name, value in sorted(items):
        events.inc(value, event=name)

    timing = summary.timing_summary()
    if timing is not None:
        registry.gauge(
            "repro_translation_entries", help="translation-buffer entries per bank"
        ).set(timing["entries"])
        registry.counter(
            "repro_translation_accesses_total", help="translation lookups"
        ).inc(timing["accesses"])
        registry.counter(
            "repro_translation_misses_total", help="translation misses"
        ).inc(timing["misses"])
        registry.gauge(
            "repro_translation_miss_rate", help="misses / accesses"
        ).set(round(timing["miss_rate"], 9))

    for direction in ("read", "write"):
        hist = getattr(summary, f"{direction}_latency_histogram", None)
        hist = hist() if callable(hist) else hist
        if hist is not None and hist.count:
            hist.to_metrics(
                registry,
                family=f"repro_{direction}_latency_cycles",
                help=f"{direction} stall latency distribution (cycles)",
            )
    return registry


# ----------------------------------------------------------------------
# text formats
# ----------------------------------------------------------------------
def _format_value(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _labels_text(pairs) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in pairs)
    return "{" + inner + "}"


def to_openmetrics(registry: MetricsRegistry) -> str:
    """OpenMetrics-style text exposition of a registry."""
    lines = []
    for metric in registry:
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for key, value in metric.samples():
            if metric.kind == "histogram":
                cumulative = 0
                for bucket in sorted(value.buckets):
                    cumulative += value.buckets[bucket]
                    le = (("le", str(bucket_upper_bound(bucket))),)
                    lines.append(
                        f"{metric.name}_bucket{_labels_text(key + le)} {cumulative}"
                    )
                inf = (("le", "+Inf"),)
                lines.append(
                    f"{metric.name}_bucket{_labels_text(key + inf)} {value.count}"
                )
                lines.append(f"{metric.name}_sum{_labels_text(key)} {value.total}")
                lines.append(f"{metric.name}_count{_labels_text(key)} {value.count}")
            else:
                lines.append(
                    f"{metric.name}{_labels_text(key)} {_format_value(value)}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """Canonical JSON form (sorted keys — the golden-snapshot format)."""
    return json.dumps(registry.to_dict(), indent=indent, sort_keys=True) + "\n"


_FORMATS = ("json", "openmetrics")


def write_metrics(registry: MetricsRegistry, path: str, format: str = "auto") -> str:
    """Write a registry to ``path``; returns the format used.

    ``format='auto'`` infers from the extension: ``.prom`` / ``.txt``
    / ``.om`` → openmetrics, anything else → json.
    """
    if format == "auto":
        lowered = str(path).lower()
        format = (
            "openmetrics"
            if lowered.endswith((".prom", ".txt", ".om"))
            else "json"
        )
    if format not in _FORMATS:
        raise ConfigurationError(
            f"unknown metrics format {format!r} (expected one of {_FORMATS})"
        )
    text = to_json(registry) if format == "json" else to_openmetrics(registry)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return format


def diff_registries(expected: Dict, actual: Dict) -> str:
    """Human-readable field-by-field diff of two ``to_dict()`` forms.

    Used by the golden-snapshot suite so a mismatch names the exact
    family/sample that drifted instead of dumping two JSON blobs.
    Accepts :class:`MetricsRegistry` objects or their ``to_dict()``
    forms interchangeably.
    """
    if hasattr(expected, "to_dict"):
        expected = expected.to_dict()
    if hasattr(actual, "to_dict"):
        actual = actual.to_dict()
    lines = []
    for name in sorted(set(expected) | set(actual)):
        if name not in actual:
            lines.append(f"- family {name}: missing from actual")
            continue
        if name not in expected:
            lines.append(f"+ family {name}: not in golden")
            continue
        exp, act = expected[name], actual[name]
        for attr in ("kind", "help"):
            if exp.get(attr) != act.get(attr):
                lines.append(
                    f"! {name}.{attr}: golden={exp.get(attr)!r} "
                    f"actual={act.get(attr)!r}"
                )
        exp_samples = {
            tuple(sorted(s.get("labels", {}).items())): s for s in exp.get("samples", [])
        }
        act_samples = {
            tuple(sorted(s.get("labels", {}).items())): s for s in act.get("samples", [])
        }
        for labels in sorted(set(exp_samples) | set(act_samples)):
            label_text = _labels_text(labels) or "{}"
            if labels not in act_samples:
                lines.append(f"- {name}{label_text}: missing from actual")
            elif labels not in exp_samples:
                lines.append(f"+ {name}{label_text}: not in golden")
            elif exp_samples[labels] != act_samples[labels]:
                exp_v = {k: v for k, v in exp_samples[labels].items() if k != "labels"}
                act_v = {k: v for k, v in act_samples[labels].items() if k != "labels"}
                lines.append(
                    f"! {name}{label_text}: golden={exp_v} actual={act_v}"
                )
    return "\n".join(lines)
