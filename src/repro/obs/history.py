"""Append-only run-history store with rolling-median regression checks.

The ROADMAP's "fast as the hardware allows" goal needs a perf
*trajectory*, not a single committed snapshot.  :class:`RunHistory`
appends one JSONL line per measured run under the cache root; each
:class:`HistoryEntry` carries a **content-hashed config key** (runs are
only ever compared against runs of the same configuration), a metrics
dict (refs/sec, miss rates, latency percentiles), and free-form
context.

Two consumers:

* :func:`detect_regression` — the rolling-median + tolerance detector:
  the latest value is compared against the median of the preceding
  ``window`` values; a drop (or rise, for lower-is-better metrics like
  slowdowns and latencies) beyond ``tolerance`` flags a regression.
  The median makes single noisy runs in the baseline harmless.
* :meth:`RunHistory.compare` — a direct diff of one entry against a
  baseline entry, metric by metric.

``repro history`` is the CLI surface; ``benchmarks/bench_common`` and
the report's Telemetry section append entries automatically.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from statistics import median
from typing import Dict, Iterable, List, Optional

from repro.common.errors import ConfigurationError

HISTORY_VERSION = 1

#: File name of the store inside its root directory.
HISTORY_FILE = "history.jsonl"


def config_key(config: Dict) -> str:
    """Content hash of a configuration dict (stable across processes)."""
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def metric_direction(name: str) -> str:
    """``"higher"`` or ``"lower"`` — which way is better for a metric.

    Rates and speedups improve upward; slowdowns, latencies, miss
    rates, and wall-clock seconds improve downward.
    """
    lowered = name.lower()
    if any(
        marker in lowered
        for marker in ("slowdown", "latency", "miss_rate", "seconds", "_p5", "_p9")
    ):
        return "lower"
    return "higher"


class HistoryEntry:
    """One measured run: a config key, metrics, and context."""

    __slots__ = ("key", "kind", "recorded_at", "metrics", "context")

    def __init__(
        self,
        key: str,
        metrics: Dict[str, float],
        kind: str = "run",
        context: Optional[Dict] = None,
        recorded_at: Optional[float] = None,
    ) -> None:
        if not key:
            raise ConfigurationError("history entry needs a non-empty config key")
        self.key = str(key)
        self.kind = str(kind)
        self.recorded_at = float(recorded_at if recorded_at is not None else time.time())
        self.metrics = {str(k): float(v) for k, v in metrics.items()}
        self.context = dict(context or {})

    def to_dict(self) -> Dict:
        return {
            "version": HISTORY_VERSION,
            "key": self.key,
            "kind": self.kind,
            "recorded_at": round(self.recorded_at, 3),
            "metrics": dict(sorted(self.metrics.items())),
            "context": self.context,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "HistoryEntry":
        return cls(
            key=data["key"],
            metrics=data.get("metrics", {}),
            kind=data.get("kind", "run"),
            context=data.get("context"),
            recorded_at=data.get("recorded_at"),
        )

    def __repr__(self) -> str:
        return (
            f"HistoryEntry({self.kind}:{self.key}, "
            f"{len(self.metrics)} metrics)"
        )


def entry_from_summary(
    summary, key: str, wall_seconds: Optional[float] = None, kind: str = "run", **context
) -> HistoryEntry:
    """Build an entry from a finished run summary.

    Simulated-time metrics (miss rate, latency percentiles) always
    land; refs/sec needs the caller's wall-clock measurement (the
    summary deliberately records none).
    """
    metrics: Dict[str, float] = {
        "total_references": float(summary.total_references()),
        "run_time_cycles": float(summary.total_time),
    }
    if wall_seconds and wall_seconds > 0:
        metrics["refs_per_sec"] = round(summary.total_references() / wall_seconds, 1)
        metrics["wall_seconds"] = round(wall_seconds, 3)
    timing = summary.timing_summary()
    if timing is not None:
        metrics["translation_miss_rate"] = round(timing["miss_rate"], 9)
    for direction in ("read", "write"):
        hist = getattr(summary, f"{direction}_latency_histogram")()
        if hist is not None and hist.count:
            metrics[f"{direction}_latency_p50"] = float(hist.percentile(0.50))
            metrics[f"{direction}_latency_p95"] = float(hist.percentile(0.95))
    return HistoryEntry(key, metrics, kind=kind, context=context)


def entry_from_bench(payload: Dict, **context) -> HistoryEntry:
    """Build an entry from a ``BENCH_throughput.json`` payload.

    The config key hashes the bench machine shape *and* the smoke flag,
    so smoke and full runs form separate trajectories and are never
    compared against each other.
    """
    key = config_key(
        {
            "bench": "throughput",
            "params": payload.get("params", {}),
            "smoke": bool(payload.get("smoke")),
        }
    )
    metrics: Dict[str, float] = {}
    serial = payload.get("serial", {})
    for kind in ("sweep", "timing"):
        row = serial.get(kind)
        if row:
            metrics[f"{kind}_refs_per_sec"] = row["refs_per_sec"]
    tracing = payload.get("tracing", {})
    if tracing:
        metrics["tracing_enabled_slowdown"] = tracing["enabled_slowdown"]
        metrics["tracing_disabled_refs_per_sec"] = tracing["disabled_refs_per_sec"]
    for row in payload.get("grid", ()):
        if "speedup_vs_no_replay" in row:
            metrics["grid_speedup_vs_no_replay"] = row["speedup_vs_no_replay"]
    context.setdefault("version", payload.get("version"))
    context.setdefault("smoke", bool(payload.get("smoke")))
    context.setdefault("cpu_count", payload.get("cpu_count"))
    return HistoryEntry(key, metrics, kind="bench", context=context)


def entry_from_service_bench(payload: Dict, **context) -> HistoryEntry:
    """Build an entry from a ``BENCH_service.json`` payload.

    Tracks the service tier's load-test trajectory: warm-cache request
    latency percentiles, throughput, and the coalescing/cache-hit
    rates.  Smoke and full runs hash to different keys, same as the
    throughput bench.
    """
    key = config_key(
        {
            "bench": "service",
            "params": payload.get("params", {}),
            "clients": payload.get("load", {}).get("clients"),
            "smoke": bool(payload.get("smoke")),
        }
    )
    metrics: Dict[str, float] = {}
    load = payload.get("load", {})
    if load:
        metrics["post_latency_p50_ms"] = load["post_latency_ms"]["p50"]
        metrics["post_latency_p99_ms"] = load["post_latency_ms"]["p99"]
        metrics["requests_per_sec"] = load["requests_per_sec"]
        metrics["warm_hit_rate"] = load["warm_hit_rate"]
    dedupe = payload.get("dedupe", {})
    if dedupe:
        metrics["coalesced_rate"] = dedupe["coalesced_rate"]
    workers = payload.get("workers", {})
    if workers:
        metrics["worker_speedup_vs_serial"] = workers["speedup_vs_serial"]
    context.setdefault("version", payload.get("version"))
    context.setdefault("smoke", bool(payload.get("smoke")))
    context.setdefault("cpu_count", payload.get("cpu_count"))
    return HistoryEntry(key, metrics, kind="bench", context=context)


def detect_regression(
    values: Iterable[float],
    window: int = 5,
    tolerance: float = 0.1,
    direction: str = "higher",
) -> Dict:
    """Rolling-median regression check over one metric's trajectory.

    The last value is the run under test; its baseline is the median of
    the up-to-``window`` values preceding it.  ``direction`` says which
    way is better for the metric.  With fewer than two values there is
    nothing to compare and the check passes.
    """
    if direction not in ("higher", "lower"):
        raise ConfigurationError(
            f"direction must be 'higher' or 'lower', not {direction!r}"
        )
    if not 0 <= tolerance < 1:
        raise ConfigurationError("tolerance must be in [0, 1)")
    series = [float(v) for v in values]
    if len(series) < 2:
        return {
            "ok": True,
            "reason": "insufficient history",
            "n": len(series),
            "latest": series[-1] if series else None,
            "baseline_median": None,
            "ratio": None,
        }
    latest = series[-1]
    prior = series[-1 - min(window, len(series) - 1) : -1]
    baseline = median(prior)
    if baseline == 0:
        ratio = 1.0 if latest == 0 else float("inf")
    else:
        ratio = latest / baseline
    if direction == "higher":
        ok = latest >= baseline * (1.0 - tolerance)
    else:
        ok = latest <= baseline * (1.0 + tolerance)
    return {
        "ok": ok,
        "n": len(series),
        "window": len(prior),
        "latest": latest,
        "baseline_median": baseline,
        "ratio": round(ratio, 4) if ratio != float("inf") else ratio,
        "tolerance": tolerance,
        "direction": direction,
    }


class RunHistory:
    """Append-only JSONL store of :class:`HistoryEntry` lines.

    ``root`` is a directory (defaults to the shared cache root from
    :func:`repro.runner.cache.default_cache_dir`); the store is a
    single ``history.jsonl`` inside it.  Appends are line-buffered and
    flushed per entry, so concurrent benchmark processes interleave
    whole lines; reads skip lines that fail to parse rather than
    corrupting the whole trajectory.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        if root is None:
            from repro.runner.cache import default_cache_dir

            root = default_cache_dir()
        self.root = str(root)
        self.path = os.path.join(self.root, HISTORY_FILE)

    # -- writing -------------------------------------------------------
    def append(self, entry: HistoryEntry) -> HistoryEntry:
        from repro.runner.locking import locked_append

        os.makedirs(self.root, exist_ok=True)
        line = json.dumps(entry.to_dict(), sort_keys=True, separators=(",", ":"))
        with open(self.path, "a+b") as handle:
            # A writer hard-killed mid-line leaves no trailing newline;
            # appending straight after it would corrupt THIS entry too.
            # The torn-line repair and the append happen as one
            # flock-guarded write so concurrent benchmark processes
            # interleave whole lines only.
            size = handle.seek(0, os.SEEK_END)
            payload = line.encode("utf-8") + b"\n"
            if size > 0:
                handle.seek(size - 1)
                if handle.read(1) != b"\n":
                    payload = b"\n" + payload
            locked_append(handle, payload)
        return entry

    # -- reading -------------------------------------------------------
    def entries(
        self, key: Optional[str] = None, kind: Optional[str] = None
    ) -> List[HistoryEntry]:
        """Entries in append order, optionally filtered by key/kind."""
        if not os.path.exists(self.path):
            return []
        out: List[HistoryEntry] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    entry = HistoryEntry.from_dict(data)
                except (ValueError, KeyError, TypeError):
                    continue  # torn or foreign line: skip, don't poison
                if key is not None and entry.key != key:
                    continue
                if kind is not None and entry.kind != kind:
                    continue
                out.append(entry)
        return out

    def keys(self) -> List[str]:
        """Distinct config keys present, in first-seen order."""
        seen: Dict[str, None] = {}
        for entry in self.entries():
            seen.setdefault(entry.key, None)
        return list(seen)

    def latest(self, key: str) -> Optional[HistoryEntry]:
        entries = self.entries(key=key)
        return entries[-1] if entries else None

    # -- analysis ------------------------------------------------------
    def series(self, key: str, metric: str) -> List[float]:
        """One metric's trajectory (entries missing it are skipped)."""
        return [
            entry.metrics[metric]
            for entry in self.entries(key=key)
            if metric in entry.metrics
        ]

    def check(
        self,
        key: str,
        metrics: Optional[Iterable[str]] = None,
        window: int = 5,
        tolerance: float = 0.1,
    ) -> List[Dict]:
        """Run the regression detector for each metric of one key.

        ``metrics`` defaults to every metric the latest entry carries;
        each check's direction comes from :func:`metric_direction`.
        Returns one result row per metric (``metric`` added to the
        :func:`detect_regression` dict).
        """
        latest = self.latest(key)
        if latest is None:
            return []
        names = list(metrics) if metrics is not None else sorted(latest.metrics)
        results = []
        for name in names:
            series = self.series(key, name)
            result = detect_regression(
                series,
                window=window,
                tolerance=tolerance,
                direction=metric_direction(name),
            )
            result["metric"] = name
            results.append(result)
        return results

    def compare(
        self,
        baseline: HistoryEntry,
        entry: Optional[HistoryEntry] = None,
        tolerance: float = 0.1,
    ) -> List[Dict]:
        """Diff one entry (default: the latest with the baseline's key)
        against a baseline entry, metric by metric."""
        if entry is None:
            entry = self.latest(baseline.key)
        if entry is None:
            return []
        rows = []
        for name in sorted(set(baseline.metrics) & set(entry.metrics)):
            base, current = baseline.metrics[name], entry.metrics[name]
            direction = metric_direction(name)
            ratio = current / base if base else (1.0 if current == base else float("inf"))
            if direction == "higher":
                ok = current >= base * (1.0 - tolerance)
            else:
                ok = current <= base * (1.0 + tolerance)
            rows.append(
                {
                    "metric": name,
                    "baseline": base,
                    "current": current,
                    "ratio": round(ratio, 4) if ratio != float("inf") else ratio,
                    "direction": direction,
                    "ok": ok,
                }
            )
        return rows

    def __repr__(self) -> str:
        return f"RunHistory({self.path})"
