"""A unified metrics registry: labeled counters, gauges, histograms.

The registry subsumes the ad-hoc statistics containers scattered through
the simulator (:class:`~repro.common.stats.Counters` bags, per-node
:class:`~repro.common.stats.LatencyHistogram`\\ s, runner
:class:`~repro.runner.summary.GridStats`) behind one model:

* a **metric family** has a kind (counter / gauge / histogram), a name,
  and help text;
* each family holds **samples** keyed by a frozen label set
  (``{"node": "3"}``), so per-node, per-scheme, or per-phase series
  live side by side;
* families and whole registries **merge**: counters and histogram
  buckets sum, gauges take the maximum.  Merge is commutative and
  associative (and, for gauges, idempotent), so reducing results from
  worker processes is order-independent — the same property the
  existing ``Counters.merge`` / ``LatencyHistogram.merge`` rely on,
  verified by ``tests/property/test_prop_obs.py``.

Histograms use the same power-of-two bucketing as
:class:`~repro.common.stats.LatencyHistogram` (bucket ``i`` counts
values in ``[2^i, 2^(i+1))``, bucket 0 additionally holds zeros), which
is what makes the ``to_metrics()`` adapters on the legacy containers
lossless.

Exporters live in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import re
import time
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import ConfigurationError

#: Frozen label set: sorted (name, value) pairs, all strings.
LabelKey = Tuple[Tuple[str, str], ...]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def freeze_labels(labels: Dict[str, object]) -> LabelKey:
    """Canonical (sorted, stringified) form of a label dict."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ConfigurationError(f"invalid metric name {name!r}")
    return name


def bucket_of(value: float) -> int:
    """Power-of-two bucket index (shared with LatencyHistogram)."""
    value = int(value)
    return value.bit_length() - 1 if value > 0 else 0


def bucket_upper_bound(bucket: int) -> int:
    """Inclusive upper bound of one power-of-two bucket."""
    return (1 << (bucket + 1)) - 1


class _HistogramValue:
    """Bucketed state of one histogram sample (one label set)."""

    __slots__ = ("buckets", "count", "total")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0

    def observe(self, value: int) -> None:
        bucket = bucket_of(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += int(value)

    def absorb(self, buckets: Dict[int, int], count: int, total: int) -> None:
        """Fold pre-bucketed state in (adapter / merge path)."""
        for bucket, n in buckets.items():
            bucket = int(bucket)
            self.buckets[bucket] = self.buckets.get(bucket, 0) + int(n)
        self.count += int(count)
        self.total += int(total)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> int:
        """Upper bound of the bucket containing the given quantile;
        0 when the histogram is empty."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if not self.count:
            return 0
        threshold = fraction * self.count
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= threshold:
                return bucket_upper_bound(bucket)
        return bucket_upper_bound(max(self.buckets))

    def to_dict(self) -> Dict:
        return {
            "buckets": {str(b): n for b, n in sorted(self.buckets.items())},
            "count": self.count,
            "sum": self.total,
        }


class Metric:
    """One metric family: a kind, a name, and labeled samples."""

    kind: str = "untyped"

    __slots__ = ("name", "help", "_samples")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self._samples: Dict[LabelKey, object] = {}

    def labelsets(self) -> List[LabelKey]:
        return sorted(self._samples)

    def samples(self) -> Iterator[Tuple[LabelKey, object]]:
        """(labels, value) pairs in deterministic (sorted-label) order."""
        for key in sorted(self._samples):
            yield key, self._samples[key]

    def __len__(self) -> int:
        return len(self._samples)


class Counter(Metric):
    """A monotonically accumulating sum per label set."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (amount={amount})"
            )
        key = freeze_labels(labels)
        self._samples[key] = self._samples.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._samples.get(freeze_labels(labels), 0)

    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._samples.values())


class Gauge(Metric):
    """A point-in-time value per label set.

    Merging two registries keeps the **maximum** per label set — the
    only reduction that is commutative, associative, and idempotent.
    Gauges that must not be reduced this way (e.g. per-worker rates)
    should carry a distinguishing label instead.
    """

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        self._samples[freeze_labels(labels)] = value

    def value(self, **labels: object) -> float:
        return self._samples.get(freeze_labels(labels), 0)


class Histogram(Metric):
    """A power-of-two-bucketed distribution per label set."""

    kind = "histogram"

    def _state(self, key: LabelKey) -> _HistogramValue:
        state = self._samples.get(key)
        if state is None:
            state = self._samples[key] = _HistogramValue()
        return state

    def observe(self, value: float, **labels: object) -> None:
        self._state(freeze_labels(labels)).observe(value)

    def absorb(
        self,
        buckets: Dict[int, int],
        count: int,
        total: int,
        **labels: object,
    ) -> None:
        """Fold pre-bucketed state (e.g. a LatencyHistogram) in."""
        self._state(freeze_labels(labels)).absorb(buckets, count, total)

    def state(self, **labels: object) -> _HistogramValue:
        return self._state(freeze_labels(labels))


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """A named collection of metric families.

    >>> reg = MetricsRegistry()
    >>> reg.counter("repro_reads").inc(3, node=0)
    >>> reg.counter("repro_reads").value(node=0)
    3
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, help=help)
        elif type(metric) is not cls:
            raise ConfigurationError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        elif help and not metric.help:
            metric.help = help
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, help)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[Metric]:
        """Families in deterministic (name-sorted) order."""
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """A new registry combining both operands.

        Counters and histogram buckets sum; gauges keep the per-label
        maximum.  Commutative and associative, so any reduction tree
        over worker results yields the same registry.
        """
        merged = MetricsRegistry()
        for source in (self, other):
            for metric in source:
                target = merged._get_or_create(
                    type(metric), metric.name, metric.help
                )
                for key, value in metric.samples():
                    if metric.kind == "counter":
                        target._samples[key] = target._samples.get(key, 0) + value
                    elif metric.kind == "gauge":
                        if key in target._samples:
                            target._samples[key] = max(target._samples[key], value)
                        else:
                            target._samples[key] = value
                    else:
                        target._state(key).absorb(
                            value.buckets, value.count, value.total
                        )
        return merged

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Deterministic JSON-serializable form."""
        families = {}
        for metric in self:
            samples = []
            for key, value in metric.samples():
                entry: Dict[str, object] = {"labels": dict(key)}
                if metric.kind == "histogram":
                    entry.update(value.to_dict())
                else:
                    entry["value"] = value
                samples.append(entry)
            families[metric.name] = {
                "kind": metric.kind,
                "help": metric.help,
                "samples": samples,
            }
        return families

    @classmethod
    def from_dict(cls, data: Dict) -> "MetricsRegistry":
        registry = cls()
        for name, family in data.items():
            kind = family.get("kind", "untyped")
            metric_cls = _KINDS.get(kind)
            if metric_cls is None:
                raise ConfigurationError(f"unknown metric kind {kind!r} for {name!r}")
            metric = registry._get_or_create(
                metric_cls, name, family.get("help", "")
            )
            for sample in family.get("samples", ()):
                key = freeze_labels(sample.get("labels", {}))
                if kind == "histogram":
                    metric._state(key).absorb(
                        {int(b): n for b, n in sample.get("buckets", {}).items()},
                        sample.get("count", 0),
                        sample.get("sum", 0),
                    )
                elif kind == "counter":
                    metric._samples[key] = metric._samples.get(key, 0) + sample["value"]
                else:
                    metric._samples[key] = sample["value"]
        return registry

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} families)"


class PhaseTimer:
    """Wall-clock phase timers feeding a registry.

    Each completed phase records its duration as a
    ``<name>_seconds{phase=...}`` gauge and, when an item count is
    reported, an ``<name>_items_per_sec{phase=...}`` gauge (the
    refs/sec-over-time surface the report appendix renders).
    """

    def __init__(self, registry: MetricsRegistry, name: str = "repro_phase") -> None:
        self._registry = registry
        self._name = name
        self.phases: List[Dict[str, object]] = []

    class _Phase:
        def __init__(self, timer: "PhaseTimer", label: str) -> None:
            self._timer = timer
            self._label = label
            self._started: Optional[float] = None
            self.items: Optional[float] = None

        def add_items(self, count: float) -> None:
            """Report how many items (refs, jobs) this phase processed."""
            self.items = (self.items or 0) + count

        def __enter__(self) -> "PhaseTimer._Phase":
            self._started = time.perf_counter()
            return self

        def __exit__(self, exc_type, exc, tb) -> None:
            elapsed = time.perf_counter() - self._started
            self._timer._finish(self._label, elapsed, self.items)

    def phase(self, label: str) -> "PhaseTimer._Phase":
        return PhaseTimer._Phase(self, label)

    def _finish(self, label: str, seconds: float, items: Optional[float]) -> None:
        entry: Dict[str, object] = {"phase": label, "seconds": seconds}
        self._registry.gauge(
            f"{self._name}_seconds", help="wall-clock seconds per phase"
        ).set(round(seconds, 6), phase=label)
        if items is not None:
            rate = items / seconds if seconds > 0 else 0.0
            entry["items"] = items
            entry["items_per_sec"] = rate
            self._registry.gauge(
                f"{self._name}_items_per_sec", help="items processed per second"
            ).set(round(rate, 3), phase=label)
        self.phases.append(entry)

    def render(self) -> str:
        lines = []
        for entry in self.phases:
            line = f"{entry['phase']:<18} {entry['seconds']:8.2f} s"
            if "items" in entry:
                line += (
                    f"  {entry['items']:>10,.0f} items"
                    f"  ({entry['items_per_sec']:>10,.0f}/s)"
                )
            lines.append(line)
        return "\n".join(lines) if lines else "(no phases)"
