"""Trace analytics: span-tree profiler and translation cost attribution.

Two consumers of a recorded JSONL trace (:func:`repro.obs.read_trace`):

* :func:`profile_trace` aggregates the ``run``/``ref``/``protocol.*``
  spans into a call-tree profile — one row per span *path*, with call
  counts and inclusive/exclusive cycle totals, rendered flame-style.
* :func:`attribute_costs` produces the paper's Table-4-shaped overhead
  breakdown from the trace alone: cycles stalled in translation (TLB
  miss handling or V-COMA DLB fills), in local memory, in remote
  protocol transactions, and on the interconnect.

Both are pure functions of the record list; neither needs the live
machine.  The attribution reconciles **exactly** against the metrics
registry exported for the same run (:func:`~repro.obs.export.registry_from_summary`):
every category equals the corresponding breakdown component or merged
counter, asserted by :meth:`CostAttribution.reconcile`.  The identities
used:

* ``ref`` spans carry ``cycles`` (total stall + translation) and
  ``tlb`` (translation stall delta), so their sums equal the node time
  breakdown's ``loc_stall + rem_stall + tlb_stall`` and ``tlb_stall``.
* ``protocol.fetch``/``protocol.upgrade`` spans carry ``remote`` and
  ``translation``; a remote transaction's ``(t1 - t0) - translation``
  is exactly what the node attributed to ``rem_stall``.
* ``msg`` events carry the charged latency, summing to the
  ``network_cycles`` counter; fills equal translation misses; and
  ``protocol.invalidate`` events equal the ``invalidations`` counter.

Relaxed-writes runs hide store stalls from the breakdown (the node
restores it and banks ``hidden_protocol_cycles`` instead); such ``ref``
spans record ``cycles == 0`` and their protocol children are excluded
from the category sums, keeping the identities exact.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.core.schemes import Scheme


class ReconciliationError(AssertionError):
    """A trace-derived total disagreed with the metrics registry."""


# ----------------------------------------------------------------------
# span-tree profile
# ----------------------------------------------------------------------
class ProfileNode:
    """Aggregate of every span sharing one ancestry path of names."""

    __slots__ = ("name", "path", "count", "inclusive", "exclusive", "events", "children")

    def __init__(self, name: str, path: Tuple[str, ...]) -> None:
        self.name = name
        self.path = path
        self.count = 0
        self.inclusive = 0  # sum of (t1 - t0) over spans at this path
        self.exclusive = 0  # inclusive minus direct children's inclusive
        self.events: Dict[str, int] = {}  # point events under these spans
        self.children: Dict[str, "ProfileNode"] = {}

    @property
    def mean(self) -> float:
        return self.inclusive / self.count if self.count else 0.0

    def sorted_children(self) -> List["ProfileNode"]:
        return sorted(self.children.values(), key=lambda n: (-n.inclusive, n.name))

    def to_dict(self) -> Dict:
        out: Dict[str, object] = {
            "name": self.name,
            "count": self.count,
            "inclusive_cycles": self.inclusive,
            "exclusive_cycles": self.exclusive,
        }
        if self.events:
            out["events"] = dict(sorted(self.events.items()))
        if self.children:
            out["children"] = [c.to_dict() for c in self.sorted_children()]
        return out


class TraceProfile:
    """A call-tree profile over one recorded trace."""

    def __init__(self, meta: Dict, roots: List[ProfileNode], events: Dict[str, int]) -> None:
        self.meta = meta
        self.roots = roots
        self.events = events  # global per-name event counts
        self.span_count = sum(self._count(r) for r in roots)

    @staticmethod
    def _count(node: ProfileNode) -> int:
        return node.count + sum(TraceProfile._count(c) for c in node.children.values())

    def to_dict(self) -> Dict:
        """Deterministic JSON form (the golden-snapshot shape)."""
        return {
            "scheme": self.meta.get("scheme"),
            "workload": self.meta.get("workload"),
            "nodes": self.meta.get("nodes"),
            "span_count": self.span_count,
            "event_counts": dict(sorted(self.events.items())),
            "tree": [r.to_dict() for r in sorted(self.roots, key=lambda n: (-n.inclusive, n.name))],
        }

    def render(self) -> str:
        """Flame-style text tree, heaviest subtree first.

        Cycle totals aggregate *work* across nodes: siblings that ran in
        parallel on different nodes sum, so a parent whose children
        overlap (the ``run`` span over per-node ``ref`` streams) can
        show negative exclusive time.
        """
        header = (
            f"{'span':<40} {'count':>9} {'inclusive':>14} "
            f"{'exclusive':>14} {'avg':>10}"
        )
        lines = [header, "-" * len(header)]

        def walk(node: ProfileNode, depth: int) -> None:
            label = "  " * depth + node.name
            lines.append(
                f"{label:<40} {node.count:>9,} {node.inclusive:>14,} "
                f"{node.exclusive:>14,} {node.mean:>10,.1f}"
            )
            for name, count in sorted(node.events.items()):
                lines.append(f"{'  ' * (depth + 1) + '· ' + name:<40} {count:>9,}")
            for child in node.sorted_children():
                walk(child, depth + 1)

        for root in sorted(self.roots, key=lambda n: (-n.inclusive, n.name)):
            walk(root, 0)
        return "\n".join(lines)


def profile_trace(records: Iterable[Dict]) -> TraceProfile:
    """Aggregate a parsed trace into a :class:`TraceProfile`.

    Spans sharing the same ancestry path of names fold into one
    :class:`ProfileNode`; events fold into their enclosing span's node
    (and a global per-name tally).
    """
    records = list(records)
    if not records or records[0].get("kind") != "meta":
        raise ConfigurationError("trace has no meta header (is this a trace file?)")
    meta = records[0]

    spans: Dict[int, Dict] = {}
    children: Dict[Optional[int], List[Dict]] = {}
    events: List[Dict] = []
    for record in records[1:]:
        kind = record.get("kind")
        if kind == "span":
            spans[record["id"]] = record
            children.setdefault(record.get("parent"), []).append(record)
        elif kind == "event":
            events.append(record)

    roots: Dict[str, ProfileNode] = {}
    node_of_span: Dict[int, ProfileNode] = {}

    def visit(span: Dict, parent_node: Optional[ProfileNode]) -> None:
        name = span["name"]
        if parent_node is None:
            node = roots.get(name)
            if node is None:
                node = roots[name] = ProfileNode(name, (name,))
        else:
            node = parent_node.children.get(name)
            if node is None:
                node = parent_node.children[name] = ProfileNode(
                    name, parent_node.path + (name,)
                )
        duration = span["t1"] - span["t0"]
        node.count += 1
        node.inclusive += duration
        node.exclusive += duration
        if parent_node is not None:
            parent_node.exclusive -= duration
        node_of_span[span["id"]] = node
        for child in children.get(span["id"], ()):
            visit(child, node)

    # Spans are emitted at end time (children precede parents), so the
    # traversal starts from the parent index, not stream order.
    for root_span in children.get(None, ()):
        visit(root_span, None)

    event_counts: Dict[str, int] = {}
    for event in events:
        name = event["name"]
        event_counts[name] = event_counts.get(name, 0) + 1
        owner = node_of_span.get(event.get("span"))
        if owner is not None:
            owner.events[name] = owner.events.get(name, 0) + 1

    return TraceProfile(meta, list(roots.values()), event_counts)


# ----------------------------------------------------------------------
# translation cost attribution (paper Table 4 shape)
# ----------------------------------------------------------------------
class CostAttribution:
    """Per-category stall-cycle totals derived from one trace.

    ``categories`` carries the paper's overhead decomposition:
    ``translation`` (TLB miss handling / DLB fills), ``local_memory``,
    ``remote_memory`` (protocol transactions beyond the local AM), and
    their sum ``stall_total``.  ``interconnect_cycles`` is the network
    share charged *inside* those transactions (it overlaps the memory
    categories rather than adding to them).
    """

    def __init__(
        self,
        meta: Dict,
        categories: Dict[str, int],
        interconnect_cycles: int,
        hidden_protocol_cycles: int,
        run_cycles: Optional[int],
        counts: Dict[str, int],
    ) -> None:
        self.meta = meta
        self.scheme = str(meta.get("scheme"))
        self.workload = meta.get("workload")
        self.nodes = meta.get("nodes")
        self.translation_kind = (
            "dlb" if self.scheme == Scheme.V_COMA.value else "tlb"
        )
        self.categories = categories
        self.interconnect_cycles = interconnect_cycles
        self.hidden_protocol_cycles = hidden_protocol_cycles
        self.run_cycles = run_cycles
        self.counts = counts

    def to_dict(self) -> Dict:
        return {
            "scheme": self.scheme,
            "workload": self.workload,
            "nodes": self.nodes,
            "translation_kind": self.translation_kind,
            "run_cycles": self.run_cycles,
            "categories": dict(sorted(self.categories.items())),
            "interconnect_cycles": self.interconnect_cycles,
            "hidden_protocol_cycles": self.hidden_protocol_cycles,
            "counts": dict(sorted(self.counts.items())),
        }

    def render(self) -> str:
        """The Table-4-style overhead breakdown as text."""
        total = self.categories["stall_total"] or 1
        kind = self.translation_kind
        rows = [
            (f"translation ({kind} miss handling)", self.categories["translation"]),
            ("local memory (AM + SLC fills)", self.categories["local_memory"]),
            ("remote memory (protocol transactions)", self.categories["remote_memory"]),
        ]
        title = f"cost attribution — {self.scheme}"
        if self.workload:
            title += f" / {self.workload}"
        if self.nodes:
            title += f" ({self.nodes} nodes)"
        lines = [title, f"{'category':<40} {'cycles':>14} {'% of stall':>11}"]
        lines.append("-" * len(lines[-1]))
        for label, cycles in rows:
            lines.append(f"{label:<40} {cycles:>14,} {100.0 * cycles / total:>10.1f}%")
        lines.append(f"{'total stall':<40} {self.categories['stall_total']:>14,}")
        lines.append(
            f"{'interconnect (within transactions)':<40} "
            f"{self.interconnect_cycles:>14,}"
        )
        if self.hidden_protocol_cycles:
            lines.append(
                f"{'hidden stores (protocol share)':<40} "
                f"{self.hidden_protocol_cycles:>14,}"
            )
        counts = self.counts
        lines.append("")
        lines.append(
            f"{counts['refs']:,} refs, {counts['protocol_transactions']:,} protocol "
            f"transactions ({counts['remote_transactions']:,} remote), "
            f"{counts['translation_fills']:,} {kind} fills / "
            f"{counts['translation_accesses']:,} accesses, "
            f"{counts['messages']:,} messages, "
            f"{counts['invalidations']:,} invalidations"
        )
        return "\n".join(lines)

    # -- registry reconciliation ---------------------------------------
    def reconcile(self, registry, strict: bool = True) -> List[Dict]:
        """Check every category against the metrics registry for the
        same run (:func:`~repro.obs.export.registry_from_summary` form).

        Returns one ``{"check", "trace", "registry", "ok"}`` row per
        identity; with ``strict`` (the default) any mismatch raises
        :class:`ReconciliationError`.  Checks whose family is absent
        from the registry (e.g. ``repro_translation_*`` for a run with
        no timing agent) are skipped.
        """
        checks: List[Dict] = []

        def check(name: str, trace_value, registry_value) -> None:
            checks.append(
                {
                    "check": name,
                    "trace": trace_value,
                    "registry": registry_value,
                    "ok": trace_value == registry_value,
                }
            )

        def component_total(component: str):
            return _sum_counter(
                registry, "repro_node_time_cycles_total", component=component
            )

        check("translation cycles == tlb_stall", self.categories["translation"],
              component_total("tlb_stall"))
        check("remote memory cycles == rem_stall", self.categories["remote_memory"],
              component_total("rem_stall"))
        check("local memory cycles == loc_stall", self.categories["local_memory"],
              component_total("loc_stall"))
        check(
            "stall total == loc+rem+tlb",
            self.categories["stall_total"],
            component_total("loc_stall")
            + component_total("rem_stall")
            + component_total("tlb_stall"),
        )
        check("interconnect cycles == network_cycles",
              self.interconnect_cycles,
              _sum_counter(registry, "repro_events_total", event="network_cycles"))
        check(
            "messages == msg_local + msg_remote",
            self.counts["messages"],
            _sum_counter(registry, "repro_events_total", event="msg_local")
            + _sum_counter(registry, "repro_events_total", event="msg_remote"),
        )
        check("remote messages == msg_remote", self.counts["messages_remote"],
              _sum_counter(registry, "repro_events_total", event="msg_remote"))
        check("invalidations == invalidations counter",
              self.counts["invalidations"],
              _sum_counter(registry, "repro_events_total", event="invalidations"))
        check("injections == injections counter",
              self.counts["injections"],
              _sum_counter(registry, "repro_events_total", event="injections"))
        if "repro_translation_accesses_total" in registry:
            check("translation accesses == hits + fills",
                  self.counts["translation_accesses"],
                  _sum_counter(registry, "repro_translation_accesses_total"))
            check("translation misses == fills",
                  self.counts["translation_fills"],
                  _sum_counter(registry, "repro_translation_misses_total"))
        if self.run_cycles is not None and "repro_run_time_cycles" in registry:
            check("run cycles == repro_run_time_cycles",
                  self.run_cycles, registry.get("repro_run_time_cycles").value())
        check("refs == repro_node_refs_total", self.counts["refs"],
              _sum_counter(registry, "repro_node_refs_total"))

        if strict:
            bad = [c for c in checks if not c["ok"]]
            if bad:
                detail = "; ".join(
                    f"{c['check']}: trace={c['trace']} registry={c['registry']}"
                    for c in bad
                )
                raise ReconciliationError(
                    f"{len(bad)}/{len(checks)} attribution checks failed: {detail}"
                )
        return checks


def _sum_counter(registry, family: str, **match: object) -> int:
    """Sum a counter family's samples whose labels match ``match``."""
    metric = registry.get(family)
    if metric is None:
        return 0
    wanted = [(str(k), str(v)) for k, v in match.items()]
    total = 0
    for key, value in metric.samples():
        labels = dict(key)
        if all(labels.get(k) == v for k, v in wanted):
            total += value
    return int(total)


def attribute_costs(records: Iterable[Dict]) -> CostAttribution:
    """Derive the per-category stall-cycle breakdown from one trace."""
    records = list(records)
    if not records or records[0].get("kind") != "meta":
        raise ConfigurationError("trace has no meta header (is this a trace file?)")
    meta = records[0]

    translation = stall_total = remote = 0
    hidden_cycles = 0
    interconnect = 0
    run_cycles: Optional[int] = None
    hidden_refs = set()  # span ids of relaxed-write refs (cycles hidden)
    counts = {
        "refs": 0,
        "reads": 0,
        "writes": 0,
        "protocol_transactions": 0,
        "remote_transactions": 0,
        "translation_hits": 0,
        "translation_fills": 0,
        "invalidations": 0,
        "injections": 0,
        "messages": 0,
        "messages_remote": 0,
    }

    protocol_spans: List[Dict] = []
    for record in records[1:]:
        kind = record.get("kind")
        if kind == "span":
            name = record["name"]
            if name == "ref":
                counts["refs"] += 1
                counts["reads" if record.get("op") == "read" else "writes"] += 1
                cycles = record.get("cycles", record["t1"] - record["t0"])
                if record.get("op") == "write" and cycles == 0:
                    # Relaxed write: the node restored the breakdown, so
                    # nothing below this ref reached any stall category.
                    hidden_refs.add(record["id"])
                    continue
                stall_total += cycles
                translation += record.get("tlb", 0)
            elif name in ("protocol.fetch", "protocol.upgrade"):
                protocol_spans.append(record)
            elif name == "run":
                run_cycles = record["t1"] - record["t0"]
        elif kind == "event":
            name = record["name"]
            if name == "msg":
                counts["messages"] += 1
                cycles = record.get("cycles", 0)
                interconnect += cycles
                if cycles:
                    counts["messages_remote"] += 1
            elif name in ("dlb_fill", "tlb_fill"):
                counts["translation_fills"] += 1
            elif name in ("dlb_hit", "tlb_hit"):
                counts["translation_hits"] += 1
            elif name == "protocol.invalidate":
                counts["invalidations"] += 1
            elif name == "protocol.inject":
                counts["injections"] += 1

    for span in protocol_spans:
        counts["protocol_transactions"] += 1
        if span.get("parent") in hidden_refs:
            hidden_cycles += span["t1"] - span["t0"]
            continue
        if span.get("remote"):
            counts["remote_transactions"] += 1
            remote += (span["t1"] - span["t0"]) - span.get("translation", 0)

    counts["translation_accesses"] = (
        counts["translation_hits"] + counts["translation_fills"]
    )
    categories = {
        "translation": translation,
        "remote_memory": remote,
        "local_memory": stall_total - translation - remote,
        "stall_total": stall_total,
    }
    return CostAttribution(
        meta, categories, interconnect, hidden_cycles, run_cycles, counts
    )
