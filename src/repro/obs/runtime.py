"""Process-wide runtime health metrics (the degradation ladder's ledger).

The per-run registries (``registry_from_summary``, ``GridStats
.to_metrics``) snapshot *one finished run* and are pinned by golden
files; runtime health events — a compiled run degrading to the scalar
oracle mid-grid, a corrupt cache entry quarantined, a stale ``.so``
moved aside — are process-scoped and cut across runs, so they live in
their own registry here.  ``repro doctor`` and ``GridStats`` read it;
:mod:`repro.core.ladder` and the cache tier write it.

Every recording helper is also a **warn-once** site: the first
occurrence of each distinct event key raises a ``RuntimeWarning`` so
interactive users see the degradation exactly once, while a 10k-job
grid that falls back 10k times doesn't print 10k warnings.  Counters
keep the true totals.
"""

from __future__ import annotations

import threading
import warnings
from typing import Dict, Optional, Set, Tuple

from repro.obs.metrics import MetricsRegistry

_lock = threading.Lock()
_registry = MetricsRegistry()
_warned: Set[Tuple[str, ...]] = set()


def runtime_registry() -> MetricsRegistry:
    """The process-wide runtime health registry (live; not a copy)."""
    return _registry


def reset_runtime_metrics() -> None:
    """Drop all recorded events and re-arm warn-once (test hook)."""
    global _registry
    with _lock:
        _registry = MetricsRegistry()
        _warned.clear()


def warn_once(key: Tuple[str, ...], message: str) -> bool:
    """Emit ``message`` as a RuntimeWarning the first time ``key`` is
    seen in this process; returns True when the warning fired."""
    with _lock:
        if key in _warned:
            return False
        _warned.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=3)
    return True


# ---------------------------------------------------------------------------
# degradation-ladder events
# ---------------------------------------------------------------------------


def record_fallback(tier: str, reason: str, quiet: bool = False) -> None:
    """One run degraded off ``tier`` (e.g. ``"compiled"``) for
    ``reason``.  Counted per tier; warned once per (tier, reason)."""
    _registry.counter(
        "repro_backend_fallbacks_total",
        help="runs degraded to a lower ladder tier",
    ).inc(1, tier=tier)
    if not quiet:
        warn_once(
            ("fallback", tier, reason),
            f"degraded off the {tier} engine: {reason} "
            "(results are produced by a lower ladder tier, bit-identically; "
            "`repro doctor` shows backend health)",
        )


def fallback_counts() -> Dict[str, int]:
    """Tier -> degraded-run count recorded so far this process."""
    metric = _registry.get("repro_backend_fallbacks_total")
    if metric is None:
        return {}
    counts: Dict[str, int] = {}
    for labels, value in metric.samples():
        tier = dict(labels).get("tier", "?")
        counts[tier] = counts.get(tier, 0) + int(value)
    return counts


def record_library_quarantine() -> None:
    """A cached fastsim ``.so`` failed verification and was moved aside."""
    _registry.counter(
        "repro_fastsim_quarantined_libraries_total",
        help="cached compiled libraries quarantined (digest/self-test failure)",
    ).inc(1)
    warn_once(
        ("library-quarantine",),
        "quarantined a corrupt or stale compiled fastsim library; "
        "rebuilding from source",
    )


# ---------------------------------------------------------------------------
# cache-tier events
# ---------------------------------------------------------------------------


def record_quarantine(store: str, path: Optional[str] = None, reason: str = "") -> None:
    """A cache-tier file (result entry, tap trace, orphaned temp file)
    was quarantined instead of trusted or silently deleted."""
    _registry.counter(
        "repro_store_quarantined_files_total",
        help="corrupt or partial cache-tier files quarantined",
    ).inc(1, store=store)
    detail = f" ({reason})" if reason else ""
    warn_once(
        ("store-quarantine", store, reason),
        f"{store}: quarantined {path or 'a file'}{detail}; "
        "previously committed entries are unaffected",
    )


def record_eviction(store: str, count: int = 1) -> None:
    """LRU size-cap eviction removed ``count`` files from ``store``."""
    if count <= 0:
        return
    _registry.counter(
        "repro_store_evicted_files_total",
        help="cache-tier files removed by LRU size-cap eviction",
    ).inc(count, store=store)


def record_corrupt_trace() -> None:
    """A stored tap trace failed to parse (``TraceStore.corrupt_dropped``)."""
    _registry.counter(
        "repro_trace_corrupt_dropped_total",
        help="tap traces dropped as corrupt on load",
    ).inc(1)


# ---------------------------------------------------------------------------
# service-tier events
# ---------------------------------------------------------------------------


def record_service_request(route: str) -> None:
    """One HTTP request handled by the simulation service."""
    _registry.counter(
        "repro_service_requests_total",
        help="HTTP requests handled by the simulation service",
    ).inc(1, route=route)


def record_coalesced_request(count: int = 1) -> None:
    """A submission landed on an identical in-flight run instead of
    scheduling a duplicate (whole-grid request coalescing)."""
    _registry.counter(
        "repro_coalesced_requests_total",
        help="submissions coalesced onto an identical in-flight run",
    ).inc(count)


def record_coalesced_job(count: int = 1) -> None:
    """A job spec attached to an identical in-flight job (spec-level
    coalescing across different grids)."""
    _registry.counter(
        "repro_service_coalesced_jobs_total",
        help="job specs attached to an identical in-flight job",
    ).inc(count)


def record_spec_result(source: str, count: int = 1) -> None:
    """How a submitted spec was satisfied: ``cache`` (warm result),
    ``coalesced`` (attached to in-flight work), or ``executed``."""
    _registry.counter(
        "repro_service_spec_results_total",
        help="submitted specs by resolution source",
    ).inc(count, source=source)


def record_service_simulations(count: int) -> None:
    """Simulations actually executed on behalf of the service (the
    denominator for proving coalescing/dedup: N identical submissions
    must move this by the size of *one* grid)."""
    if count <= 0:
        return
    _registry.counter(
        "repro_service_simulations_total",
        help="simulations executed by the service (cache hits excluded)",
    ).inc(count)


def set_connected_workers(count: int) -> None:
    """Gauge of remote workers currently registered with the hub."""
    _registry.gauge(
        "repro_service_workers_connected",
        help="remote workers currently connected to the job hub",
    ).set(count)


def counter_value(name: str, **labels) -> int:
    """Convenience read of one counter sample (0 when never recorded)."""
    metric = _registry.get(name)
    if metric is None:
        return 0
    return int(metric.value(**labels))
