"""Frozen trace schema: record shapes and per-scheme event vocabulary.

A trace is a JSONL stream.  The first record is a ``meta`` header; every
following record is a ``span`` or an ``event``:

``meta``
    ``{"kind": "meta", "format": TRACE_FORMAT_VERSION, "scheme": ...,
    "nodes": ..., "version": ...}``

``span``
    A timed region with identity: ``{"kind": "span", "id": int,
    "parent": int | None, "name": str, "t0": int, "t1": int,
    "node": int, ...attrs}``.  ``t1 - t0`` is the span latency in
    cycles; ``parent`` refers to the enclosing span's ``id``.

``event``
    A point occurrence: ``{"kind": "event", "span": int | None,
    "name": str, "t": int, "node": int, ...attrs}``; ``span`` refers to
    the enclosing span, if any.

The *vocabulary* — which span and event names a scheme may emit — is
frozen here so the round-trip test can detect drift.  Bumping
:data:`TRACE_FORMAT_VERSION` (and the goldens) is the explicit act of
changing it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.schemes import Scheme

#: Bump when record shapes or vocabularies change incompatibly.
TRACE_FORMAT_VERSION = 1

#: Span names every scheme may emit.
SPAN_NAMES = frozenset(
    {
        "run",  # one per Simulator.run()
        "ref",  # one per memory reference through Node.reference()
        "protocol.fetch",  # one per ProtocolEngine.fetch transaction
        "protocol.upgrade",  # one per write-ownership upgrade
    }
)

#: Event names every scheme may emit.
_COMMON_EVENTS = frozenset(
    {
        "phase",  # periodic refs/sec sample from the simulator
        "msg",  # one crossbar transfer
        "protocol.inject",  # item re-injected during replacement
        "protocol.invalidate",  # one invalidation sent to a holder
        "sim.barrier",  # a node arrived at a barrier
        "sim.lock",  # a node acquired a lock
    }
)

#: Translation events only V-COMA (home-directory DLB) emits.
_DLB_EVENTS = frozenset({"dlb_hit", "dlb_fill"})

#: Translation events only the processor-side TLB schemes emit.
_TLB_EVENTS = frozenset({"tlb_hit", "tlb_fill"})


class TraceSchemaError(ValueError):
    """A trace violated the frozen schema."""


def scheme_vocabulary(scheme: object) -> Dict[str, frozenset]:
    """The frozen span/event vocabulary for one scheme.

    ``scheme`` may be a :class:`~repro.core.schemes.Scheme` or its
    string value (as found in a trace's meta record).
    """
    if isinstance(scheme, Scheme):
        name = scheme.value
    else:
        name = str(scheme)
    if name == Scheme.V_COMA.value:
        events = _COMMON_EVENTS | _DLB_EVENTS
    else:
        events = _COMMON_EVENTS | _TLB_EVENTS
    return {"spans": SPAN_NAMES, "events": events}


_REQUIRED = {
    "meta": ("format", "scheme"),
    "span": ("id", "name", "t0", "t1"),
    "event": ("name", "t"),
}


def validate_trace(records: Iterable[Dict]) -> Dict[str, int]:
    """Validate a parsed trace against the frozen schema.

    Checks structural integrity (meta header first, required fields,
    unique span ids, every parent/span reference resolving to a span
    present in the trace, non-negative latencies) and the per-scheme
    vocabulary.  Spans are written when they *end*, so a child record
    precedes its parent's; references are therefore resolved against
    the full id set, not stream order.  Returns summary stats
    (``spans``, ``events``, ``roots``) on success and raises
    :class:`TraceSchemaError` on the first violation.
    """
    records = list(records)
    if not records:
        raise TraceSchemaError("empty trace: missing meta header")

    meta = records[0]
    if meta.get("kind") != "meta":
        raise TraceSchemaError(
            f"record 0: expected meta header, got {meta.get('kind')!r}"
        )
    _require(meta, "meta", 0)
    if meta["format"] != TRACE_FORMAT_VERSION:
        raise TraceSchemaError(
            f"unsupported trace format {meta['format']!r} "
            f"(expected {TRACE_FORMAT_VERSION})"
        )
    vocab = scheme_vocabulary(meta["scheme"])

    # Pass 1: collect span ids (and reject duplicates).
    span_ids: set = set()
    for index, record in enumerate(records[1:], start=1):
        if record.get("kind") == "span":
            _require(record, "span", index)
            span_id = record["id"]
            if span_id in span_ids:
                raise TraceSchemaError(
                    f"record {index}: duplicate span id {span_id}"
                )
            span_ids.add(span_id)

    # Pass 2: vocabulary, references, latencies.
    spans = events = roots = 0
    for index, record in enumerate(records[1:], start=1):
        kind = record.get("kind")
        if kind == "span":
            if record["name"] not in vocab["spans"]:
                raise TraceSchemaError(
                    f"record {index}: span name {record['name']!r} not in "
                    f"the {meta['scheme']} vocabulary"
                )
            parent = record.get("parent")
            if parent is None:
                roots += 1
            elif parent not in span_ids:
                raise TraceSchemaError(
                    f"record {index}: span {record['id']} has unknown "
                    f"parent {parent}"
                )
            if record["t1"] < record["t0"]:
                raise TraceSchemaError(
                    f"record {index}: span {record['id']} has negative "
                    f"latency (t0={record['t0']}, t1={record['t1']})"
                )
            spans += 1
        elif kind == "event":
            _require(record, "event", index)
            if record["name"] not in vocab["events"]:
                raise TraceSchemaError(
                    f"record {index}: event name {record['name']!r} not in "
                    f"the {meta['scheme']} vocabulary"
                )
            parent = record.get("span")
            if parent is not None and parent not in span_ids:
                raise TraceSchemaError(
                    f"record {index}: event {record['name']!r} references "
                    f"unknown span {parent}"
                )
            if record["t"] < 0:
                raise TraceSchemaError(
                    f"record {index}: event {record['name']!r} at negative "
                    f"time {record['t']}"
                )
            events += 1
        else:
            raise TraceSchemaError(f"record {index}: unknown kind {kind!r}")

    return {"spans": spans, "events": events, "roots": roots}


def _require(record: Dict, kind: str, index: int) -> None:
    missing: List[str] = [f for f in _REQUIRED[kind] if f not in record]
    if missing:
        raise TraceSchemaError(
            f"record {index}: {kind} record missing fields {missing}"
        )
