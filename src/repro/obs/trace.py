"""Structured span/event tracing with a ring buffer and JSONL streaming.

A :class:`Tracer` records two record shapes (see :mod:`repro.obs.schema`
for the frozen format):

* **spans** — timed regions with identity and a parent, one per
  protocol transaction (``protocol.fetch``), memory reference
  (``ref``), or whole run (``run``);
* **events** — point occurrences (``dlb_hit``, ``msg``, ``phase``)
  attached to the innermost open span.

Span nesting is tracked with a stack rather than explicit handles: the
simulator processes each transaction synchronously to completion, so
``begin``/``end`` pairs are strictly LIFO per machine.  Ids are
assigned at ``begin`` and parents captured then, so every reference in
the output resolves; records are *written* when a span ends (children
before parents in the stream).

Everything stays in a bounded ring buffer (newest records win) and,
when a path is given, also streams to a JSONL file with a ``meta``
header.  The hot paths in node/protocol/crossbar code only touch a
tracer through an ``is None`` check, so a detached tracer costs one
pointer comparison.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from sys import intern as _intern
from typing import Dict, Iterator, List, Optional

from repro.common.errors import ConfigurationError
from repro.obs.schema import TRACE_FORMAT_VERSION

#: Default ring-buffer capacity (records, not bytes).
DEFAULT_BUFFER_SIZE = 65536

#: Encoded records accumulated before a single batched file write.
FLUSH_BATCH = 512

# Fallback for values the fast path below doesn't handle inline.
_json_encode = json.JSONEncoder(
    sort_keys=True, separators=(",", ":"), check_circular=False
).encode


def _encode(record: Dict) -> str:
    """Serialize one flat trace record to compact JSON.

    Trace records are single-level dicts of scalars by construction,
    which lets this skip :class:`json.JSONEncoder`'s generic machinery
    (~2x on the enabled-tracing hot path).  Keys follow insertion
    order, which is deterministic because every record shape is built
    by exactly one code path; strings needing escapes and non-scalar
    values fall back to the stdlib encoder.
    """
    parts = []
    append = parts.append
    for key, value in record.items():
        tv = type(value)
        if tv is int:
            append(f'"{key}":{value}')
        elif tv is str:
            if '"' not in value and "\\" not in value and value.isprintable():
                append(f'"{key}":"{value}"')
            else:
                append(f'"{key}":{_json_encode(value)}')
        elif value is None:
            append(f'"{key}":null')
        elif tv is bool:
            append(f'"{key}":true' if value else f'"{key}":false')
        else:
            append(f'"{key}":{_json_encode(value)}')
    return "{" + ",".join(parts) + "}"


def _compact(record: Dict) -> str:
    return _encode(record)


class Tracer:
    """Collects spans and events; optionally streams them to JSONL.

    Parameters
    ----------
    path:
        Optional JSONL output path.  When given, every record (meta
        header included) is streamed to the file; encoded lines are
        batched ``FLUSH_BATCH`` at a time to keep the per-record cost
        off the hot path (``flush()``/``close()`` drain the batch).
        The ring buffer is maintained either way.
    buffer_size:
        Ring-buffer capacity in records.  When full, the oldest
        records are dropped from memory (the file, if any, keeps
        everything).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        buffer_size: int = DEFAULT_BUFFER_SIZE,
    ) -> None:
        if buffer_size <= 0:
            raise ConfigurationError("buffer_size must be positive")
        self._path = str(path) if path is not None else None
        self._file = _open_trace(self._path, "wt") if self._path else None
        self.records: deque = deque(maxlen=buffer_size)
        self._maxlen = buffer_size
        self._stack: List[Dict] = []
        self._next_id = 1
        self._last_time = 0
        self._meta: Optional[Dict] = None
        self.dropped = 0  # records evicted from the ring buffer
        self._pending: List[str] = []  # encoded lines awaiting a batched write

    # -- lifecycle -----------------------------------------------------
    def set_meta(self, scheme: str, nodes: int, **extra: object) -> None:
        """Write the meta header.  Called once when a machine attaches."""
        if self._meta is not None:
            return
        record = {
            "kind": "meta",
            "format": TRACE_FORMAT_VERSION,
            "scheme": str(scheme),
            "nodes": int(nodes),
        }
        record.update(extra)
        self._meta = record
        self._emit(record)

    @property
    def meta(self) -> Optional[Dict]:
        return self._meta

    def flush(self) -> None:
        if self._file is not None:
            if self._pending:
                self._file.write("".join(self._pending))
                self._pending.clear()
            self._file.flush()

    def close(self) -> None:
        """End any still-open spans (at the last seen time) and close
        the output file."""
        while self._stack:
            self.end(self._last_time, truncated=True)
        if self._file is not None:
            if self._pending:
                self._file.write("".join(self._pending))
                self._pending.clear()
            self._file.close()
            self._file = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- recording -----------------------------------------------------
    @property
    def current_span_id(self) -> Optional[int]:
        return self._stack[-1]["id"] if self._stack else None

    @property
    def depth(self) -> int:
        return len(self._stack)

    @property
    def last_time(self) -> int:
        """Largest timestamp seen so far — the clock for instrumentation
        sites (TLB/DLB hooks) that don't carry their own ``now``."""
        return self._last_time

    def begin(
        self, name: str, t: int, node: Optional[int] = None, **attrs: object
    ) -> int:
        """Open a span; returns its id.  The parent is the innermost
        span already open."""
        t = int(t)
        span_id = self._next_id
        self._next_id = span_id + 1
        stack = self._stack
        record: Dict = {
            "kind": "span",
            "id": span_id,
            "parent": stack[-1]["id"] if stack else None,
            "name": _intern(name),
            "t0": t,
            "t1": None,
        }
        if node is not None:
            record["node"] = int(node)
        if attrs:
            record.update(attrs)
        stack.append(record)
        if t > self._last_time:
            self._last_time = t
        return span_id

    def end(self, t: int, **attrs: object) -> Dict:
        """Close the innermost span and emit its record."""
        if not self._stack:
            raise ConfigurationError("Tracer.end() with no open span")
        t = int(t)
        record = self._stack.pop()
        record["t1"] = t
        if attrs:
            record.update(attrs)
        if t > self._last_time:
            self._last_time = t
        self._emit(record)
        return record

    def event(
        self, name: str, t: int, node: Optional[int] = None, **attrs: object
    ) -> None:
        """Record a point event under the innermost open span."""
        t = int(t)
        stack = self._stack
        record: Dict = {
            "kind": "event",
            "span": stack[-1]["id"] if stack else None,
            "name": _intern(name),
            "t": t,
        }
        if node is not None:
            record["node"] = int(node)
        if attrs:
            record.update(attrs)
        if t > self._last_time:
            self._last_time = t
        self._emit(record)

    @contextmanager
    def span(
        self, name: str, t0: int, t1_default: Optional[int] = None, **attrs: object
    ) -> Iterator[Dict]:
        """Context-managed span.  Mutate the yielded dict to set
        attributes; set ``dict['t1']`` before exit (else ``t1_default``
        or ``t0`` is used)."""
        self.begin(name, t0, **attrs)
        handle: Dict = {}
        try:
            yield handle
        finally:
            t1 = handle.pop("t1", t1_default if t1_default is not None else t0)
            self.end(t1, **handle)

    # -- internals -----------------------------------------------------
    def _emit(self, record: Dict) -> None:
        records = self.records
        if len(records) == self._maxlen:
            self.dropped += 1
        records.append(record)
        if self._file is not None:
            pending = self._pending
            pending.append(_encode(record) + "\n")
            if len(pending) >= FLUSH_BATCH:
                self._file.write("".join(pending))
                pending.clear()

    def counts(self) -> Dict[str, int]:
        """Per-name record counts currently in the ring buffer."""
        out: Dict[str, int] = {}
        for record in self.records:
            if record["kind"] == "meta":
                continue
            key = record["name"]
            out[key] = out.get(key, 0) + 1
        return out

    def __repr__(self) -> str:
        target = self._path or "<memory>"
        return (
            f"Tracer({target}, {len(self.records)} buffered, "
            f"{self.depth} open)"
        )


def _open_trace(path: str, mode: str):
    """Open a trace path for text I/O, transparently gzipped for
    ``.gz`` paths (committed golden traces are stored compressed)."""
    if str(path).endswith(".gz"):
        import gzip

        return gzip.open(path, mode, encoding="utf-8")
    return open(path, mode.replace("t", ""), encoding="utf-8")


def read_trace(path: str) -> List[Dict]:
    """Parse a JSONL trace file (optionally ``.gz``) back into records."""
    records: List[Dict] = []
    with _open_trace(path, "rt") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError as exc:
                raise ConfigurationError(
                    f"{path}:{line_no}: malformed trace line ({exc})"
                ) from None
    return records


def span_tree(records: List[Dict]) -> Dict[Optional[int], List[Dict]]:
    """Index spans by parent id (``None`` key holds the roots)."""
    tree: Dict[Optional[int], List[Dict]] = {}
    for record in records:
        if record.get("kind") == "span":
            tree.setdefault(record.get("parent"), []).append(record)
    return tree
