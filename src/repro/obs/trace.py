"""Structured span/event tracing with a ring buffer and JSONL streaming.

A :class:`Tracer` records two record shapes (see :mod:`repro.obs.schema`
for the frozen format):

* **spans** — timed regions with identity and a parent, one per
  protocol transaction (``protocol.fetch``), memory reference
  (``ref``), or whole run (``run``);
* **events** — point occurrences (``dlb_hit``, ``msg``, ``phase``)
  attached to the innermost open span.

Span nesting is tracked with a stack rather than explicit handles: the
simulator processes each transaction synchronously to completion, so
``begin``/``end`` pairs are strictly LIFO per machine.  Ids are
assigned at ``begin`` and parents captured then, so every reference in
the output resolves; records are *written* when a span ends (children
before parents in the stream).

A memory-only tracer keeps everything in a bounded ring buffer
(newest records win); a tracer with a path streams every record to a
JSONL file with a ``meta`` header instead — the file keeps the full
history, so the per-record ring bookkeeping is skipped entirely on
that mode's hot path.  The hot paths in node/protocol/crossbar code
only touch a tracer through an ``is None`` check, so a detached
tracer costs one pointer comparison.

Two recording paths share the stack, the id counter, and the output
stream:

* the **generic** path (:meth:`Tracer.begin` / :meth:`Tracer.end` /
  :meth:`Tracer.event`) builds one dict per record and walks it in
  :func:`_encode` — flexible, used for rare records (``meta``,
  ``run``, ``phase``, ``sim.*``);
* the **packed** path (:meth:`Tracer.event_emitter` /
  :meth:`Tracer.span_emitter`) is for hot, fixed-shape records: the
  call site hoists an emitter once and each record becomes one
  ``struct``-packed ``bytes`` object — a codec-id byte followed by the
  slot values as little-endian int64s.  Memory-only tracers keep the
  packed records in the ring as-is (``bytes`` is untracked by the
  cycle GC, so a full 65536-entry ring adds nothing to collection
  sweeps); file-backed tracers append them to a binary batch that is
  rendered to JSONL text in bulk — by the compiled ``fs_trace_render``
  kernel when the timing backend is available, else by a Python
  fallback.  Ring entries decode
  back to dicts lazily (``records`` iteration / ``counts()``), and
  every codec's rendering is verified against :func:`_encode` at
  creation, so the on-disk byte stream is identical whichever path —
  or renderer — produced a record.
"""

from __future__ import annotations

import json
import struct
from collections import deque
from contextlib import contextmanager
from sys import intern as _intern
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.obs.schema import TRACE_FORMAT_VERSION

#: Default ring-buffer capacity (records, not bytes).
DEFAULT_BUFFER_SIZE = 65536

#: Encoded records accumulated before a single batched file write.
FLUSH_BATCH = 512

#: Packed bytes accumulated before one bulk render + file write
#: (a few thousand records at typical shapes; the render is O(bytes)
#: so larger batches just amortize the drain call better).
PACKED_FLUSH_BYTES = 1 << 17

# Fallback for values the fast path below doesn't handle inline.
_json_encode = json.JSONEncoder(
    sort_keys=True, separators=(",", ":"), check_circular=False
).encode

# The compiled renderer rides in the fastsim library; resolved lazily so
# importing this module never triggers a build, and kept module-global
# because the library is process-wide anyway.
_RENDER_BACKEND = None
_render_resolved = False


def _render_lib():
    """The loaded fastsim library (for ``fs_trace_render``) or None."""
    global _RENDER_BACKEND, _render_resolved
    if not _render_resolved:
        _render_resolved = True
        try:
            from repro.core.timing_kernels import get_backend

            _RENDER_BACKEND = get_backend()
        except Exception:
            _RENDER_BACKEND = None
    return None if _RENDER_BACKEND is None else _RENDER_BACKEND.lib


def _encode(record: Dict) -> str:
    """Serialize one flat trace record to compact JSON.

    Trace records are single-level dicts of scalars by construction,
    which lets this skip :class:`json.JSONEncoder`'s generic machinery
    (~2x on the enabled-tracing hot path).  Keys follow insertion
    order, which is deterministic because every record shape is built
    by exactly one code path; strings needing escapes and non-scalar
    values fall back to the stdlib encoder.
    """
    parts = []
    append = parts.append
    for key, value in record.items():
        tv = type(value)
        if tv is int:
            append(f'"{key}":{value}')
        elif tv is str:
            if '"' not in value and "\\" not in value and value.isprintable():
                append(f'"{key}":"{value}"')
            else:
                append(f'"{key}":{_json_encode(value)}')
        elif value is None:
            append(f'"{key}":null')
        elif tv is bool:
            append(f'"{key}":true' if value else f'"{key}":false')
        else:
            append(f'"{key}":{_json_encode(value)}')
    return "{" + ",".join(parts) + "}"


def _compact(record: Dict) -> str:
    return _encode(record)


# Slot kinds shared with fs_trace_render: a plain int, an int rendered
# as ``null`` when negative (optional span/parent ids), or an index
# into the tracer's global string table (enum choices, true/false).
_SLOT_INT = 0
_SLOT_NULLABLE = 1
_SLOT_STRING = 2


class _PackedCodec:
    """Fixed layout of one hot record shape.

    A packed record is ``[codec id u8][slot values as int64 LE]`` with
    slots in JSON key order.  Enum and bool slots hold ids into the
    owning tracer's global string table; the call site passes the
    choice *index* (or the bool) and the emitter maps it through a
    per-slot ``gmaps`` tuple when packing.  ``segments`` holds the
    literal JSON text between slots — quoting included — so rendering
    is a strict alternation of literal copy and value formatting, in
    C or in :meth:`render`.  Both are verified against :func:`_encode`
    at construction.
    """

    __slots__ = (
        "kind",
        "name",
        "begin_keys",
        "end_keys",
        "slots",
        "id",
        "struct",
        "size",
        "segments",
        "slot_kinds",
        "gmaps",
        "_strings",
    )

    def __init__(
        self,
        tracer: "Tracer",
        cid: int,
        kind: str,
        name: str,
        begin_keys: Tuple[str, ...],
        end_keys: Tuple[str, ...],
        slots: Dict[str, object],
    ) -> None:
        self.kind = kind
        self.name = _intern(name)
        self.begin_keys = begin_keys
        self.end_keys = end_keys
        #: key -> None (int slot) | tuple of choices (enum) | bool.
        self.slots = slots
        self.id = cid
        self._strings = tracer._strings
        head = 2 if kind == "event" else 4  # (span, t) / (id, parent, t0, t1)
        nvals = len(begin_keys) + len(end_keys)
        self.struct = struct.Struct("<B" + "q" * (head + nvals))
        self.size = self.struct.size
        gmaps = []
        for key in begin_keys + end_keys:
            conv = slots[key]
            if conv is None:
                gmaps.append(None)
            elif conv is bool:
                gmaps.append(
                    (tracer._global_string("false"), tracer._global_string("true"))
                )
            else:
                gmaps.append(tuple(tracer._global_string(c) for c in conv))
        self.gmaps = tuple(gmaps)
        self.segments, self.slot_kinds = self._build_layout()
        self._selfcheck()

    # -- construction ---------------------------------------------------
    def _build_layout(self) -> Tuple[List[str], bytes]:
        """Literal segments around each slot, and one kind byte per
        slot.  Enum slots are quoted (the quotes live in the adjacent
        segments); bool slots render their string unquoted."""
        if self.kind == "event":
            prefixes = ['{"kind":"event","span":', f',"name":"{self.name}","t":']
            kinds = [_SLOT_NULLABLE, _SLOT_INT]
        else:
            prefixes = [
                '{"kind":"span","id":',
                ',"parent":',
                f',"name":"{self.name}","t0":',
                ',"t1":',
            ]
            kinds = [_SLOT_INT, _SLOT_NULLABLE, _SLOT_INT, _SLOT_INT]
        quoted = [False] * len(prefixes)
        for key in self.begin_keys + self.end_keys:
            conv = self.slots[key]
            prefixes.append(f',"{key}":')
            quoted.append(conv is not None and conv is not bool)
            kinds.append(_SLOT_INT if conv is None else _SLOT_STRING)
        segments: List[str] = []
        for i, prefix in enumerate(prefixes):
            seg = ('"' if i > 0 and quoted[i - 1] else "") + prefix
            segments.append(seg + '"' if quoted[i] else seg)
        segments.append(('"' if quoted[-1] else "") + "}\n")
        return segments, bytes(kinds)

    def render(self, values: Sequence[int]) -> str:
        """Python fallback for ``fs_trace_render``: one record's slot
        values (codec id already stripped) to its JSONL line."""
        strings = self._strings
        segments = self.segments
        kinds = self.slot_kinds
        parts = []
        for j, v in enumerate(values):
            parts.append(segments[j])
            k = kinds[j]
            if k == _SLOT_STRING:
                parts.append(strings[v])
            elif k == _SLOT_NULLABLE and v < 0:
                parts.append("null")
            else:
                parts.append(str(v))
        parts.append(segments[-1])
        return "".join(parts)

    def _selfcheck(self) -> None:
        """Rendering must reproduce :func:`_encode` byte-for-byte, for
        both the present and the null span/parent head."""
        sample = []
        keys = self.begin_keys + self.end_keys
        for i, key in enumerate(keys):
            conv = self.slots[key]
            if conv is None:
                sample.append(101 + i)
            elif conv is bool:
                sample.append(self.gmaps[i][1])
            else:
                sample.append(self.gmaps[i][0])
        heads = ((31, 57), (-1, 57)) if self.kind == "event" else ((11, 3, 5, 9), (11, -1, 5, 9))
        for head in heads:
            packed = self.struct.pack(self.id, *head, *sample)
            rendered = self.render(self.struct.unpack(packed)[1:])
            expected = _encode(self.decode(packed)) + "\n"
            if rendered != expected:
                raise ConfigurationError(
                    f"packed layout for {self.kind} '{self.name}' diverges "
                    f"from the generic encoder: {rendered!r} != {expected!r}"
                )

    # -- decoding (cold: ring-buffer reads, truncated closes) -----------
    def decode(self, packed: bytes) -> Dict:
        """Rebuild the dict the generic path would have recorded."""
        values = self.struct.unpack(packed)
        strings = self._strings
        if self.kind == "event":
            record: Dict = {
                "kind": "event",
                "span": None if values[1] == -1 else values[1],
                "name": self.name,
                "t": values[2],
            }
            body = values[3:]
        else:
            record = {
                "kind": "span",
                "id": values[1],
                "parent": None if values[2] == -1 else values[2],
                "name": self.name,
                "t0": values[3],
                "t1": values[4],
            }
            body = values[5:]
        for key, value in zip(self.begin_keys + self.end_keys, body):
            conv = self.slots[key]
            if conv is None:
                record[key] = value
            elif conv is bool:
                record[key] = strings[value] == "true"
            else:
                record[key] = strings[value]
        return record

    def open_to_dict(self, entry: Tuple) -> Dict:
        """Materialize a still-open packed span (stack entry, raw
        caller values) as the dict the generic ``begin`` would have
        pushed — used when a packed span is closed by the generic
        :meth:`Tracer.end` (e.g. truncation at ``close()``)."""
        record: Dict = {
            "kind": "span",
            "id": entry[1],
            "parent": None if entry[2] == -1 else entry[2],
            "name": self.name,
            "t0": entry[3],
            "t1": None,
        }
        for key, value in zip(self.begin_keys, entry[4:]):
            conv = self.slots[key]
            if conv is None:
                record[key] = value
            elif conv is bool:
                record[key] = bool(value)
            else:
                record[key] = conv[value]
        return record


class _RingView:
    """Read-only dict view of the ring buffer; packed entries decode
    lazily, one record per access."""

    __slots__ = ("_ring", "_codecs")

    def __init__(self, ring: deque, codecs: List[_PackedCodec]) -> None:
        self._ring = ring
        self._codecs = codecs

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[Dict]:
        codecs = self._codecs
        for entry in self._ring:
            yield entry if entry.__class__ is dict else codecs[entry[0]].decode(entry)

    def __getitem__(self, index):
        if isinstance(index, slice):
            codecs = self._codecs
            return [
                e if e.__class__ is dict else codecs[e[0]].decode(e)
                for e in list(self._ring)[index]
            ]
        entry = self._ring[index]
        return entry if entry.__class__ is dict else self._codecs[entry[0]].decode(entry)

    def __repr__(self) -> str:
        return f"_RingView({len(self._ring)} records)"


def _slot_table(
    keys: Tuple[str, ...], enums: Optional[Dict], bools: Sequence[str]
) -> Dict[str, object]:
    slots: Dict[str, object] = {}
    for key in keys:
        if enums and key in enums:
            slots[key] = tuple(_intern(str(c)) for c in enums[key])
        elif key in bools:
            slots[key] = bool
        else:
            slots[key] = None
    return slots


def _shape_key(kind, name, begin_keys, end_keys, enums, bools):
    frozen_enums = (
        tuple(sorted((k, tuple(map(str, v))) for k, v in enums.items()))
        if enums
        else ()
    )
    return (kind, name, tuple(begin_keys), tuple(end_keys), frozen_enums, tuple(bools))


class Tracer:
    """Collects spans and events; optionally streams them to JSONL.

    Parameters
    ----------
    path:
        Optional JSONL output path.  When given, every record (meta
        header included) is streamed to the file; encoded lines are
        batched ``FLUSH_BATCH`` at a time (packed records
        ``PACKED_FLUSH_BYTES`` of binary at a time) to keep the
        per-record cost off the hot path (``flush()``/``close()``
        drain the batches).  A file-backed tracer does **not**
        maintain the in-memory ring — the file holds the full record
        stream; ``records`` is the memory-only view.
    buffer_size:
        Ring-buffer capacity in records (memory-only tracers).  When
        full, the oldest records are dropped and counted in
        ``dropped``.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        buffer_size: int = DEFAULT_BUFFER_SIZE,
    ) -> None:
        if buffer_size <= 0:
            raise ConfigurationError("buffer_size must be positive")
        self._path = str(path) if path is not None else None
        # The write side is binary: rendered batches come out of
        # fs_trace_render as raw ASCII and go to the file without a
        # str round-trip (the content is pure UTF-8 either way).
        self._file = _open_trace(self._path, "wb") if self._path else None
        # Ring entries are dicts (generic path) or packed bytes whose
        # first byte indexes ``_codecs`` (packed path).  Never rebound:
        # packed emitters close over it.
        self._ring: deque = deque(maxlen=buffer_size)
        self._maxlen = buffer_size
        # Mixed stack: dicts for generic spans, flat tuples
        # (codec, id, parent, t0, *begin_values) for packed ones, with
        # a parallel list of span ids shared by both paths.
        self._stack: List = []
        self._ids: List[int] = []
        self._next_id = 1
        self._last_time = 0
        self._meta: Optional[Dict] = None
        self.dropped = 0  # records evicted from the ring buffer
        self._pending: List[bytes] = []  # encoded lines awaiting a batched write
        self._packed = bytearray()  # packed records awaiting a bulk render
        self._codecs: List[_PackedCodec] = []
        self._strings: List[str] = []  # global string table (codecs index it)
        self._string_ids: Dict[str, int] = {}
        self._emitters: Dict = {}  # shape -> compiled emitter(s)
        self._ctables = None  # cached cffi tables for fs_trace_render
        self._cbuf = None
        self._cbuf_cap = 0

    # -- lifecycle -----------------------------------------------------
    def set_meta(self, scheme: str, nodes: int, **extra: object) -> None:
        """Write the meta header.  Called once when a machine attaches."""
        if self._meta is not None:
            return
        record = {
            "kind": "meta",
            "format": TRACE_FORMAT_VERSION,
            "scheme": str(scheme),
            "nodes": int(nodes),
        }
        record.update(extra)
        self._meta = record
        self._emit(record)

    @property
    def meta(self) -> Optional[Dict]:
        return self._meta

    @property
    def records(self) -> _RingView:
        """The ring buffer as lazily decoded dict records (empty for
        file-backed tracers — the file holds the stream; use
        :func:`read_trace`)."""
        return _RingView(self._ring, self._codecs)

    def flush(self) -> None:
        if self._file is not None:
            if self._packed:
                self._drain_packed()
            if self._pending:
                self._file.write(b"".join(self._pending))
                self._pending.clear()
            self._file.flush()

    def close(self) -> None:
        """End any still-open spans (at the last seen time) and close
        the output file."""
        while self._stack:
            self.end(self._last_time, truncated=True)
        if self._file is not None:
            if self._packed:
                self._drain_packed()
            if self._pending:
                self._file.write(b"".join(self._pending))
                self._pending.clear()
            self._file.close()
            self._file = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- recording -----------------------------------------------------
    @property
    def current_span_id(self) -> Optional[int]:
        return self._ids[-1] if self._ids else None

    @property
    def depth(self) -> int:
        return len(self._stack)

    @property
    def last_time(self) -> int:
        """Largest timestamp seen so far — the clock for instrumentation
        sites (TLB/DLB hooks) that don't carry their own ``now``."""
        return self._last_time

    def begin(
        self, name: str, t: int, node: Optional[int] = None, **attrs: object
    ) -> int:
        """Open a span; returns its id.  The parent is the innermost
        span already open."""
        t = int(t)
        span_id = self._next_id
        self._next_id = span_id + 1
        ids = self._ids
        record: Dict = {
            "kind": "span",
            "id": span_id,
            "parent": ids[-1] if ids else None,
            "name": _intern(name),
            "t0": t,
            "t1": None,
        }
        if node is not None:
            record["node"] = int(node)
        if attrs:
            record.update(attrs)
        self._stack.append(record)
        ids.append(span_id)
        if t > self._last_time:
            self._last_time = t
        return span_id

    def end(self, t: int, **attrs: object) -> Dict:
        """Close the innermost span and emit its record."""
        if not self._stack:
            raise ConfigurationError("Tracer.end() with no open span")
        t = int(t)
        entry = self._stack.pop()
        self._ids.pop()
        record = entry if entry.__class__ is dict else entry[0].open_to_dict(entry)
        record["t1"] = t
        if attrs:
            record.update(attrs)
        if t > self._last_time:
            self._last_time = t
        self._emit(record)
        return record

    def event(
        self, name: str, t: int, node: Optional[int] = None, **attrs: object
    ) -> None:
        """Record a point event under the innermost open span."""
        t = int(t)
        ids = self._ids
        record: Dict = {
            "kind": "event",
            "span": ids[-1] if ids else None,
            "name": _intern(name),
            "t": t,
        }
        if node is not None:
            record["node"] = int(node)
        if attrs:
            record.update(attrs)
        if t > self._last_time:
            self._last_time = t
        self._emit(record)

    @contextmanager
    def span(
        self, name: str, t0: int, t1_default: Optional[int] = None, **attrs: object
    ) -> Iterator[Dict]:
        """Context-managed span.  Mutate the yielded dict to set
        attributes; set ``dict['t1']`` before exit (else ``t1_default``
        or ``t0`` is used)."""
        self.begin(name, t0, **attrs)
        handle: Dict = {}
        try:
            yield handle
        finally:
            t1 = handle.pop("t1", t1_default if t1_default is not None else t0)
            self.end(t1, **handle)

    # -- packed emitters ------------------------------------------------
    def event_emitter(
        self,
        name: str,
        keys: Tuple[str, ...],
        enums: Optional[Dict[str, Tuple[str, ...]]] = None,
        bools: Sequence[str] = (),
    ):
        """Build a struct-packing emitter for one hot event shape.

        Returns ``emit(t, *values)`` taking one int per key, in key
        order: plain ints as-is, bool slots as ``True``/``False``, enum
        slots as an index into that key's ``enums`` tuple.  The call
        site hoists the emitter once (so the per-event cost is one
        call and one ``struct.pack``) and must pass values that match
        the declared layout.  Identical shapes share one emitter.
        """
        shape = _shape_key("event", name, keys, (), enums, bools)
        emit = self._emitters.get(shape)
        if emit is None:
            codec = self._new_codec(
                "event", name, tuple(keys), (), _slot_table(tuple(keys), enums, bools)
            )
            emit = self._compile_event(codec)
            self._emitters[shape] = emit
        return emit

    def span_emitter(
        self,
        name: str,
        begin_keys: Tuple[str, ...],
        end_keys: Tuple[str, ...],
        enums: Optional[Dict[str, Tuple[str, ...]]] = None,
        bools: Sequence[str] = (),
    ):
        """Build ``(begin, end)`` struct-packing emitters for one hot
        span shape.  ``begin(t0, *begin_values)`` pushes the open span
        (sharing the tracer's stack with the generic path, so nesting
        and ids interleave correctly); ``end(t1, *end_values)`` pops it
        and emits the packed record.  Pairs must close LIFO, like the
        generic API."""
        shape = _shape_key("span", name, begin_keys, end_keys, enums, bools)
        pair = self._emitters.get(shape)
        if pair is None:
            keys = tuple(begin_keys) + tuple(end_keys)
            codec = self._new_codec(
                "span",
                name,
                tuple(begin_keys),
                tuple(end_keys),
                _slot_table(keys, enums, bools),
            )
            pair = self._compile_span(codec)
            self._emitters[shape] = pair
        return pair

    def _global_string(self, value: str) -> int:
        """Intern ``value`` into the tracer-wide string table shared by
        all codecs (and by ``fs_trace_render``); returns its id."""
        sid = self._string_ids.get(value)
        if sid is None:
            sid = len(self._strings)
            self._strings.append(_intern(str(value)))
            self._string_ids[value] = sid
            self._ctables = None
        return sid

    def _new_codec(self, kind, name, begin_keys, end_keys, slots) -> _PackedCodec:
        cid = len(self._codecs)
        if cid > 255:
            raise ConfigurationError("too many packed trace shapes (max 256)")
        codec = _PackedCodec(self, cid, kind, name, begin_keys, end_keys, slots)
        self._codecs.append(codec)
        self._ctables = None
        return codec

    def _emitter_env(self, codec: _PackedCodec) -> Dict:
        env: Dict = {
            "_tracer": self,
            "_ids": self._ids,
            "_stack": self._stack,
            "_ring": self._ring,
            "_maxlen": self._maxlen,
            "_buf": self._packed,
            "_extend": self._packed.extend,
            "_limit": PACKED_FLUSH_BYTES,
            "_codec": codec,
            "_cid": codec.id,
            "_pack": codec.struct.pack,
            "_ConfigurationError": ConfigurationError,
        }
        for i, gmap in enumerate(codec.gmaps):
            if gmap is not None:
                env[f"_g{i}"] = gmap
        return env

    @staticmethod
    def _pack_exprs(codec: _PackedCodec, names: List[str]) -> List[str]:
        # Enum/bool slots store global string ids; the caller passes the
        # choice index (or the bool) and the emitter maps it here.
        return [
            name if gmap is None else f"_g{i}[{name}]"
            for i, (gmap, name) in enumerate(zip(codec.gmaps, names))
        ]

    @staticmethod
    def _bind(env: Dict, *names: str) -> str:
        """Default-argument bindings for the generated emitters: every
        hot name becomes a parameter default, so the body runs on
        LOAD_FAST instead of module-dict lookups (~25ns per access on
        paths that fire half a million times per run)."""
        return "".join(f", {name}={name}" for name in names if name in env)

    def _record_stmts(self) -> str:
        """The generated statements that store one packed record ``b``
        at time ``t``: file-backed tracers batch it for the bulk
        renderer (the file keeps every record, so the ring buffer is
        skipped entirely); memory-only tracers maintain the ring."""
        if self._file is not None:
            return (
                f"    if _tracer._file is not None:\n"
                f"        _extend(b)\n"
                f"        if len(_buf) >= _limit:\n"
                f"            _tracer._flush_packed()\n"
            )
        return (
            f"    if len(_ring) == _maxlen:\n"
            f"        _tracer.dropped += 1\n"
            f"    _ring.append(b)\n"
        )

    def _compile_event(self, codec: _PackedCodec):
        names = [f"v{i}" for i in range(len(codec.begin_keys))]
        args = ", ".join(names)
        packs = ", ".join(self._pack_exprs(codec, names))
        env = self._emitter_env(codec)
        gnames = [f"_g{i}" for i in range(len(codec.gmaps))]
        binds = self._bind(
            env, "_pack", "_cid", "_ids", "_ring", "_maxlen", "_tracer",
            "_extend", "_buf", "_limit", *gnames,
        )
        src = (
            f"def emit(t, {args}{binds}):\n"
            f"    b = _pack(_cid, _ids[-1] if _ids else -1, t, {packs})\n"
            f"{self._record_stmts()}"
            f"    if t > _tracer._last_time:\n"
            f"        _tracer._last_time = t\n"
        )
        exec(compile(src, f"<trace-emitter event:{codec.name}>", "exec"), env)
        return env["emit"]

    def _compile_span(self, codec: _PackedCodec):
        nb = len(codec.begin_keys)
        bnames = [f"v{i}" for i in range(nb)]
        enames = [f"v{i}" for i in range(nb, nb + len(codec.end_keys))]
        bargs = ", ".join(bnames)
        eargs = ", ".join(enames)
        unpack = "".join(
            f"    {name} = entry[{i + 4}]\n" for i, name in enumerate(bnames)
        )
        packs = ", ".join(self._pack_exprs(codec, bnames + enames))
        env = self._emitter_env(codec)
        gnames = [f"_g{i}" for i in range(len(codec.gmaps))]
        bbinds = self._bind(env, "_tracer", "_ids", "_stack", "_codec")
        ebinds = self._bind(
            env, "_pack", "_cid", "_ids", "_stack", "_codec", "_ring",
            "_maxlen", "_tracer", "_extend", "_buf", "_limit", *gnames,
        )
        begin_src = (
            f"def begin(t, {bargs}{bbinds}):\n"
            f"    sid = _tracer._next_id\n"
            f"    _tracer._next_id = sid + 1\n"
            f"    parent = _ids[-1] if _ids else -1\n"
            f"    _stack.append((_codec, sid, parent, t, {bargs}))\n"
            f"    _ids.append(sid)\n"
            f"    if t > _tracer._last_time:\n"
            f"        _tracer._last_time = t\n"
            f"    return sid\n"
        )
        end_src = (
            f"def end(t, {eargs}{ebinds}):\n"
            f"    entry = _stack.pop()\n"
            f"    if entry.__class__ is not tuple or entry[0] is not _codec:\n"
            f"        _stack.append(entry)\n"
            f"        raise _ConfigurationError(\n"
            f"            'packed end({codec.name}) does not match the innermost open span'\n"
            f"        )\n"
            f"    _ids.pop()\n"
            f"{unpack}"
            f"    b = _pack(_cid, entry[1], entry[2], entry[3], t, {packs})\n"
            f"{self._record_stmts()}"
            f"    if t > _tracer._last_time:\n"
            f"        _tracer._last_time = t\n"
        )
        exec(compile(begin_src, f"<trace-emitter begin:{codec.name}>", "exec"), env)
        exec(compile(end_src, f"<trace-emitter end:{codec.name}>", "exec"), env)
        return env["begin"], env["end"]

    # -- rendering (packed batch -> JSONL bytes) ------------------------
    def _drain_packed(self) -> None:
        """Render the binary batch and move it onto ``_pending`` (in
        stream order: pending lines always precede batched records)."""
        buf = self._packed
        if buf:
            self._pending.append(self._render_packed(buf))
            buf.clear()

    def _flush_packed(self) -> None:
        """Called by packed emitters when the binary batch fills: write
        any pending lines (they precede the batch in stream order),
        then render the batch straight to the file."""
        pending = self._pending
        if pending:
            self._file.write(b"".join(pending))
            pending.clear()
        buf = self._packed
        if buf:
            self._file.write(self._render_packed(buf))
            buf.clear()

    def _render_packed(self, data) -> bytes:
        lib = _render_lib()
        if lib is None:
            return self._render_packed_py(bytes(data))
        tables = self._ctables
        if tables is None:
            tables = self._ctables = self._build_ctables()
        ffi = _RENDER_BACKEND.ffi
        cap = self._cbuf_cap
        need = 4 * len(data) + 4096
        if cap < need:
            cap = max(need, 1 << 16)
            self._cbuf = ffi.new("char[]", cap)
            self._cbuf_cap = cap
        stream = ffi.from_buffer(data)
        while True:
            n = lib.fs_trace_render(stream, len(data), *tables, self._cbuf, cap)
            if n >= 0:
                return ffi.buffer(self._cbuf, n)[:]
            if n == -1:  # output buffer too small: grow and retry
                cap *= 2
                self._cbuf = ffi.new("char[]", cap)
                self._cbuf_cap = cap
                continue
            raise ConfigurationError(
                "compiled trace renderer rejected the packed stream"
            )

    def _render_packed_py(self, data: bytes) -> bytes:
        codecs = self._codecs
        parts = []
        pos = 0
        end = len(data)
        while pos < end:
            codec = codecs[data[pos]]
            parts.append(codec.render(codec.struct.unpack_from(data, pos)[1:]))
            pos += codec.size
        return "".join(parts).encode("utf-8")

    def _build_ctables(self) -> Tuple:
        """cffi argument block for ``fs_trace_render`` (codec layouts +
        the global string table); rebuilt when either changes."""
        ffi = _RENDER_BACKEND.ffi
        nslots: List[int] = []
        kind_off: List[int] = []
        seg_base: List[int] = []
        kinds = bytearray()
        seg_blob: List[bytes] = []
        seg_off = [0]
        pos = 0
        for codec in self._codecs:
            nslots.append(len(codec.slot_kinds))
            kind_off.append(len(kinds))
            kinds.extend(codec.slot_kinds)
            seg_base.append(len(seg_off) - 1)
            for seg in codec.segments:
                raw = seg.encode("utf-8")
                seg_blob.append(raw)
                pos += len(raw)
                seg_off.append(pos)
        str_blob: List[bytes] = []
        str_off = [0]
        spos = 0
        for value in self._strings:
            raw = value.encode("utf-8")
            str_blob.append(raw)
            spos += len(raw)
            str_off.append(spos)
        return (
            ffi.new("int32_t[]", nslots),
            ffi.new("int32_t[]", kind_off),
            bytes(kinds),
            b"".join(seg_blob),
            ffi.new("int64_t[]", seg_off),
            ffi.new("int32_t[]", seg_base),
            b"".join(str_blob),
            ffi.new("int64_t[]", str_off),
            len(self._strings),
        )

    # -- internals -----------------------------------------------------
    def _emit(self, record: Dict) -> None:
        if self._file is None:
            ring = self._ring
            if len(ring) == self._maxlen:
                self.dropped += 1
            ring.append(record)
            return
        if self._packed:
            # Keep stream order: batched packed records precede this
            # generic one.
            self._drain_packed()
        pending = self._pending
        pending.append((_encode(record) + "\n").encode("utf-8"))
        if len(pending) >= FLUSH_BATCH:
            self._file.write(b"".join(pending))
            pending.clear()

    def counts(self) -> Dict[str, int]:
        """Per-name record counts currently in the ring buffer."""
        out: Dict[str, int] = {}
        codecs = self._codecs
        for entry in self._ring:
            if entry.__class__ is dict:
                if entry["kind"] == "meta":
                    continue
                key = entry["name"]
            else:
                key = codecs[entry[0]].name
            out[key] = out.get(key, 0) + 1
        return out

    def __repr__(self) -> str:
        target = self._path or "<memory>"
        return (
            f"Tracer({target}, {len(self._ring)} buffered, "
            f"{self.depth} open)"
        )


def _open_trace(path: str, mode: str):
    """Open a trace path for I/O, transparently gzipped for ``.gz``
    paths (committed golden traces are stored compressed).  Text modes
    decode UTF-8; binary modes pass bytes through (the writer renders
    UTF-8 itself)."""
    if str(path).endswith(".gz"):
        import gzip

        if "b" in mode:
            return gzip.open(path, mode)
        return gzip.open(path, mode, encoding="utf-8")
    if "b" in mode:
        return open(path, mode)
    return open(path, mode.replace("t", ""), encoding="utf-8")


def read_trace(path: str) -> List[Dict]:
    """Parse a JSONL trace file (optionally ``.gz``) back into records."""
    records: List[Dict] = []
    with _open_trace(path, "rt") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError as exc:
                raise ConfigurationError(
                    f"{path}:{line_no}: malformed trace line ({exc})"
                ) from None
    return records


def span_tree(records: List[Dict]) -> Dict[Optional[int], List[Dict]]:
    """Index spans by parent id (``None`` key holds the roots)."""
    tree: Dict[Optional[int], List[Dict]] = {}
    for record in records:
        if record.get("kind") == "span":
            tree.setdefault(record.get("parent"), []).append(record)
    return tree
