"""Batch execution: job specs, a parallel runner, and a persistent cache.

The paper's artifacts (Figures 8-11, Tables 2-4) are produced by
embarrassingly parallel, fully deterministic simulations.  This package
turns each simulation into a picklable :class:`JobSpec`, fans a grid of
them across ``multiprocessing`` workers with :class:`BatchRunner`, and
memoizes finished runs on disk with :class:`ResultCache` so repeated
invocations of ``repro report``, the table commands, and the benchmark
harness never re-simulate a design point they have already seen.

Quick start::

    from repro import MachineParams
    from repro.runner import BatchRunner, JobSpec, ResultCache

    params = MachineParams.scaled_down(factor=8, nodes=8, page_size=512)
    specs = [JobSpec.sweep(params, name) for name in ("ocean", "fft")]
    runner = BatchRunner(jobs=4, cache=ResultCache())
    for job in runner.run(specs):
        print(job.spec.workload, job.summary.study_results().curve(...))

Results come back as :class:`RunSummary` objects — picklable,
JSON-serializable snapshots that expose the same analysis surface as
:class:`~repro.system.results.RunResult` (breakdowns, overhead ratios,
sweep studies, timing summaries) without holding the machine alive.

The runner supervises its workers (see :mod:`repro.runner.batch` and
``docs/robustness.md``): per-job failures come back as structured
:class:`JobFailure` results instead of aborting the grid, transient
failures retry with exponential backoff, hung jobs are killed at a
wall-clock ``timeout``, dead workers respawn, and — given a manifest
directory — an interrupted run resumes with ``resume=run_id``,
re-executing only the jobs missing from its append-only manifest
(:class:`RunManifest`).  :class:`FaultPlan` injects deterministic chaos
(crashes, hangs, transient errors, corrupt cache/trace bytes) to prove
those paths.

Sweep jobs additionally run through a record-once/replay-many pipeline
(see :mod:`repro.system.taptrace` and ``docs/performance.md``): the
hierarchy simulation is recorded as per-tap page streams — persisted by
:class:`TraceStore` — and every TLB/DLB bank configuration is replayed
from the recording with vectorized kernels, bit-identical to the
coupled reference path.
"""

from repro.runner.batch import BatchRunner, JobFailure, JobResult
from repro.runner.cache import ResultCache, default_cache_dir
from repro.runner.faults import Fault, FaultPlan
from repro.runner.jobs import JobSpec
from repro.runner.manifest import (
    RunManifest,
    default_manifest_dir,
    list_runs,
    read_status,
)
from repro.runner.summary import GridStats, RunSummary
from repro.runner.traces import TraceStore, default_trace_dir

__all__ = [
    "BatchRunner",
    "Fault",
    "FaultPlan",
    "GridStats",
    "JobFailure",
    "JobResult",
    "JobSpec",
    "ResultCache",
    "RunManifest",
    "RunSummary",
    "TraceStore",
    "default_cache_dir",
    "default_manifest_dir",
    "default_trace_dir",
    "list_runs",
    "read_status",
]
