"""Supervised, fault-tolerant execution of simulation grids.

Every job is deterministic given its spec (all randomness derives from
``MachineParams.seed`` via named substreams), so sharding a grid across
worker processes is pure divide-and-conquer: results are bit-identical
to a serial run, whatever the worker count or completion order.

The runner is a *supervisor*, not a bare pool.  Each worker slot is one
forked process connected by its own pipe; the parent dispatches one job
at a time, so it always knows which job a dead or wedged worker was
holding.  On top of that sit the recovery paths:

* **Failure capture** — a job that raises comes back as a structured
  :class:`JobFailure` (exception type, message, traceback, attempt
  count) instead of tearing down the grid.  By default a deterministic
  failure (``ConfigurationError``, ``ProtocolError``, ...) still fails
  the run fast — rerunning it would fail identically — while
  ``keep_going=True`` records it and completes the rest of the grid.
* **Retries** — *transient* failures (``OSError``, ``TraceError``,
  worker death, timeouts; see :func:`repro.common.errors.is_transient`)
  are retried up to ``retries`` times with exponential backoff and
  deterministic jitter.  Deterministic failures are never retried.
* **Timeouts** — ``timeout`` seconds of wall clock per job attempt;
  an overrunning worker is killed and respawned, and the job counts as
  a transient failure (a hung simulation cannot stall the grid).
  Enforced only when worker processes are in play (``jobs > 1``).
* **Worker death** — a worker that vanishes mid-job (segfault,
  OOM-kill, injected crash) is detected through its closed pipe; the
  slot respawns and the lost job is re-dispatched.
* **Resume** — with a manifest directory, every landed job is appended
  to a flushed JSONL manifest (:mod:`repro.runner.manifest`); a
  SIGINT'd run shuts its workers down cleanly and raises
  :class:`~repro.common.errors.RunInterrupted` carrying the run id, and
  ``resume=run_id`` restores completed summaries so only the missing
  jobs execute.
* **Chaos** — a :class:`~repro.runner.faults.FaultPlan` deterministically
  injects crashes, hangs, transient errors, and corrupt cache/trace
  bytes at chosen job indices; the test suite drives every path above
  through it.

Worker sizing: the requested ``jobs`` is clamped to ``os.cpu_count()``
and to the number of pending jobs — oversubscribing cores only adds
process startup and scheduler churn.  The clamp actually applied is
recorded in :attr:`BatchRunner.effective_jobs`.  ``jobs=1`` (or a
platform without ``fork``) runs in-process with the same capture,
retry, and resume semantics (timeout excepted).
"""

from __future__ import annotations

import hashlib
import heapq
import multiprocessing
import os
import time
import traceback as _traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, ClassVar, Iterable, List, Optional, Sequence, Tuple, Union

from repro.common.errors import (
    ConfigurationError,
    JobError,
    RunInterrupted,
    is_transient,
)
from repro.runner.cache import ResultCache
from repro.runner.jobs import JobSpec
from repro.runner.manifest import RunManifest
from repro.runner.summary import GridStats, RunSummary

#: progress(done_so_far, total, job_result) — called as each job lands
#: (successes, cache/manifest restores, and — under keep_going —
#: failures alike).
ProgressCallback = Callable[[int, int, "JobOutcome"], None]

#: Clean-shutdown join budget before escalating to SIGKILL.
_JOIN_TIMEOUT = 5.0


@dataclass
class JobResult:
    """One finished job: its spec, summary, and provenance."""

    spec: JobSpec
    summary: RunSummary
    elapsed: float
    from_cache: bool = False
    from_manifest: bool = False
    attempts: int = 1

    #: Discriminates successes from :class:`JobFailure` in a result list.
    ok: ClassVar[bool] = True


@dataclass
class JobFailure:
    """One job that failed after exhausting its retry budget.

    Takes a success's place in the result list under ``keep_going``:
    same ``spec`` / ``elapsed`` / provenance surface, but ``ok`` is
    False and ``summary`` is None.
    """

    spec: JobSpec
    error_type: str
    message: str
    attempts: int = 1
    transient: bool = False
    timed_out: bool = False
    worker_died: bool = False
    traceback: str = ""
    elapsed: float = 0.0
    from_cache: bool = False
    from_manifest: bool = False

    ok: ClassVar[bool] = False
    summary: ClassVar[None] = None

    def exception(self) -> BaseException:
        """Rehydrate the failure as a raisable exception.

        Resolves the recorded type name against the library's exception
        modules and builtins; unknown types degrade to
        :class:`~repro.common.errors.JobError` carrying the original
        traceback text.
        """
        from repro.runner.faults import resolve_exception

        try:
            cls = resolve_exception(self.error_type)
            exc = cls(self.message)
        except Exception:
            exc = JobError(
                f"{self.error_type}: {self.message}\n{self.traceback}".rstrip()
            )
        return exc

    def describe(self) -> str:
        cause = "timed out" if self.timed_out else (
            "worker died" if self.worker_died else self.error_type
        )
        return (
            f"{self.spec.describe()}: {cause} after "
            f"{self.attempts} attempt{'s' if self.attempts != 1 else ''}"
        )


#: What a result list may contain.
JobOutcome = Union[JobResult, JobFailure]


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _worker_loop(conn, trace_store, replay: bool, fault_plan) -> None:
    """One worker slot: receive ``(index, attempt, spec)``, execute,
    reply ``("ok", ...)`` or ``("err", ...)``; ``None`` stops the loop.

    Exceptions cross the pipe pre-serialized (type name, message,
    traceback text, transient flag) so an unpicklable exception object
    can never poison the channel.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        index, attempt, spec = message
        started = time.perf_counter()
        try:
            if fault_plan is not None:
                fault_plan.apply_worker(index, attempt)
            summary = spec.execute(trace_store=trace_store, replay=replay)
            payload = ("ok", index, attempt, summary, time.perf_counter() - started)
        except Exception as exc:
            payload = (
                "err",
                index,
                attempt,
                type(exc).__name__,
                str(exc),
                _traceback.format_exc(),
                is_transient(exc),
                time.perf_counter() - started,
            )
        try:
            conn.send(payload)
        except (OSError, ValueError):
            return


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class _Slot:
    """One supervised worker: a forked process plus its private pipe.

    The parent tracks exactly which job (and attempt) the slot holds,
    so a closed pipe or a blown deadline maps back to a specific job.
    """

    __slots__ = ("ctx", "worker_args", "process", "conn",
                 "index", "spec", "attempt", "deadline")

    def __init__(self, ctx, worker_args) -> None:
        self.ctx = ctx
        self.worker_args = worker_args
        self.process = None
        self.conn = None
        self.clear()
        self.spawn()

    # -- lifecycle -----------------------------------------------------
    def spawn(self) -> None:
        parent_conn, child_conn = self.ctx.Pipe()
        self.process = self.ctx.Process(
            target=_worker_loop, args=(child_conn, *self.worker_args), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn

    def respawn(self) -> None:
        """Replace a dead or wedged worker with a fresh one."""
        self.kill()
        self.clear()
        self.spawn()

    def kill(self) -> None:
        if self.process is not None:
            self.process.terminate()
            self.process.join(timeout=_JOIN_TIMEOUT)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=_JOIN_TIMEOUT)
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
        self.process = None
        self.conn = None

    def shutdown(self) -> None:
        """Best-effort graceful stop, then guarantee the process is gone
        (the SIGINT worker-leak fix lives here: the supervisor calls
        this in a ``finally``)."""
        if self.conn is not None and not self.busy:
            try:
                self.conn.send(None)
                self.process.join(timeout=_JOIN_TIMEOUT)
            except (OSError, ValueError):
                pass
        self.kill()

    # -- job bookkeeping -----------------------------------------------
    @property
    def busy(self) -> bool:
        return self.index is not None

    def clear(self) -> None:
        self.index = None
        self.spec = None
        self.attempt = None
        self.deadline = None

    def dispatch(self, index: int, spec: JobSpec, attempt: int,
                 timeout: Optional[float]) -> None:
        try:
            self.conn.send((index, attempt, spec))
        except (OSError, ValueError):
            # The worker died while idle; replace it and retry once.
            self.respawn()
            self.conn.send((index, attempt, spec))
        self.index = index
        self.spec = spec
        self.attempt = attempt
        self.deadline = (time.monotonic() + timeout) if timeout else None


class BatchRunner:
    """Runs :class:`JobSpec` grids under supervision.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (default) runs everything
        in-process.  Clamped to ``os.cpu_count()`` and the pending-job
        count.
    cache:
        A :class:`ResultCache` consulted before and fed after every
        simulation; ``None`` disables persistence.
    progress:
        Optional callback invoked (in the parent) once per landed job,
        including cache/manifest restores and (under ``keep_going``)
        failures.
    trace_store:
        A :class:`~repro.runner.traces.TraceStore` persisting recorded
        tap traces across runs; ``None`` still records and replays
        in-memory (per job), just without cross-run reuse.
    replay:
        ``False`` forces the coupled scalar sweep path (the reference
        implementation the replay pipeline is verified against).
    retries:
        Re-dispatch budget per job for *transient* failures (I/O
        errors, corrupt traces, worker death, timeouts).  Deterministic
        failures never retry.
    timeout:
        Per-attempt wall-clock limit in seconds; the worker holding an
        overrunning job is killed and respawned.  Only enforced with
        worker processes (``effective_jobs > 1``).
    keep_going:
        Record failures as :class:`JobFailure` results and finish the
        grid instead of failing fast on the first exhausted job.
    retry_delay:
        Base of the exponential backoff (seconds); attempt *k* waits
        ``retry_delay * 2**(k-1)`` scaled by a deterministic jitter in
        [0.5, 1.0] derived from the job index.
    fault_plan:
        A :class:`~repro.runner.faults.FaultPlan` for chaos testing.
    manifest_dir:
        Directory for append-only run manifests; ``None`` (default)
        disables manifests and resumption.
    resume:
        A prior run id whose manifest's completed jobs are restored
        instead of re-executed.  Requires ``manifest_dir``.
    manifest_run_id:
        Pre-chosen id for a *fresh* manifest (the service tier names
        manifests after submission ids so ``/runs/<id>/status`` maps
        straight onto :func:`~repro.runner.manifest.read_status`).
    worker_pool:
        A remote worker pool (duck-typed: ``worker_count()`` and
        ``run_jobs(pending, runner, record, fail, heartbeat)``, e.g.
        :class:`~repro.service.hub.WorkerHub`).  When it has workers,
        pending jobs shard across them instead of forked processes —
        and ``effective_jobs`` is *not* clamped to ``os.cpu_count()``,
        because remote workers live on other hosts (or deliberately
        oversubscribe this one).  A pool that drains mid-run hands its
        unfinished jobs back and they complete in-process.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
        trace_store=None,
        replay: bool = True,
        retries: int = 0,
        timeout: Optional[float] = None,
        keep_going: bool = False,
        retry_delay: float = 0.25,
        fault_plan=None,
        manifest_dir=None,
        resume: Optional[str] = None,
        manifest_run_id: Optional[str] = None,
        worker_pool=None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.progress = progress
        self.trace_store = trace_store
        self.replay = replay
        self.retries = max(0, int(retries))
        self.timeout = timeout
        self.keep_going = keep_going
        self.retry_delay = retry_delay
        self.fault_plan = fault_plan
        self.manifest_dir = manifest_dir
        self.resume = resume
        self.manifest_run_id = manifest_run_id
        self.worker_pool = worker_pool
        if resume is not None and manifest_dir is None:
            raise ConfigurationError("resume requires a manifest directory")
        #: Simulations actually executed (cache hits excluded) — the
        #: "zero new simulations on a warm cache" observable.
        self.simulations_run = 0
        self.cache_hits = 0
        #: Worker processes actually used by the last :meth:`run` after
        #: clamping to cpu_count and the pending-job count (1 = ran
        #: in-process).
        self.effective_jobs = 1
        #: Supervision counters for the last :meth:`run`.
        self.stats = GridStats()
        #: Manifest id of the last :meth:`run` (None without a manifest).
        self.run_id: Optional[str] = None

    # ------------------------------------------------------------------
    def _backoff(self, index: int, attempt: int) -> float:
        """Exponential backoff with deterministic jitter in [0.5, 1.0]:
        the same (job, attempt) always waits the same time, so chaos
        tests and resumed runs are reproducible."""
        digest = hashlib.sha256(f"backoff:{index}:{attempt}".encode()).digest()
        jitter = 0.5 + digest[0] / 510.0
        return self.retry_delay * (2 ** (attempt - 1)) * jitter

    # ------------------------------------------------------------------
    def run(self, specs: Iterable[JobSpec]) -> List[JobOutcome]:
        """Execute every spec; results come back in submission order.

        Each entry is a :class:`JobResult`, or — only under
        ``keep_going`` — a :class:`JobFailure`.  Without ``keep_going``
        the first job to exhaust its attempts raises (deterministic
        failures raise their original exception type).  SIGINT shuts
        the workers down, flushes the manifest, and raises
        :class:`~repro.common.errors.RunInterrupted` with the resume
        hint.
        """
        specs = list(specs)
        total = len(specs)
        results: List[Optional[JobOutcome]] = [None] * total
        done = 0
        run_started = time.perf_counter()
        stats = self.stats = GridStats(total=total)
        store_base = self._store_counters()
        if self.fault_plan is not None:
            self.fault_plan.arm()

        manifest = None
        if self.manifest_dir is not None:
            if self.resume is not None:
                manifest = RunManifest.load(self.manifest_dir, self.resume, total=total)
            else:
                manifest = RunManifest.create(
                    self.manifest_dir, total=total, run_id=self.manifest_run_id
                )
            self.run_id = manifest.run_id

        def land(index: int, outcome: JobOutcome) -> None:
            nonlocal done
            results[index] = outcome
            done += 1
            stats.completed += outcome.ok
            stats.job_seconds += outcome.elapsed
            if self.progress is not None:
                self.progress(done, total, outcome)

        def record(index: int, summary: RunSummary, elapsed: float,
                   attempts: int = 1) -> None:
            spec = specs[index]
            self.simulations_run += 1
            stats.simulations += 1
            backend = getattr(summary, "backend", None)
            if backend:
                stats.backends[backend] = stats.backends.get(backend, 0) + 1
            reason = getattr(summary, "fallback_reason", None)
            # "fast=False" is a caller's choice, not a degradation.
            if reason and reason != "fast=False":
                stats.fallback_reasons[reason] = (
                    stats.fallback_reasons.get(reason, 0) + 1
                )
            if self.cache is not None:
                self.cache.put(spec, summary, elapsed=elapsed)
            if manifest is not None:
                manifest.record_success(spec, summary, elapsed=elapsed)
            land(index, JobResult(spec, summary, elapsed=elapsed, attempts=attempts))

        def heartbeat(spec: JobSpec, attempt: int,
                      worker: Optional[int] = None) -> None:
            if manifest is not None:
                manifest.record_heartbeat(
                    spec, attempt=attempt, worker=worker,
                    workers=self.effective_jobs,
                )

        def fail(index: int, failure: JobFailure,
                 cause: Optional[BaseException] = None) -> None:
            spec = specs[index]
            stats.failed += 1
            if failure.transient:
                stats.transient_failures += 1
            else:
                stats.deterministic_failures += 1
            stats.failure_labels.append(failure.describe())
            if manifest is not None:
                manifest.record_failure(spec, failure)
            if not self.keep_going:
                raise cause if cause is not None else failure.exception()
            land(index, failure)

        try:
            pending: List[Tuple[int, JobSpec]] = []
            for index, spec in enumerate(specs):
                if self.fault_plan is not None:
                    self.fault_plan.apply_parent(
                        index, spec, cache=self.cache, trace_store=self.trace_store
                    )
                if manifest is not None and manifest.completed:
                    payload = manifest.completed.get(spec.content_hash())
                    if payload is not None:
                        stats.from_manifest += 1
                        land(index, JobResult(
                            spec, RunSummary.from_dict(payload),
                            elapsed=0.0, from_manifest=True,
                        ))
                        continue
                cached = self.cache.get(spec) if self.cache is not None else None
                if cached is not None:
                    self.cache_hits += 1
                    stats.from_cache += 1
                    if manifest is not None:
                        manifest.record_success(spec, cached, elapsed=0.0)
                    land(index, JobResult(spec, cached, elapsed=0.0, from_cache=True))
                else:
                    pending.append((index, spec))

            pool = self.worker_pool
            pool_workers = pool.worker_count() if pool is not None else 0
            if pending and pool_workers > 0:
                # Remote pool: workers live on other hosts (or are
                # deliberate loopback oversubscription), so the
                # cpu-count clamp below does not apply — this is what
                # lets a 1-CPU front-end drive jobs>1 for real.
                self.effective_jobs = max(1, min(len(pending), pool_workers))
                leftovers = pool.run_jobs(pending, self, record, fail, heartbeat)
                if leftovers:
                    # Every remote worker vanished mid-grid: a degraded
                    # pool must not strand the run.
                    self._run_serial(
                        [(index, spec) for index, spec, _ in leftovers],
                        record, fail, heartbeat,
                    )
                pending = []
            # The cpu-count clamp is a throughput heuristic; it yields
            # when supervision *requires* process isolation — a hung
            # job can only be killed, and a crash only survived, in a
            # worker process.
            needs_workers = self.timeout is not None or self.fault_plan is not None
            limit = len(pending) if needs_workers else min(
                len(pending), os.cpu_count() or 1
            )
            workers = min(self.jobs, limit)
            # Record the clamp only when the pool (CPU count, fork
            # support) bound us, not when there were simply fewer
            # pending jobs than requested workers.
            if self.jobs > workers and len(pending) > workers:
                stats.requested_jobs = self.jobs
            if pending:
                self.effective_jobs = max(1, workers)
                if workers > 1 and _fork_available():
                    self._run_supervised(pending, workers, record, fail, heartbeat)
                else:
                    self.effective_jobs = 1
                    self._run_serial(pending, record, fail, heartbeat)
        except KeyboardInterrupt:
            raise RunInterrupted(self.run_id, completed=done, total=total) from None
        finally:
            stats.wall_seconds = time.perf_counter() - run_started
            stats.workers = self.effective_jobs
            quarantined, evicted, corrupt = self._store_counters()
            stats.store_quarantined = quarantined - store_base[0]
            stats.store_evictions = evicted - store_base[1]
            stats.trace_corrupt_dropped = corrupt - store_base[2]
            if manifest is not None:
                manifest.close()

        return results  # type: ignore[return-value]

    def _store_counters(self) -> Tuple[int, int, int]:
        """(quarantined, evicted, corrupt-traces) across this runner's
        stores — sampled before/after a run to attribute the delta."""
        quarantined = evicted = corrupt = 0
        for store in (self.cache, self.trace_store):
            if store is None:
                continue
            quarantined += getattr(store, "quarantined", 0)
            evicted += getattr(store, "evictions", 0)
            corrupt += getattr(store, "corrupt_dropped", 0)
        return quarantined, evicted, corrupt

    # ------------------------------------------------------------------
    # in-process execution (jobs=1 or no fork)
    # ------------------------------------------------------------------
    def _run_serial(self, pending, record, fail, heartbeat) -> None:
        for index, spec in pending:
            attempt = 1
            while True:
                heartbeat(spec, attempt)
                started = time.perf_counter()
                try:
                    if self.fault_plan is not None:
                        self.fault_plan.apply_worker(index, attempt)
                    summary = spec.execute(
                        trace_store=self.trace_store, replay=self.replay
                    )
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    elapsed = time.perf_counter() - started
                    if is_transient(exc) and attempt <= self.retries:
                        self.stats.retries += 1
                        time.sleep(self._backoff(index, attempt))
                        attempt += 1
                        continue
                    fail(
                        index,
                        JobFailure(
                            spec=spec,
                            error_type=type(exc).__name__,
                            message=str(exc),
                            traceback=_traceback.format_exc(),
                            attempts=attempt,
                            transient=is_transient(exc),
                            elapsed=elapsed,
                        ),
                        cause=exc,
                    )
                    break
                record(index, summary, time.perf_counter() - started,
                       attempts=attempt)
                break

    # ------------------------------------------------------------------
    # supervised worker-pool execution
    # ------------------------------------------------------------------
    def _run_supervised(self, pending, workers: int, record, fail, heartbeat) -> None:
        ctx = multiprocessing.get_context("fork")
        worker_args = (self.trace_store, self.replay, self.fault_plan)
        queue = deque((index, spec, 1) for index, spec in pending)
        #: (ready_at, index, next_attempt, spec) — delayed retries.
        delayed: list = []
        slots = [_Slot(ctx, worker_args) for _ in range(workers)]
        try:
            while queue or delayed or any(slot.busy for slot in slots):
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, index, attempt, spec = heapq.heappop(delayed)
                    queue.append((index, spec, attempt))
                for slot_index, slot in enumerate(slots):
                    if not slot.busy and queue:
                        index, spec, attempt = queue.popleft()
                        heartbeat(spec, attempt, worker=slot_index)
                        slot.dispatch(index, spec, attempt, self.timeout)

                busy = [slot for slot in slots if slot.busy]
                if not busy:
                    if delayed:
                        time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                    continue

                wait_for = None
                wakeups = [slot.deadline for slot in busy if slot.deadline is not None]
                if delayed:
                    wakeups.append(delayed[0][0])
                if wakeups:
                    wait_for = max(0.0, min(wakeups) - time.monotonic())
                ready = _connection_wait(
                    [slot.conn for slot in busy], timeout=wait_for
                )
                for conn in ready:
                    slot = next(s for s in slots if s.conn is conn)
                    self._drain_slot(slot, record, fail, delayed)

                now = time.monotonic()
                for slot in slots:
                    if slot.busy and slot.deadline is not None and now >= slot.deadline:
                        self._expire_slot(slot, fail, delayed)
        finally:
            # Whatever ends the loop — completion, a fail-fast raise, or
            # SIGINT — no worker process survives it.
            for slot in slots:
                slot.shutdown()

    def _drain_slot(self, slot: _Slot, record, fail, delayed) -> None:
        index, spec, attempt = slot.index, slot.spec, slot.attempt
        try:
            message = slot.conn.recv()
        except (EOFError, OSError):
            # Hard worker death mid-job (segfault / OOM-kill / chaos
            # crash): respawn the slot, re-dispatch or fail the job.
            exitcode = slot.process.exitcode if slot.process is not None else None
            self.stats.worker_deaths += 1
            slot.respawn()
            self._retry_or_fail(
                index, spec, attempt, fail, delayed,
                error_type="WorkerDied",
                message=f"worker process died (exit code {exitcode})",
                worker_died=True,
            )
            return
        slot.clear()
        kind = message[0]
        if kind == "ok":
            _, index, attempt, summary, elapsed = message
            record(index, summary, elapsed, attempts=attempt)
            return
        _, index, attempt, error_type, text, tb, transient, elapsed = message
        if transient and attempt <= self.retries:
            self.stats.retries += 1
            heapq.heappush(
                delayed,
                (time.monotonic() + self._backoff(index, attempt),
                 index, attempt + 1, spec),
            )
            return
        fail(index, JobFailure(
            spec=spec, error_type=error_type, message=text, traceback=tb,
            attempts=attempt, transient=transient, elapsed=elapsed,
        ))

    def _expire_slot(self, slot: _Slot, fail, delayed) -> None:
        """Kill a worker whose job blew its wall-clock deadline."""
        index, spec, attempt = slot.index, slot.spec, slot.attempt
        self.stats.timeouts += 1
        slot.respawn()
        self._retry_or_fail(
            index, spec, attempt, fail, delayed,
            error_type="JobTimeout",
            message=f"job exceeded {self.timeout}s wall clock",
            timed_out=True,
        )

    def _retry_or_fail(self, index, spec, attempt, fail, delayed,
                       error_type, message, **flags) -> None:
        """Shared tail for worker-death and timeout: both transient."""
        if attempt <= self.retries:
            self.stats.retries += 1
            heapq.heappush(
                delayed,
                (time.monotonic() + self._backoff(index, attempt),
                 index, attempt + 1, spec),
            )
            return
        fail(index, JobFailure(
            spec=spec, error_type=error_type, message=message,
            attempts=attempt, transient=True, **flags,
        ))

    # ------------------------------------------------------------------
    def run_labelled(self, specs: Sequence[JobSpec]) -> dict:
        """Like :meth:`run`, keyed by each spec's label (or describe()).

        Duplicate labels would silently overwrite each other's results,
        so they raise :class:`ConfigurationError` up front.  Under
        ``keep_going`` a failed job maps to ``None`` (its
        ``JobFailure.summary``).
        """
        labels = [spec.label or spec.describe() for spec in specs]
        seen = set()
        duplicates = sorted({label for label in labels
                             if label in seen or seen.add(label)})
        if duplicates:
            raise ConfigurationError(
                f"duplicate job labels would overwrite results: {duplicates}"
            )
        return {
            label: job.summary
            for label, job in zip(labels, self.run(specs))
        }
