"""Fan a grid of independent simulations across worker processes.

Every job is deterministic given its spec (all randomness derives from
``MachineParams.seed`` via named substreams), so sharding a grid across
``multiprocessing`` workers is pure divide-and-conquer: results are
bit-identical to a serial run, whatever the worker count or completion
order.  The runner preserves submission order in its result list, calls
an optional progress callback as jobs finish, times each job, and falls
back to in-process execution when only one worker is useful or on
platforms without ``fork`` (pickling a live pool of workload generators
requires fork semantics).

Worker sizing: the requested ``jobs`` is clamped to ``os.cpu_count()``
and to the number of pending jobs — oversubscribing cores only adds
process startup and scheduler churn (on a 1-core container, ``jobs=4``
used to run *slower* than serial).  Small grids are chunked so each
worker amortizes its fork cost over several jobs instead of paying one
IPC round-trip per simulation.  The clamp actually applied is recorded
in :attr:`BatchRunner.effective_jobs`.

Sweep jobs run through the record-once/replay-many pipeline (see
:meth:`JobSpec.execute`); give the runner a
:class:`~repro.runner.traces.TraceStore` to persist recorded tap
traces so later grids with different bank configurations skip the
hierarchy simulation entirely.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.runner.cache import ResultCache
from repro.runner.jobs import JobSpec
from repro.runner.summary import RunSummary

#: progress(done_so_far, total, job_result) — called as each job lands.
ProgressCallback = Callable[[int, int, "JobResult"], None]


@dataclass
class JobResult:
    """One finished job: its spec, summary, and provenance."""

    spec: JobSpec
    summary: RunSummary
    elapsed: float
    from_cache: bool = False


def _execute_indexed(
    item: Tuple[int, JobSpec], trace_store=None, replay: bool = True
) -> Tuple[int, RunSummary, float]:
    """Worker entry point (top-level so it pickles)."""
    index, spec = item
    started = time.perf_counter()
    summary = spec.execute(trace_store=trace_store, replay=replay)
    return index, summary, time.perf_counter() - started


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class BatchRunner:
    """Runs :class:`JobSpec` grids, optionally parallel and cached.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (default) runs everything in-process.
        Clamped to ``os.cpu_count()`` and the pending-job count.
    cache:
        A :class:`ResultCache` consulted before and fed after every
        simulation; ``None`` disables persistence.
    progress:
        Optional callback invoked (in the parent) once per finished job,
        including cache hits.
    trace_store:
        A :class:`~repro.runner.traces.TraceStore` persisting recorded
        tap traces across runs; ``None`` still records and replays
        in-memory (per job), just without cross-run reuse.
    replay:
        ``False`` forces the coupled scalar sweep path (the reference
        implementation the replay pipeline is verified against).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
        trace_store=None,
        replay: bool = True,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.progress = progress
        self.trace_store = trace_store
        self.replay = replay
        #: Simulations actually executed (cache hits excluded) — the
        #: "zero new simulations on a warm cache" observable.
        self.simulations_run = 0
        self.cache_hits = 0
        #: Worker processes actually used by the last :meth:`run` after
        #: clamping to cpu_count and the pending-job count (1 = ran
        #: in-process).
        self.effective_jobs = 1

    # ------------------------------------------------------------------
    def run(self, specs: Iterable[JobSpec]) -> List[JobResult]:
        """Execute every spec; results come back in submission order."""
        specs = list(specs)
        total = len(specs)
        results: List[Optional[JobResult]] = [None] * total
        done = 0

        pending: List[Tuple[int, JobSpec]] = []
        for index, spec in enumerate(specs):
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                job = JobResult(spec, cached, elapsed=0.0, from_cache=True)
                results[index] = job
                self.cache_hits += 1
                done += 1
                if self.progress is not None:
                    self.progress(done, total, job)
            else:
                pending.append((index, spec))

        def record(index: int, summary: RunSummary, elapsed: float) -> None:
            nonlocal done
            spec = specs[index]
            job = JobResult(spec, summary, elapsed=elapsed)
            results[index] = job
            self.simulations_run += 1
            done += 1
            if self.cache is not None:
                self.cache.put(spec, summary, elapsed=elapsed)
            if self.progress is not None:
                self.progress(done, total, job)

        execute = functools.partial(
            _execute_indexed, trace_store=self.trace_store, replay=self.replay
        )
        workers = min(self.jobs, len(pending), os.cpu_count() or 1)
        self.effective_jobs = max(1, workers)
        if pending:
            if workers > 1 and _fork_available():
                ctx = multiprocessing.get_context("fork")
                # Several jobs per task amortize fork/IPC on small grids
                # while still leaving every worker ~4 chunks to balance
                # uneven job durations.
                chunksize = max(1, len(pending) // (workers * 4))
                with ctx.Pool(processes=workers) as pool:
                    for index, summary, elapsed in pool.imap_unordered(
                        execute, pending, chunksize=chunksize
                    ):
                        record(index, summary, elapsed)
            else:
                self.effective_jobs = 1
                for item in pending:
                    record(*execute(item))

        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def run_labelled(self, specs: Sequence[JobSpec]) -> dict:
        """Like :meth:`run`, keyed by each spec's label (or describe())."""
        return {
            job.spec.label or job.spec.describe(): job.summary
            for job in self.run(specs)
        }
