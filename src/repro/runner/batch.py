"""Fan a grid of independent simulations across worker processes.

Every job is deterministic given its spec (all randomness derives from
``MachineParams.seed`` via named substreams), so sharding a grid across
``multiprocessing`` workers is pure divide-and-conquer: results are
bit-identical to a serial run, whatever the worker count or completion
order.  The runner preserves submission order in its result list, calls
an optional progress callback as jobs finish, times each job, and falls
back to in-process execution when ``jobs <= 1``, when only one job is
pending, or on platforms without ``fork`` (pickling a live pool of
workload generators requires fork semantics).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.runner.cache import ResultCache
from repro.runner.jobs import JobSpec
from repro.runner.summary import RunSummary

#: progress(done_so_far, total, job_result) — called as each job lands.
ProgressCallback = Callable[[int, int, "JobResult"], None]


@dataclass
class JobResult:
    """One finished job: its spec, summary, and provenance."""

    spec: JobSpec
    summary: RunSummary
    elapsed: float
    from_cache: bool = False


def _execute_indexed(item: Tuple[int, JobSpec]) -> Tuple[int, RunSummary, float]:
    """Worker entry point (top-level so it pickles)."""
    index, spec = item
    started = time.perf_counter()
    summary = spec.execute()
    return index, summary, time.perf_counter() - started


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class BatchRunner:
    """Runs :class:`JobSpec` grids, optionally parallel and cached.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (default) runs everything in-process.
    cache:
        A :class:`ResultCache` consulted before and fed after every
        simulation; ``None`` disables persistence.
    progress:
        Optional callback invoked (in the parent) once per finished job,
        including cache hits.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.progress = progress
        #: Simulations actually executed (cache hits excluded) — the
        #: "zero new simulations on a warm cache" observable.
        self.simulations_run = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------
    def run(self, specs: Iterable[JobSpec]) -> List[JobResult]:
        """Execute every spec; results come back in submission order."""
        specs = list(specs)
        total = len(specs)
        results: List[Optional[JobResult]] = [None] * total
        done = 0

        pending: List[Tuple[int, JobSpec]] = []
        for index, spec in enumerate(specs):
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                job = JobResult(spec, cached, elapsed=0.0, from_cache=True)
                results[index] = job
                self.cache_hits += 1
                done += 1
                if self.progress is not None:
                    self.progress(done, total, job)
            else:
                pending.append((index, spec))

        def record(index: int, summary: RunSummary, elapsed: float) -> None:
            nonlocal done
            spec = specs[index]
            job = JobResult(spec, summary, elapsed=elapsed)
            results[index] = job
            self.simulations_run += 1
            done += 1
            if self.cache is not None:
                self.cache.put(spec, summary, elapsed=elapsed)
            if self.progress is not None:
                self.progress(done, total, job)

        if pending:
            if self.jobs > 1 and len(pending) > 1 and _fork_available():
                ctx = multiprocessing.get_context("fork")
                workers = min(self.jobs, len(pending))
                with ctx.Pool(processes=workers) as pool:
                    for index, summary, elapsed in pool.imap_unordered(
                        _execute_indexed, pending, chunksize=1
                    ):
                        record(index, summary, elapsed)
            else:
                for item in pending:
                    record(*_execute_indexed(item))

        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def run_labelled(self, specs: Sequence[JobSpec]) -> dict:
        """Like :meth:`run`, keyed by each spec's label (or describe())."""
        return {
            job.spec.label or job.spec.describe(): job.summary
            for job in self.run(specs)
        }
