"""Persistent on-disk memoization of finished simulations.

Layout: one JSON file per job under ``<root>/<hh>/<hash>.json`` where
``hash`` is :meth:`JobSpec.content_hash` (spec content + package
version) and ``hh`` its first two hex digits.  Files carry the spec's
canonical key alongside the summary so a cache directory is inspectable
with nothing but ``jq``.

Invalidation is by construction: any change to the spec *or* a package
version bump produces a different hash, so stale entries are simply
never read again (``clear()`` reclaims the space).  Writes go through a
temp file + ``os.replace`` so concurrent workers never expose a torn
entry.

Stale entries do take disk space until evicted: the cache accepts a
size cap (``max_bytes``, CLI ``--cache-max-mb``, env
``$REPRO_CACHE_MAX_MB``) and evicts **least-recently-used** entries
after every write once the cap is exceeded — each hit touches the
entry's mtime, so recently replayed grids survive and abandoned
configurations age out.  Without a cap the cache grows unboundedly, as
before.

The default root is ``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``,
else ``~/.cache/repro``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Tuple

from repro.runner.jobs import JobSpec
from repro.runner.locking import (
    atomic_write_text,
    quarantine_file,
    recover_orphans,
    store_lock,
)
from repro.runner.summary import RunSummary

#: Environment override for the cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment override for the result-cache size cap (in MiB).
CACHE_MAX_MB_ENV = "REPRO_CACHE_MAX_MB"

#: Bumped when the on-disk schema changes shape.
CACHE_FORMAT = 1


def default_cache_dir() -> Path:
    """Resolve the cache root from the environment."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro"
    return Path.home() / ".cache" / "repro"


def default_max_bytes(env_var: str = CACHE_MAX_MB_ENV) -> Optional[int]:
    """The environment's size cap in bytes, or None (unlimited)."""
    raw = os.environ.get(env_var)
    if not raw:
        return None
    try:
        megabytes = float(raw)
    except ValueError:
        return None
    return int(megabytes * 1024 * 1024) if megabytes > 0 else None


def touch(path: Path) -> None:
    """Mark one entry recently used (LRU bookkeeping via mtime)."""
    try:
        os.utime(path)
    except OSError:
        pass


def evict_lru(
    root: Path, pattern: str, max_bytes: Optional[int], store: str = "cache"
) -> Tuple[int, int]:
    """Delete oldest-mtime files matching ``pattern`` under ``root``
    until their total size fits ``max_bytes``.  Returns
    ``(files_removed, bytes_freed)``; evictions are counted in the
    runtime metrics registry under ``store``.  Concurrent deletion by
    another process is benign (missing files are skipped)."""
    if max_bytes is None or not root.is_dir():
        return 0, 0
    entries = []
    total = 0
    for path in root.glob(pattern):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((stat.st_mtime, stat.st_size, path))
        total += stat.st_size
    freed = 0
    removed = 0
    if total <= max_bytes:
        return removed, freed
    entries.sort()
    for _, size, path in entries:
        if total - freed <= max_bytes:
            break
        try:
            path.unlink()
            freed += size
            removed += 1
        except OSError:
            continue
    if removed:
        from repro.obs.runtime import record_eviction

        record_eviction(store, removed)
    return removed, freed


class ResultCache:
    """Content-addressed store of :class:`RunSummary` objects.

    ``max_bytes`` caps the total size of entries; None (the default)
    falls back to ``$REPRO_CACHE_MAX_MB``, and an unset environment
    means unlimited.
    """

    #: Runtime-metrics label + quarantine reason prefix.
    store_name = "result-cache"

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.max_bytes = max_bytes if max_bytes is not None else default_max_bytes()
        self.hits = 0
        self.misses = 0
        #: Corrupt entries / orphaned temp files moved to quarantine.
        self.quarantined = 0
        #: Entries removed by the LRU size cap (this store object).
        self.evictions = 0
        self._recovered = False

    # ------------------------------------------------------------------
    def path_for(self, spec: JobSpec) -> Path:
        digest = spec.content_hash()
        return self.root / digest[:2] / f"{digest}.json"

    def recover(self) -> int:
        """Quarantine partial files left by writers that died mid-write.

        Runs once per store object (lazily, before the first read or
        write) under the store lock; committed entries are never
        touched.  Returns the number of files quarantined."""
        self._recovered = True
        if not self.root.is_dir():
            return 0
        with store_lock(self.root):
            recovered = recover_orphans(self.root, self.store_name)
        self.quarantined += recovered
        return recovered

    def _quarantine_entry(self, path: Path, reason: str) -> None:
        if quarantine_file(path, self.root, self.store_name, reason=reason):
            self.quarantined += 1

    def get(self, spec: JobSpec) -> Optional[RunSummary]:
        """The cached summary for ``spec``, or None.

        Reads are lock-free (atomic writes guarantee any visible entry
        is complete); an entry that fails to parse is quarantined —
        kept as evidence, counted, and never consulted again."""
        if not self._recovered:
            self.recover()
        path = self.path_for(spec)
        try:
            data = json.loads(path.read_text())
        except OSError:
            self.misses += 1
            return None
        except ValueError:
            self.misses += 1
            self._quarantine_entry(path, "unparsable JSON")
            return None
        if data.get("format") != CACHE_FORMAT:
            self.misses += 1
            return None
        try:
            summary = RunSummary.from_dict(data["summary"])
        except (KeyError, TypeError, ValueError):
            # Corrupt or hand-edited entry: treat as absent.
            self.misses += 1
            self._quarantine_entry(path, "malformed summary payload")
            return None
        self.hits += 1
        touch(path)
        return summary

    def put(self, spec: JobSpec, summary: RunSummary, elapsed: Optional[float] = None) -> Path:
        """Store one finished run; returns the entry's path.

        The payload lands atomically (temp + fsync + rename), and the
        LRU eviction sweep runs under the store's cross-process lock so
        concurrent writers never double-evict."""
        from repro import __version__

        if not self._recovered:
            self.recover()
        path = self.path_for(spec)
        payload = {
            "format": CACHE_FORMAT,
            "version": __version__,
            "key": spec.key(),
            "elapsed": elapsed,
            "summary": summary.to_dict(),
        }
        atomic_write_text(path, json.dumps(payload))
        if self.max_bytes is not None:
            with store_lock(self.root):
                removed, _ = evict_lru(
                    self.root, "*/*.json", self.max_bytes, store=self.store_name
                )
            self.evictions += removed
        return path

    def contains(self, spec: JobSpec) -> bool:
        return self.path_for(spec).is_file()

    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        """Total size of every entry (the quantity the cap bounds)."""
        if not self.root.is_dir():
            return 0
        total = 0
        for entry in self.root.glob("*/*.json"):
            try:
                total += entry.stat().st_size
            except OSError:
                continue
        return total

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in self.root.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:
        return f"ResultCache({self.root}, entries={len(self)})"
