"""Deterministic fault injection for the supervised batch runner.

A :class:`FaultPlan` maps job indices to faults that fire on specific
attempts, letting the test suite (and ``docs/robustness.md`` readers)
prove every recovery path of :class:`~repro.runner.batch.BatchRunner`
without flaky timing tricks: the same plan injects the same faults at
the same points on every run.

Worker-side faults (applied inside the worker process, or in-process on
a serial run, just before the simulation executes):

* ``CRASH`` — hard worker death via ``os._exit``: models a segfault or
  an OOM-kill.  The supervisor detects the closed pipe, respawns the
  worker, and re-dispatches the job.  Never inject on a serial run —
  it would kill the interpreter itself (``apply_worker`` refuses).
* ``HANG`` — sleeps far past any sane deadline: models a wedged
  simulation.  The supervisor's ``timeout`` kills and respawns.
* ``TRANSIENT`` — raises ``OSError``: models a flaky filesystem or
  network mount.  Retried with backoff.
* ``RAISE`` — raises an arbitrary exception by name (resolved from
  :mod:`repro.common.errors`, then builtins): models deterministic
  simulation bugs such as ``ProtocolError``.

Parent-side faults (applied in the supervisor before the cache/trace
lookup for the job):

* ``CORRUPT_CACHE`` — flips bytes in the job's persistent result-cache
  entry; the cache must treat it as a miss and re-simulate.
* ``CORRUPT_TRACE`` — flips bytes in the job's stored tap trace; the
  trace store must quarantine it (``corrupt_dropped``) and re-record.

Every fault fires on attempts ``1..times`` (``times=None`` → every
attempt, for deterministic-failure tests) and the byte flips are seeded
by the job index, so a plan is reproducible and picklable across the
``fork`` boundary.
"""

from __future__ import annotations

import builtins
import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import repro.common.errors as _errors

#: Worker-side fault kinds.
CRASH = "crash"
HANG = "hang"
TRANSIENT = "transient"
RAISE = "raise"

#: Parent-side fault kinds.
CORRUPT_CACHE = "corrupt-cache"
CORRUPT_TRACE = "corrupt-trace"

WORKER_KINDS = (CRASH, HANG, TRANSIENT, RAISE)
PARENT_KINDS = (CORRUPT_CACHE, CORRUPT_TRACE)

#: Exit status used by injected worker crashes (recognizably non-zero).
CRASH_EXIT_CODE = 87


def resolve_exception(name: str) -> type:
    """An exception class by name, from the library's exception modules
    or builtins — the same lookup the supervisor uses to rehydrate
    worker-side failures."""
    cls = getattr(_errors, name, None)
    if cls is None:
        cls = getattr(builtins, name, None)
    if cls is None and name == "TraceError":
        from repro.system.taptrace import TraceError as cls
    if isinstance(cls, type) and issubclass(cls, BaseException):
        return cls
    raise ValueError(f"unknown exception type {name!r}")


@dataclass(frozen=True)
class Fault:
    """One injected fault: what happens, and on how many attempts.

    ``times=None`` fires on every attempt (a deterministic fault);
    ``times=k`` fires on attempts 1..k and lets attempt k+1 succeed
    (a transient fault that a retry survives).
    """

    kind: str
    times: Optional[int] = 1
    #: ``RAISE`` only: exception type name and message.
    exc: str = "OSError"
    message: str = "injected fault"
    #: ``HANG`` only: how long the worker sleeps.
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in WORKER_KINDS + PARENT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == RAISE:
            resolve_exception(self.exc)  # fail fast on bad plans

    def fires(self, attempt: int) -> bool:
        return self.times is None or attempt <= self.times


def _flip_bytes(path, seed: int) -> bool:
    """Deterministically corrupt a file in place; False if unreadable."""
    try:
        blob = bytearray(path.read_bytes())
    except OSError:
        return False
    if not blob:
        return False
    digest = hashlib.sha256(f"fault:{seed}".encode()).digest()
    # Flip a handful of payload bytes spread across the file; skipping
    # nothing — even a header flip must be survived.
    for i, byte in enumerate(digest[:8]):
        blob[(byte * (i + 1)) % len(blob)] ^= 0xFF
    try:
        path.write_bytes(bytes(blob))
    except OSError:
        return False
    return True


@dataclass
class FaultPlan:
    """A reproducible schedule of injected faults, keyed by job index."""

    faults: Dict[int, Tuple[Fault, ...]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add(self, index: int, fault: Fault) -> "FaultPlan":
        self.faults[index] = self.faults.get(index, ()) + (fault,)
        return self

    def crash(self, index: int, times: int = 1) -> "FaultPlan":
        return self.add(index, Fault(CRASH, times=times))

    def hang(self, index: int, times: int = 1, seconds: float = 3600.0) -> "FaultPlan":
        return self.add(index, Fault(HANG, times=times, hang_seconds=seconds))

    def transient(self, index: int, times: int = 1) -> "FaultPlan":
        return self.add(index, Fault(TRANSIENT, times=times))

    def raising(
        self, index: int, exc: str, message: str = "injected fault", times: Optional[int] = None
    ) -> "FaultPlan":
        return self.add(index, Fault(RAISE, times=times, exc=exc, message=message))

    def corrupt_cache(self, index: int, times: int = 1) -> "FaultPlan":
        return self.add(index, Fault(CORRUPT_CACHE, times=times))

    def corrupt_trace(self, index: int, times: int = 1) -> "FaultPlan":
        return self.add(index, Fault(CORRUPT_TRACE, times=times))

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def _active(self, index: int, attempt: int, kinds) -> list:
        return [
            fault
            for fault in self.faults.get(index, ())
            if fault.kind in kinds and fault.fires(attempt)
        ]

    def apply_worker(self, index: int, attempt: int) -> None:
        """Fire this job's worker-side faults for ``attempt``.

        Called in the worker just before the simulation runs (the
        serial path calls it too, where ``CRASH`` is refused because
        ``os._exit`` would take down the caller's interpreter).
        """
        for fault in self._active(index, attempt, WORKER_KINDS):
            if fault.kind == CRASH:
                if os.getpid() == self.parent_pid():
                    raise RuntimeError(
                        "refusing to inject a crash into the parent process; "
                        "CRASH faults need a supervised (jobs>1) run"
                    )
                os._exit(CRASH_EXIT_CODE)
            if fault.kind == HANG:
                time.sleep(fault.hang_seconds)
                continue
            if fault.kind == TRANSIENT:
                raise OSError(f"injected transient fault (job {index}, attempt {attempt})")
            if fault.kind == RAISE:
                raise resolve_exception(fault.exc)(fault.message)

    def apply_parent(self, index: int, spec, cache=None, trace_store=None) -> None:
        """Fire this job's parent-side faults (disk corruption) before
        the supervisor consults the cache or dispatches the job."""
        for fault in self._active(index, attempt=1, kinds=PARENT_KINDS):
            if fault.kind == CORRUPT_CACHE and cache is not None:
                _flip_bytes(cache.path_for(spec), seed=index)
            elif fault.kind == CORRUPT_TRACE and trace_store is not None:
                _flip_bytes(trace_store.path_for(spec), seed=index)

    # ------------------------------------------------------------------
    _PARENT_PID = None

    def parent_pid(self) -> int:
        """PID of the process that built the plan (captured lazily on
        first use in the parent; fork-inherited by workers)."""
        if FaultPlan._PARENT_PID is None:
            FaultPlan._PARENT_PID = os.getpid()
        return FaultPlan._PARENT_PID

    def arm(self) -> "FaultPlan":
        """Record the calling process as the supervising parent."""
        FaultPlan._PARENT_PID = os.getpid()
        return self

    def __bool__(self) -> bool:
        return bool(self.faults)
