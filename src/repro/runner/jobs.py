"""Picklable descriptions of one simulation each.

A :class:`JobSpec` is a frozen, hashable value object naming everything
a worker process needs to reproduce one simulation bit-for-bit: machine
parameters (including the seed — every random substream derives from
it, so per-job determinism needs no extra plumbing), the workload by
registry name plus constructor overrides, and the experiment kind
(miss-sweep or coupled timing) with its knobs.  The spec doubles as the
persistent cache key via :meth:`content_hash`, which folds in the
package version so results never survive a code change.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.common.params import MachineParams
from repro.core.schemes import Scheme
from repro.core.tlb import Organization
from repro.system.taps import DEFAULT_SWEEP_ORGS, DEFAULT_SWEEP_SIZES

#: Experiment kinds a worker knows how to execute.
KIND_SWEEP = "sweep"
KIND_TIMING = "timing"

_DEFAULT_ORG_VALUES = tuple(org.value for org in DEFAULT_SWEEP_ORGS)


def _org_value(org: Union[Organization, str]) -> str:
    return org.value if isinstance(org, Organization) else Organization(org).value


def _scheme_value(scheme: Union[Scheme, str]) -> str:
    return scheme.value if isinstance(scheme, Scheme) else Scheme(scheme).value


def _freeze_overrides(overrides: Optional[Dict]) -> Tuple[Tuple[str, object], ...]:
    if not overrides:
        return ()
    return tuple(sorted(overrides.items()))


@dataclass(frozen=True)
class JobSpec:
    """One simulation, fully described by plain picklable values.

    Enums are stored by value (strings) so the spec hashes and JSON-
    serializes canonically; accessors rehydrate them.  ``label`` is a
    caller-side display name and is deliberately excluded from the
    content hash.
    """

    kind: str
    params: MachineParams
    workload: str
    overrides: Tuple[Tuple[str, object], ...] = ()
    variant: Optional[str] = None
    # -- sweep knobs ----------------------------------------------------
    sizes: Tuple[int, ...] = DEFAULT_SWEEP_SIZES
    orgs: Tuple[str, ...] = _DEFAULT_ORG_VALUES
    # -- timing knobs ---------------------------------------------------
    scheme: Optional[str] = None
    entries: Optional[int] = None
    organization: str = Organization.FULLY_ASSOCIATIVE.value
    include_l2_writebacks: bool = True
    contention: bool = False
    # -- shared ---------------------------------------------------------
    max_refs_per_node: Optional[int] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in (KIND_SWEEP, KIND_TIMING):
            raise ValueError(f"unknown job kind {self.kind!r}")
        if self.kind == KIND_TIMING and (self.scheme is None or self.entries is None):
            raise ValueError("timing jobs need a scheme and an entry count")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def sweep(
        cls,
        params: MachineParams,
        workload: str,
        sizes: Iterable[int] = DEFAULT_SWEEP_SIZES,
        orgs: Iterable[Union[Organization, str]] = DEFAULT_SWEEP_ORGS,
        max_refs_per_node: Optional[int] = None,
        overrides: Optional[Dict] = None,
        variant: Optional[str] = None,
        label: Optional[str] = None,
    ) -> "JobSpec":
        """A one-run-many-taps miss sweep (Figures 8/9, Tables 2/3)."""
        return cls(
            kind=KIND_SWEEP,
            params=params,
            workload=workload.lower(),
            overrides=_freeze_overrides(overrides),
            variant=variant,
            sizes=tuple(sizes),
            orgs=tuple(_org_value(org) for org in orgs),
            max_refs_per_node=max_refs_per_node,
            label=label,
        )

    @classmethod
    def timing(
        cls,
        params: MachineParams,
        scheme: Union[Scheme, str],
        workload: str,
        entries: int,
        organization: Union[Organization, str] = Organization.FULLY_ASSOCIATIVE,
        include_l2_writebacks: bool = True,
        contention: bool = False,
        max_refs_per_node: Optional[int] = None,
        overrides: Optional[Dict] = None,
        variant: Optional[str] = None,
        label: Optional[str] = None,
    ) -> "JobSpec":
        """A coupled timing run (Table 4, Figure 10)."""
        return cls(
            kind=KIND_TIMING,
            params=params,
            workload=workload.lower(),
            overrides=_freeze_overrides(overrides),
            variant=variant,
            scheme=_scheme_value(scheme),
            entries=entries,
            organization=_org_value(organization),
            include_l2_writebacks=include_l2_writebacks,
            contention=contention,
            max_refs_per_node=max_refs_per_node,
            label=label,
        )

    @classmethod
    def from_dict(cls, data: Dict) -> "JobSpec":
        """Rebuild a spec from its canonical :meth:`key` dict.

        This is the service tier's JSON submission format: a client
        serializes ``spec.key()`` (plus an optional ``label``), and the
        server reconstructs an identical spec — identical meaning the
        round trip preserves :meth:`content_hash`, so coalescing and
        cache lookups see the same job the client described.  Optional
        fields fall back to the dataclass defaults; ``params`` may be a
        mapping, ``overrides`` a mapping or a ``[[name, value], ...]``
        pair list (the JSON form).  Malformed payloads raise the
        underlying ``TypeError``/``ValueError`` for the caller to map
        to a 400.
        """
        params = data.get("params")
        if isinstance(params, MachineParams):
            pass
        elif isinstance(params, dict):
            params = MachineParams(**params)
        else:
            raise ValueError("job spec needs a params mapping")
        raw_overrides = data.get("overrides") or ()
        if isinstance(raw_overrides, dict):
            pairs = list(raw_overrides.items())
        else:
            pairs = [(name, value) for name, value in raw_overrides]
        # JSON has no tuples; re-freeze list values so the hash matches
        # a spec built natively.
        overrides = {
            name: tuple(value) if isinstance(value, list) else value
            for name, value in pairs
        }
        kwargs = dict(
            kind=data.get("kind", KIND_SWEEP),
            params=params,
            workload=str(data.get("workload", "")).lower(),
            overrides=_freeze_overrides(overrides),
            variant=data.get("variant"),
            entries=data.get("entries"),
            include_l2_writebacks=bool(data.get("include_l2_writebacks", True)),
            contention=bool(data.get("contention", False)),
            max_refs_per_node=data.get("max_refs_per_node"),
            label=data.get("label"),
        )
        if data.get("sizes") is not None:
            kwargs["sizes"] = tuple(int(size) for size in data["sizes"])
        if data.get("orgs") is not None:
            kwargs["orgs"] = tuple(_org_value(org) for org in data["orgs"])
        if data.get("organization") is not None:
            kwargs["organization"] = _org_value(data["organization"])
        if data.get("scheme") is not None:
            kwargs["scheme"] = _scheme_value(data["scheme"])
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def build_workload(self):
        """Fresh workload instance (each simulation configures its own)."""
        from repro.workloads import WORKLOADS

        try:
            factory = WORKLOADS[self.workload]
        except KeyError:
            raise KeyError(
                f"unknown workload {self.workload!r}; choose from {sorted(WORKLOADS)}"
            ) from None
        config = dict(self.overrides)
        if self.variant:
            maker = getattr(factory, self.variant, None)
            if maker is None:
                raise ValueError(
                    f"workload {self.workload!r} has no variant {self.variant!r}"
                )
            return maker(**config)
        return factory(**config)

    def execute(self, trace_store=None, replay: bool = True):
        """Run the simulation in-process and return a
        :class:`~repro.runner.summary.RunSummary`.

        Sweep jobs are decoupled (translation state never feeds back
        into the hierarchy), so by default they run through the
        record-once/replay-many pipeline: the hierarchy simulation is
        captured as per-tap page streams — loaded from ``trace_store``
        when a matching trace exists, recorded (and stored) otherwise —
        and the TLB/DLB banks for this spec's ``sizes``/``orgs`` are
        replayed from the recording.  Results are bit-identical to the
        coupled scalar path (``replay=False``), which remains the
        reference implementation.  Timing jobs are always coupled: the
        translation penalty perturbs the interleaving, so there is
        nothing to replay.
        """
        # Imported here: repro.analysis imports the runner for its batch
        # entry points, so a module-level import would be circular.
        from repro.analysis.experiments import run_miss_sweep, run_timing
        from repro.runner.summary import RunSummary

        # The trace hash doubles as the stream-LRU key: it identifies
        # the workload recipe minus bank sizes/orgs and timing knobs,
        # so every grid cell sharing a workload shares its materialized
        # reference columns.
        stream_key = self.trace_hash()
        if self.kind == KIND_SWEEP:
            orgs = tuple(Organization(value) for value in self.orgs)
            if replay:
                from repro.system.taptrace import capture_tap_traces, replay_summary

                traces = trace_store.get(self) if trace_store is not None else None
                if traces is None:
                    traces = capture_tap_traces(
                        self.params,
                        self.build_workload(),
                        max_refs_per_node=self.max_refs_per_node,
                        stream_key=stream_key,
                    )
                    if trace_store is not None:
                        trace_store.put(self, traces)
                return replay_summary(traces, self.sizes, orgs)
            result = run_miss_sweep(
                self.params,
                self.build_workload(),
                sizes=self.sizes,
                orgs=orgs,
                max_refs_per_node=self.max_refs_per_node,
                stream_key=stream_key,
            )
        else:
            result = run_timing(
                self.params,
                Scheme(self.scheme),
                self.build_workload(),
                self.entries,
                organization=Organization(self.organization),
                include_l2_writebacks=self.include_l2_writebacks,
                max_refs_per_node=self.max_refs_per_node,
                contention=self.contention,
                stream_key=stream_key,
            )
        return RunSummary.from_result(result)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def key(self) -> Dict:
        """Canonical content (label excluded) — the cache identity."""
        return {
            "kind": self.kind,
            "params": dataclasses.asdict(self.params),
            "workload": self.workload,
            "overrides": [[name, value] for name, value in self.overrides],
            "variant": self.variant,
            "sizes": list(self.sizes),
            "orgs": list(self.orgs),
            "scheme": self.scheme,
            "entries": self.entries,
            "organization": self.organization,
            "include_l2_writebacks": self.include_l2_writebacks,
            "contention": self.contention,
            "max_refs_per_node": self.max_refs_per_node,
        }

    def content_hash(self, version: Optional[str] = None) -> str:
        """SHA-256 over the canonical key + package version.

        The version suffix means a new release (which may change
        simulation behaviour) silently invalidates every cached result.
        """
        if version is None:
            from repro import __version__ as version
        payload = json.dumps(self.key(), sort_keys=True) + "\n" + version
        return hashlib.sha256(payload.encode()).hexdigest()

    def trace_key(self) -> Dict:
        """Identity of this spec's *hierarchy* run (the tap-trace key).

        Deliberately excludes the bank configuration (``sizes``/
        ``orgs``) and the timing knobs: the recorded tap streams depend
        only on the machine, workload, and reference bound, which is
        what makes one recording serve every bank design point.
        """
        return {
            "kind": "tap-trace",
            "params": dataclasses.asdict(self.params),
            "workload": self.workload,
            "overrides": [[name, value] for name, value in self.overrides],
            "variant": self.variant,
            "max_refs_per_node": self.max_refs_per_node,
        }

    def trace_hash(self, version: Optional[str] = None) -> str:
        """SHA-256 identity for the persistent trace store."""
        if version is None:
            from repro import __version__ as version
        from repro.system.taptrace import TRACE_FORMAT

        payload = (
            json.dumps(self.trace_key(), sort_keys=True)
            + f"\n{version}\nformat={TRACE_FORMAT}"
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def describe(self) -> str:
        """Short human-readable identity for progress lines."""
        if self.label:
            return self.label
        if self.kind == KIND_SWEEP:
            return f"sweep:{self.workload}"
        return f"timing:{self.workload}/{self.scheme}/{self.entries}"
