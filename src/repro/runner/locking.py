"""Crash consistency for the cache tier: flock, atomic writes, quarantine.

The ResultCache/TraceStore/manifest/history stores are about to be
shared by concurrent writers (the ROADMAP's service tier; already today
by parallel ``repro`` invocations pointed at one ``--cache-dir``), so
every mutation follows one discipline, implemented here:

* **Atomic visibility** — payloads land in a same-directory temp file
  (``.<name>.<pid>.tmp``), are flushed and fsynced, and only then moved
  over the final name with ``os.replace``.  Readers either see the old
  complete entry or the new complete entry, never a torn one, no
  matter when the writer is SIGKILLed.
* **Mutual exclusion** — cross-process critical sections (LRU eviction
  sweeps, orphan recovery) take an ``fcntl.flock`` on a ``.lock`` file
  at the store root.  The kernel drops the lock when the holder dies,
  so a killed process never wedges the store.
* **Quarantine, not deletion** — partial temp files from dead writers
  and entries that fail to parse are *moved* into ``quarantine/`` under
  the store root (names gain a ``.corrupt-<pid>-<hex>`` suffix so no
  store glob ever matches them again).  The evidence survives for
  forensics, committed entries are untouched, and every event is
  counted in the runtime metrics registry.

Deterministic crash injection for the test suite rides the same code
path: when :data:`CRASH_WRITE_ENV` names a substring of the
destination, :func:`atomic_write_bytes` writes *half* the payload to
the temp file and hard-exits with the fault harness's
``CRASH_EXIT_CODE`` — byte-for-byte what a SIGKILL mid-write leaves
behind.
"""

from __future__ import annotations

import errno
import os
import warnings
from pathlib import Path
from typing import Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-posix
    fcntl = None

#: Test hook: a substring of a destination path; an atomic write whose
#: target matches writes half the payload and hard-exits (simulated
#: SIGKILL mid-write, deterministic).
CRASH_WRITE_ENV = "REPRO_CRASH_WRITE"

#: Subdirectory (under a store root) receiving quarantined files.
QUARANTINE_DIR = "quarantine"


class FileLock:
    """An ``fcntl.flock`` advisory lock usable as a context manager.

    Locks a dedicated ``.lock`` file (never a data file, so quarantine
    renames and eviction unlinks can't invalidate the lock).  Reentrant
    within a process is *not* supported — critical sections here are
    short and flat.  On platforms without ``fcntl`` the lock degrades
    to a no-op (single-process semantics, as before this module).
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self._handle = None

    def acquire(self) -> "FileLock":
        if fcntl is None:  # pragma: no cover - non-posix
            return self
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(self.path, "a+b")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        except OSError:  # pragma: no cover - exotic filesystems
            handle.close()
            return self
        self._handle = handle
        return self

    def release(self) -> None:
        if self._handle is not None:
            try:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            finally:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


def store_lock(root: os.PathLike) -> FileLock:
    """The store-wide lock guarding eviction/recovery under ``root``."""
    return FileLock(Path(root) / ".lock")


def locked_append(handle, data: bytes, fsync: bool = True) -> None:
    """Append ``data`` to an open binary/text append-mode ``handle``
    as one flock-guarded, flushed (and by default fsynced) write.

    ``O_APPEND`` already makes each ``write`` land at the current end
    of file, but a Python-level write may be split across syscalls for
    large payloads; the flock guarantees whole-line granularity across
    concurrent appenders (manifests, run history).
    """
    fd = handle.fileno()
    locked = False
    if fcntl is not None:
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            locked = True
        except OSError:  # pragma: no cover - exotic filesystems
            pass
    try:
        handle.write(data)
        handle.flush()
        if fsync:
            os.fsync(fd)
    finally:
        if locked:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:  # pragma: no cover
                pass


# ---------------------------------------------------------------------------
# atomic writes
# ---------------------------------------------------------------------------


def tmp_name_for(path: Path) -> Path:
    """The in-flight temp name for ``path`` (same dir, pid-tagged)."""
    return path.with_name(f".{path.name}.{os.getpid()}.tmp")


def _maybe_crash(path: Path, tmp: Path, data: bytes) -> None:
    """Fire the deterministic mid-write crash hook if armed for ``path``."""
    needle = os.environ.get(CRASH_WRITE_ENV)
    if not needle or needle not in str(path):
        return
    from repro.runner.faults import CRASH_EXIT_CODE

    with open(tmp, "wb") as handle:
        handle.write(data[: max(1, len(data) // 2)])
        handle.flush()
        os.fsync(handle.fileno())
    os._exit(CRASH_EXIT_CODE)


def atomic_write_bytes(path: os.PathLike, data: bytes, fsync: bool = True) -> Path:
    """Write ``data`` to ``path`` atomically (temp + fsync + rename).

    A reader never observes a partial file: the payload becomes visible
    under the final name in one ``os.replace``, and with ``fsync``
    (default) the bytes are on the platter before the rename, so even a
    machine crash cannot leave a short file under the final name.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = tmp_name_for(path)
    _maybe_crash(path, tmp, data)
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:
                pass
    return path


def atomic_write_text(path: os.PathLike, text: str, fsync: bool = True) -> Path:
    return atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


# ---------------------------------------------------------------------------
# quarantine + orphan recovery
# ---------------------------------------------------------------------------


def quarantine_file(
    path: os.PathLike,
    root: os.PathLike,
    store: str,
    reason: str = "",
) -> Optional[Path]:
    """Move a suspect file into ``<root>/quarantine/``; None if it
    vanished first (a concurrent process already handled it).

    The destination name appends ``.corrupt-<pid>-<hex>``, so no store
    glob (``*/*.json``, ``*/*.trace``, ``*.jsonl``) ever matches a
    quarantined file, and repeated quarantines never collide.
    """
    path = Path(path)
    dest_dir = Path(root) / QUARANTINE_DIR
    dest = dest_dir / f"{path.name}.corrupt-{os.getpid()}-{os.urandom(3).hex()}"
    try:
        dest_dir.mkdir(parents=True, exist_ok=True)
        os.replace(path, dest)
    except OSError as exc:
        if exc.errno not in (errno.ENOENT,):  # pragma: no cover
            warnings.warn(
                f"{store}: could not quarantine {path}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
        return None
    from repro.obs.runtime import record_quarantine

    record_quarantine(store, path=str(path), reason=reason)
    return dest


def _writer_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, not ours
        return True
    except OSError:  # pragma: no cover
        return True
    return True


def recover_orphans(root: os.PathLike, store: str, glob: str = "*/.*.tmp") -> int:
    """Quarantine temp files abandoned by dead writers under ``root``.

    A ``.<name>.<pid>.tmp`` whose writer pid is gone is the debris of a
    SIGKILL (or crash) mid-write; the committed entry it was going to
    replace is intact, so the partial file is moved to quarantine —
    never trusted, never silently deleted.  Temp files of *live* pids
    are in-flight writes and are left alone.  Returns the number of
    files quarantined.
    """
    root = Path(root)
    if not root.is_dir():
        return 0
    recovered = 0
    for tmp in root.glob(glob):
        pieces = tmp.name.rsplit(".", 2)  # [".<name>", "<pid>", "tmp"]
        pid: Optional[int] = None
        if len(pieces) == 3 and pieces[2] == "tmp":
            try:
                pid = int(pieces[1])
            except ValueError:
                pid = None
        if pid is not None and _writer_alive(pid):
            continue
        if quarantine_file(tmp, root, store, reason="partial write (dead writer)"):
            recovered += 1
    return recovered
