"""Append-only run manifests: what makes an interrupted sweep resumable.

A manifest is one JSONL file per batch run under ``<cache-root>/runs/``
(``<run_id>.jsonl``).  The first line is a header; every following line
records one landed job — success lines carry the full
:class:`~repro.runner.summary.RunSummary` payload, failure lines the
structured failure.  Lines are flushed as they are written, so whatever
kills the run (SIGINT, SIGKILL, OOM, power loss) the manifest holds
every job that completed.

Resume matches jobs by :meth:`JobSpec.content_hash`, not by position:
a resumed grid may reorder, drop, or extend the original spec list and
still skips exactly the work that already succeeded.  Failure lines are
deliberately *not* restored — a resumed run retries them.  A torn final
line (the process died mid-write) is skipped, not fatal.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Optional

#: Bumped when the manifest schema changes shape.
MANIFEST_FORMAT = 1


def default_manifest_dir() -> Path:
    """``runs/`` under the result-cache root."""
    from repro.runner.cache import default_cache_dir

    return default_cache_dir() / "runs"


def new_run_id() -> str:
    """A fresh, filesystem-safe run identifier (time-ordered)."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{stamp}-{os.getpid():05d}-{os.urandom(2).hex()}"


def list_runs(root: Optional[os.PathLike] = None):
    """Run ids present under ``root``, oldest first."""
    root = Path(root) if root is not None else default_manifest_dir()
    if not root.is_dir():
        return []
    return sorted(path.stem for path in root.glob("*.jsonl"))


class RunManifest:
    """Append-only JSONL record of one batch run's landed jobs."""

    def __init__(self, root: Optional[os.PathLike] = None, run_id: Optional[str] = None):
        self.root = Path(root) if root is not None else default_manifest_dir()
        self.run_id = run_id or new_run_id()
        self._handle = None
        #: content_hash -> summary dict, loaded by :meth:`load`.
        self.completed: Dict[str, dict] = {}
        #: content_hash -> failure dict (informational; never restored).
        self.failed: Dict[str, dict] = {}

    @property
    def path(self) -> Path:
        return self.root / f"{self.run_id}.jsonl"

    # ------------------------------------------------------------------
    # creation / resumption
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, root, total: int, run_id: Optional[str] = None) -> "RunManifest":
        """Start a fresh manifest and write its header line."""
        from repro import __version__

        manifest = cls(root, run_id)
        manifest.root.mkdir(parents=True, exist_ok=True)
        manifest._handle = open(manifest.path, "a")
        manifest._append(
            {
                "manifest": MANIFEST_FORMAT,
                "run": manifest.run_id,
                "version": __version__,
                "total": total,
            }
        )
        return manifest

    @classmethod
    def load(cls, root, run_id: str, total: Optional[int] = None) -> "RunManifest":
        """Open an existing manifest for resumption.

        Reads every completed entry (last status per hash wins), then
        reopens the file for appending so the resumed run extends the
        same record.  Raises ``FileNotFoundError`` for unknown ids.
        """
        manifest = cls(root, run_id)
        with open(manifest.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    # Torn final line from a hard kill mid-append.
                    continue
                if "heartbeat" in entry:
                    continue  # liveness marker, not a landed job
                digest = entry.get("hash")
                if not digest:
                    continue  # header (or foreign) line
                if entry.get("status") == "ok" and entry.get("summary") is not None:
                    manifest.completed[digest] = entry["summary"]
                    manifest.failed.pop(digest, None)
                else:
                    manifest.failed[digest] = entry
                    manifest.completed.pop(digest, None)
        manifest._handle = open(manifest.path, "a")
        if total is not None:
            manifest._append({"resumed": manifest.run_id, "total": total})
        return manifest

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_success(self, spec, summary, elapsed: float = 0.0) -> None:
        self._append(
            {
                "hash": spec.content_hash(),
                "label": spec.describe(),
                "status": "ok",
                "elapsed": elapsed,
                "summary": summary.to_dict(),
            }
        )

    def record_heartbeat(
        self,
        spec,
        attempt: int = 1,
        worker: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> None:
        """Mark a job dispatched (or re-dispatched after a retry).

        Heartbeats are liveness markers for ``repro status``: they
        carry a wall-clock stamp, the attempt number, and the worker
        slot.  :meth:`load` skips them — they are not landed results
        and never affect resumption.
        """
        entry = {
            "heartbeat": "dispatch",
            "hash": spec.content_hash(),
            "label": spec.describe(),
            "attempt": int(attempt),
            "at": round(time.time(), 3),
        }
        if worker is not None:
            entry["worker"] = int(worker)
        if workers is not None:
            entry["workers"] = int(workers)
        self._append(entry)

    def record_failure(self, spec, failure) -> None:
        self._append(
            {
                "hash": spec.content_hash(),
                "label": spec.describe(),
                "status": "failed",
                "error_type": failure.error_type,
                "message": failure.message,
                "attempts": failure.attempts,
                "transient": failure.transient,
                "timed_out": failure.timed_out,
                "worker_died": failure.worker_died,
            }
        )

    def _append(self, entry: dict) -> None:
        if self._handle is None:
            return
        from repro.runner.locking import locked_append

        # One flock-guarded, flushed+fsynced write per line: the whole
        # point is surviving a hard kill, and concurrent appenders
        # (parent + resumed run) must interleave whole lines only.
        locked_append(self._handle, json.dumps(entry) + "\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunManifest":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"RunManifest({self.run_id}, completed={len(self.completed)})"


def read_status(run_id: str, root: Optional[os.PathLike] = None) -> Dict:
    """Aggregate one manifest into a live status view (read-only).

    Replays header, heartbeat, success, and failure lines into a
    per-job state table: a job is ``running`` once a heartbeat lands
    and until a success/failure line supersedes it.  Also derives the
    counts, the average job duration, and a remaining-work ETA
    (``(pending + running) * avg / workers``) the ``repro status``
    subcommand renders.  Raises ``FileNotFoundError`` for unknown ids.
    """
    root = Path(root) if root is not None else default_manifest_dir()
    path = root / f"{run_id}.jsonl"
    header: Dict = {}
    jobs: Dict[str, Dict] = {}
    workers: Optional[int] = None
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn final line
            if "manifest" in entry or "resumed" in entry:
                for field in ("total", "version"):
                    if field in entry:
                        header[field] = entry[field]
                continue
            digest = entry.get("hash")
            if not digest:
                continue
            job = jobs.setdefault(digest, {"label": entry.get("label")})
            if "heartbeat" in entry:
                job.update(
                    state="running",
                    attempt=entry.get("attempt", 1),
                    since=entry.get("at"),
                )
                if entry.get("worker") is not None:
                    job["worker"] = entry["worker"]
                if entry.get("workers"):
                    workers = entry["workers"]
            elif entry.get("status") == "ok":
                job.pop("since", None)
                job.update(state="ok", elapsed=entry.get("elapsed", 0.0))
            else:
                job.pop("since", None)
                job.update(
                    state="failed",
                    error=entry.get("error_type"),
                    attempts=entry.get("attempts", job.get("attempt", 1)),
                )

    counts = {"ok": 0, "failed": 0, "running": 0}
    for job in jobs.values():
        counts[job.get("state", "running")] += 1
    total = header.get("total")
    pending = max(0, total - len(jobs)) if total is not None else None

    durations = [
        job["elapsed"]
        for job in jobs.values()
        if job.get("state") == "ok" and job.get("elapsed", 0.0) > 0.0
    ]
    avg = sum(durations) / len(durations) if durations else None
    eta = None
    if avg is not None and pending is not None:
        remaining = pending + counts["running"]
        eta = remaining * avg / max(1, workers or 1)
    return {
        "run": run_id,
        "total": total,
        "version": header.get("version"),
        "jobs": jobs,
        "counts": counts,
        "pending": pending,
        "workers": workers,
        "avg_job_seconds": avg,
        "eta_seconds": eta,
    }
