"""Detached run results: what survives a worker process or a cache file.

:class:`~repro.system.results.RunResult` holds the whole
:class:`~repro.system.machine.Machine` (closures included), so it can
neither cross a process boundary nor be written to disk.  A
:class:`RunSummary` is the picklable, JSON-serializable subset that the
analysis layer actually consumes: per-node time breakdowns, merged
counters, the TLB/DLB timing summary, and (for sweep runs) the full
:class:`~repro.system.taps.StudyResults` surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.stats import AverageBreakdown, TimeBreakdown
from repro.core.schemes import Scheme
from repro.system.taps import StudyResults


@dataclass
class GridStats:
    """Supervision counters for one :meth:`BatchRunner.run` call.

    Everything the fault-tolerant supervisor observed: how many jobs
    landed (and from where), how many failed after exhausting their
    retries, and how often each recovery path fired.  Rendered by the
    CLI after any grid that needed one of those paths.
    """

    total: int = 0
    completed: int = 0
    failed: int = 0
    from_cache: int = 0
    from_manifest: int = 0
    simulations: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    transient_failures: int = 0
    deterministic_failures: int = 0
    #: Labels of jobs that ended as :class:`JobFailure`s.
    failure_labels: List[str] = field(default_factory=list)

    @property
    def eventful(self) -> bool:
        """Whether anything beyond plain completion happened."""
        return bool(
            self.failed or self.retries or self.timeouts or self.worker_deaths
        )

    def render(self) -> str:
        restored = []
        if self.from_cache:
            restored.append(f"{self.from_cache} cached")
        if self.from_manifest:
            restored.append(f"{self.from_manifest} resumed")
        parts = [
            f"{self.completed}/{self.total} jobs ok"
            + (f" ({', '.join(restored)})" if restored else "")
        ]
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.retries:
            parts.append(f"{self.retries} retried")
        if self.timeouts:
            parts.append(f"{self.timeouts} timed out")
        if self.worker_deaths:
            parts.append(f"{self.worker_deaths} worker deaths")
        text = ", ".join(parts)
        if self.failure_labels:
            text += "\nfailed jobs: " + ", ".join(self.failure_labels)
        return text

    def to_dict(self) -> Dict:
        return {
            "total": self.total,
            "completed": self.completed,
            "failed": self.failed,
            "from_cache": self.from_cache,
            "from_manifest": self.from_manifest,
            "simulations": self.simulations,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_deaths": self.worker_deaths,
            "transient_failures": self.transient_failures,
            "deterministic_failures": self.deterministic_failures,
        }


class RunSummary:
    """A self-contained snapshot of one finished simulation.

    Mirrors the read-side API of :class:`~repro.system.results.RunResult`
    (``average_breakdown``, ``translation_overhead_ratio``,
    ``timing_summary``, ``study_results``, ...) so tables and figures
    accept either interchangeably.
    """

    __slots__ = (
        "scheme",
        "workload_name",
        "total_time",
        "refs_per_node",
        "barriers",
        "breakdowns",
        "counters",
        "timing",
        "study",
    )

    def __init__(
        self,
        scheme: Scheme,
        workload_name: str,
        total_time: int,
        refs_per_node: List[int],
        barriers: int,
        breakdowns: List[TimeBreakdown],
        counters: Dict[str, int],
        timing: Optional[Dict[str, float]] = None,
        study: Optional[StudyResults] = None,
    ) -> None:
        self.scheme = scheme
        self.workload_name = workload_name
        self.total_time = total_time
        self.refs_per_node = list(refs_per_node)
        self.barriers = barriers
        self.breakdowns = list(breakdowns)
        self.counters = dict(counters)
        self.timing = timing
        self.study = study

    # ------------------------------------------------------------------
    @classmethod
    def from_result(cls, result) -> "RunSummary":
        """Snapshot a live :class:`~repro.system.results.RunResult`."""
        return cls(
            scheme=result.scheme,
            workload_name=result.workload_name,
            total_time=result.total_time,
            refs_per_node=result.refs_per_node,
            barriers=result.barriers,
            breakdowns=result.breakdowns,
            counters=result.counters.to_dict(),
            timing=result.timing_summary(),
            study=result.study_results(),
        )

    def with_study(self, study: Optional[StudyResults]) -> "RunSummary":
        """A copy with the sweep surface replaced (record/replay path:
        the hierarchy summary is recorded once, the study is replayed
        per bank configuration)."""
        return RunSummary(
            scheme=self.scheme,
            workload_name=self.workload_name,
            total_time=self.total_time,
            refs_per_node=self.refs_per_node,
            barriers=self.barriers,
            breakdowns=self.breakdowns,
            counters=self.counters,
            timing=self.timing,
            study=study,
        )

    # -- RunResult-compatible surface -----------------------------------
    @property
    def total_references(self) -> int:
        return sum(self.refs_per_node)

    def aggregate_breakdown(self) -> TimeBreakdown:
        total = TimeBreakdown()
        for breakdown in self.breakdowns:
            total = total + breakdown
        return total

    def average_breakdown(self) -> AverageBreakdown:
        return self.aggregate_breakdown().scaled(len(self.breakdowns))

    def translation_overhead_ratio(self) -> float:
        return self.aggregate_breakdown().translation_overhead_ratio()

    def timing_summary(self) -> Optional[Dict[str, float]]:
        return self.timing

    def study_results(self) -> Optional[StudyResults]:
        return self.study

    def summary(self) -> Dict[str, float]:
        breakdown = self.average_breakdown()
        return {
            "scheme": self.scheme.value,
            "workload": self.workload_name,
            "total_time": self.total_time,
            "references": self.total_references,
            "busy": breakdown.busy,
            "sync": breakdown.sync,
            "loc_stall": breakdown.loc_stall,
            "rem_stall": breakdown.rem_stall,
            "tlb_stall": breakdown.tlb_stall,
        }

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serializable form (used by the persistent result cache)."""
        return {
            "scheme": self.scheme.value,
            "workload": self.workload_name,
            "total_time": self.total_time,
            "refs_per_node": list(self.refs_per_node),
            "barriers": self.barriers,
            "breakdowns": [breakdown.to_dict() for breakdown in self.breakdowns],
            "counters": dict(self.counters),
            "timing": self.timing,
            "study": self.study.to_dict() if self.study is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RunSummary":
        study = data.get("study")
        return cls(
            scheme=Scheme(data["scheme"]),
            workload_name=data["workload"],
            total_time=data["total_time"],
            refs_per_node=data["refs_per_node"],
            barriers=data["barriers"],
            breakdowns=[TimeBreakdown(**fields) for fields in data["breakdowns"]],
            counters=data["counters"],
            timing=data.get("timing"),
            study=StudyResults.from_dict(study) if study is not None else None,
        )

    def __repr__(self) -> str:
        return (
            f"RunSummary({self.scheme.value}/{self.workload_name}, "
            f"time={self.total_time}, refs={self.total_references})"
        )
