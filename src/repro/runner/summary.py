"""Detached run results: what survives a worker process or a cache file.

:class:`~repro.system.results.RunResult` holds the whole
:class:`~repro.system.machine.Machine` (closures included), so it can
neither cross a process boundary nor be written to disk.  A
:class:`RunSummary` is the picklable, JSON-serializable subset that the
analysis layer actually consumes: per-node time breakdowns, merged
counters, the TLB/DLB timing summary, and (for sweep runs) the full
:class:`~repro.system.taps.StudyResults` surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.stats import AverageBreakdown, LatencyHistogram, TimeBreakdown
from repro.core.schemes import Scheme
from repro.system.taps import StudyResults


@dataclass
class GridStats:
    """Supervision counters for one :meth:`BatchRunner.run` call.

    Everything the fault-tolerant supervisor observed: how many jobs
    landed (and from where), how many failed after exhausting their
    retries, and how often each recovery path fired.  Rendered by the
    CLI after any grid that needed one of those paths.
    """

    total: int = 0
    completed: int = 0
    failed: int = 0
    from_cache: int = 0
    from_manifest: int = 0
    simulations: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    transient_failures: int = 0
    deterministic_failures: int = 0
    #: Labels of jobs that ended as :class:`JobFailure`s.
    failure_labels: List[str] = field(default_factory=list)
    #: Engine mix: summary ``backend`` value -> number of jobs that
    #: executed on it this run (cache/manifest restores not counted —
    #: they ran nothing).  Keys are e.g. "compiled", "scalar",
    #: "compiled+replay".
    backends: Dict[str, int] = field(default_factory=dict)
    #: Degradation provenance: summary ``fallback_reason`` -> number of
    #: executed jobs stamped with it ("fast=False" and None excluded —
    #: only genuine degradations count).
    fallback_reasons: Dict[str, int] = field(default_factory=dict)
    #: Store hygiene (this run's delta, cache + trace store combined):
    #: corrupt/partial files moved to quarantine.
    store_quarantined: int = 0
    #: Entries removed by the stores' LRU size caps.
    store_evictions: int = 0
    #: Corrupt tap traces dropped (and re-recorded) by the trace store.
    trace_corrupt_dropped: int = 0
    #: Wall-clock duration of the whole :meth:`BatchRunner.run` call.
    wall_seconds: float = 0.0
    #: Summed per-job execution time (cache/manifest restores count 0).
    job_seconds: float = 0.0
    #: Worker processes used (1 = in-process).
    workers: int = 1
    #: Worker processes the caller asked for (``--jobs``), before the
    #: runner clamped to the machine's CPU count.  0 = not recorded.
    requested_jobs: int = 0

    @property
    def utilization(self) -> float:
        """Fraction of the worker pool's wall-clock capacity spent
        executing jobs: ``job_seconds / (wall_seconds * workers)``.
        Near 1.0 means the pool stayed busy; low values mean the grid
        was cache-dominated or supervision-bound."""
        capacity = self.wall_seconds * max(1, self.workers)
        return self.job_seconds / capacity if capacity > 0 else 0.0

    @property
    def jobs_clamped(self) -> bool:
        """Whether the runner granted fewer workers than requested
        (``--jobs`` exceeded the machine's CPU count)."""
        return self.requested_jobs > self.workers > 0

    @property
    def eventful(self) -> bool:
        """Whether anything beyond plain completion happened."""
        return bool(
            self.failed
            or self.retries
            or self.timeouts
            or self.worker_deaths
            or self.jobs_clamped
            or self.fallback_reasons
            or self.store_quarantined
            or self.trace_corrupt_dropped
        )

    def render(self) -> str:
        restored = []
        if self.from_cache:
            restored.append(f"{self.from_cache} cached")
        if self.from_manifest:
            restored.append(f"{self.from_manifest} resumed")
        parts = [
            f"{self.completed}/{self.total} jobs ok"
            + (f" ({', '.join(restored)})" if restored else "")
        ]
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.retries:
            parts.append(f"{self.retries} retried")
        if self.timeouts:
            parts.append(f"{self.timeouts} timed out")
        if self.worker_deaths:
            parts.append(f"{self.worker_deaths} worker deaths")
        if self.backends:
            mix = ", ".join(
                f"{count} {name}" for name, count in sorted(self.backends.items())
            )
            parts.append(f"engines: {mix}")
        if self.fallback_reasons:
            degraded = sum(self.fallback_reasons.values())
            parts.append(f"{degraded} degraded to scalar")
        if self.store_quarantined:
            parts.append(f"{self.store_quarantined} store files quarantined")
        if self.trace_corrupt_dropped:
            parts.append(f"{self.trace_corrupt_dropped} corrupt traces re-recorded")
        text = ", ".join(parts)
        if self.fallback_reasons:
            text += "\ndegradations: " + "; ".join(
                f"{count}x {reason}"
                for reason, count in sorted(self.fallback_reasons.items())
            )
        if self.jobs_clamped:
            text += (
                f"\nwarning: --jobs {self.requested_jobs} requested, "
                f"{self.workers} worker{'s' if self.workers != 1 else ''} "
                f"granted (CPU-count clamp)"
            )
        if self.failure_labels:
            text += "\nfailed jobs: " + ", ".join(self.failure_labels)
        return text

    def render_telemetry(self) -> str:
        """One line of pool telemetry: wall time, summed job time,
        workers, utilization."""
        return (
            f"wall {self.wall_seconds:.2f}s, job time {self.job_seconds:.2f}s, "
            f"{self.workers} worker{'s' if self.workers != 1 else ''}, "
            f"utilization {self.utilization:.0%}"
        )

    def to_metrics(self, registry):
        """Project the supervision counters and pool telemetry onto a
        :class:`~repro.obs.metrics.MetricsRegistry`."""
        runs = registry.counter(
            "repro_runner_jobs_total", help="grid jobs by disposition"
        )
        runs.inc(self.completed, disposition="completed")
        runs.inc(self.failed, disposition="failed")
        runs.inc(self.from_cache, disposition="from_cache")
        runs.inc(self.from_manifest, disposition="from_manifest")
        registry.counter(
            "repro_runner_simulations_total", help="simulations actually executed"
        ).inc(self.simulations)
        recoveries = registry.counter(
            "repro_runner_recoveries_total", help="supervision recovery events"
        )
        recoveries.inc(self.retries, kind="retry")
        recoveries.inc(self.timeouts, kind="timeout")
        recoveries.inc(self.worker_deaths, kind="worker_death")
        registry.gauge(
            "repro_runner_wall_seconds", help="wall-clock time of the grid"
        ).set(round(self.wall_seconds, 6))
        registry.gauge(
            "repro_runner_job_seconds", help="summed per-job execution time"
        ).set(round(self.job_seconds, 6))
        registry.gauge(
            "repro_runner_workers", help="worker processes used"
        ).set(self.workers)
        registry.gauge(
            "repro_runner_utilization", help="job_seconds / (wall * workers)"
        ).set(round(self.utilization, 4))
        engines = registry.counter(
            "repro_runner_backend_jobs_total",
            help="executed jobs by simulator engine",
        )
        for name, count in sorted(self.backends.items()):
            engines.inc(count, backend=name)
        # Degradation/store-hygiene counters are emitted only when
        # nonzero: healthy runs keep the exact metric surface the
        # golden snapshots pin.
        if self.fallback_reasons:
            degraded = registry.counter(
                "repro_runner_degraded_jobs_total",
                help="executed jobs that fell back to the scalar engine",
            )
            for reason, count in sorted(self.fallback_reasons.items()):
                degraded.inc(count, reason=reason)
        if self.store_quarantined or self.store_evictions or self.trace_corrupt_dropped:
            events = registry.counter(
                "repro_runner_store_events_total",
                help="cache/trace store hygiene events during the grid",
            )
            if self.store_quarantined:
                events.inc(self.store_quarantined, kind="quarantined")
            if self.store_evictions:
                events.inc(self.store_evictions, kind="evicted")
            if self.trace_corrupt_dropped:
                events.inc(self.trace_corrupt_dropped, kind="corrupt_trace")
        return registry

    def to_dict(self) -> Dict:
        return {
            "total": self.total,
            "completed": self.completed,
            "failed": self.failed,
            "from_cache": self.from_cache,
            "from_manifest": self.from_manifest,
            "simulations": self.simulations,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_deaths": self.worker_deaths,
            "transient_failures": self.transient_failures,
            "deterministic_failures": self.deterministic_failures,
            "wall_seconds": self.wall_seconds,
            "job_seconds": self.job_seconds,
            "workers": self.workers,
            "requested_jobs": self.requested_jobs,
            "jobs_clamped": self.jobs_clamped,
            "utilization": self.utilization,
            "backends": dict(self.backends),
            "fallback_reasons": dict(self.fallback_reasons),
            "store_quarantined": self.store_quarantined,
            "store_evictions": self.store_evictions,
            "trace_corrupt_dropped": self.trace_corrupt_dropped,
        }


class RunSummary:
    """A self-contained snapshot of one finished simulation.

    Mirrors the read-side API of :class:`~repro.system.results.RunResult`
    (``average_breakdown``, ``translation_overhead_ratio``,
    ``timing_summary``, ``study_results``, ...) so tables and figures
    accept either interchangeably.
    """

    __slots__ = (
        "scheme",
        "workload_name",
        "total_time",
        "refs_per_node",
        "barriers",
        "breakdowns",
        "counters",
        "timing",
        "study",
        "read_latency",
        "write_latency",
        "backend",
        "fallback_reason",
    )

    def __init__(
        self,
        scheme: Scheme,
        workload_name: str,
        total_time: int,
        refs_per_node: List[int],
        barriers: int,
        breakdowns: List[TimeBreakdown],
        counters: Dict[str, int],
        timing: Optional[Dict[str, float]] = None,
        study: Optional[StudyResults] = None,
        read_latency: Optional[LatencyHistogram] = None,
        write_latency: Optional[LatencyHistogram] = None,
        backend: Optional[str] = None,
        fallback_reason: Optional[str] = None,
    ) -> None:
        self.scheme = scheme
        self.workload_name = workload_name
        self.total_time = total_time
        self.refs_per_node = list(refs_per_node)
        self.barriers = barriers
        self.breakdowns = list(breakdowns)
        self.counters = dict(counters)
        self.timing = timing
        self.study = study
        #: Machine-wide stall-latency distributions (None on summaries
        #: deserialized from pre-1.4 cache files).
        self.read_latency = read_latency
        self.write_latency = write_latency
        #: Which simulator engine ran: "compiled" (columnar fast path)
        #: or "scalar" (the differential-testing oracle); replayed sweep
        #: summaries report "<capture backend>+replay".  None on
        #: summaries deserialized from pre-1.6 cache files.
        self.backend = backend
        #: Why the scalar engine ran (None on the fast path; e.g.
        #: "fast=False" or "REPRO_NO_FAST_SWEEP").  None on summaries
        #: deserialized from pre-1.7 cache files.
        self.fallback_reason = fallback_reason

    # ------------------------------------------------------------------
    @classmethod
    def from_result(cls, result) -> "RunSummary":
        """Snapshot a live :class:`~repro.system.results.RunResult`."""
        return cls(
            scheme=result.scheme,
            workload_name=result.workload_name,
            total_time=result.total_time,
            refs_per_node=result.refs_per_node,
            barriers=result.barriers,
            breakdowns=result.breakdowns,
            counters=result.counters.to_dict(),
            timing=result.timing_summary(),
            study=result.study_results(),
            read_latency=result.read_latency_histogram(),
            write_latency=result.write_latency_histogram(),
            backend=getattr(result, "backend", None),
            fallback_reason=getattr(result, "fallback_reason", None),
        )

    def with_study(self, study: Optional[StudyResults]) -> "RunSummary":
        """A copy with the sweep surface replaced (record/replay path:
        the hierarchy summary is recorded once, the study is replayed
        per bank configuration)."""
        return RunSummary(
            scheme=self.scheme,
            workload_name=self.workload_name,
            total_time=self.total_time,
            refs_per_node=self.refs_per_node,
            barriers=self.barriers,
            breakdowns=self.breakdowns,
            counters=self.counters,
            timing=self.timing,
            study=study,
            read_latency=self.read_latency,
            write_latency=self.write_latency,
            backend=self.backend,
            fallback_reason=self.fallback_reason,
        )

    # -- RunResult-compatible surface -----------------------------------
    @property
    def total_references(self) -> int:
        return sum(self.refs_per_node)

    def aggregate_breakdown(self) -> TimeBreakdown:
        total = TimeBreakdown()
        for breakdown in self.breakdowns:
            total = total + breakdown
        return total

    def average_breakdown(self) -> AverageBreakdown:
        return self.aggregate_breakdown().scaled(len(self.breakdowns))

    def translation_overhead_ratio(self) -> float:
        return self.aggregate_breakdown().translation_overhead_ratio()

    def timing_summary(self) -> Optional[Dict[str, float]]:
        return self.timing

    def study_results(self) -> Optional[StudyResults]:
        return self.study

    def read_latency_histogram(self) -> Optional[LatencyHistogram]:
        return self.read_latency

    def write_latency_histogram(self) -> Optional[LatencyHistogram]:
        return self.write_latency

    def to_metrics(self, registry=None):
        """This run as a :class:`~repro.obs.metrics.MetricsRegistry`
        (see :func:`repro.obs.export.registry_from_summary`)."""
        from repro.obs.export import registry_from_summary

        return registry_from_summary(self, registry)

    def summary(self) -> Dict[str, float]:
        breakdown = self.average_breakdown()
        return {
            "scheme": self.scheme.value,
            "workload": self.workload_name,
            "total_time": self.total_time,
            "references": self.total_references,
            "busy": breakdown.busy,
            "sync": breakdown.sync,
            "loc_stall": breakdown.loc_stall,
            "rem_stall": breakdown.rem_stall,
            "tlb_stall": breakdown.tlb_stall,
        }

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serializable form (used by the persistent result cache)."""
        return {
            "scheme": self.scheme.value,
            "workload": self.workload_name,
            "total_time": self.total_time,
            "refs_per_node": list(self.refs_per_node),
            "barriers": self.barriers,
            "breakdowns": [breakdown.to_dict() for breakdown in self.breakdowns],
            "counters": dict(self.counters),
            "timing": self.timing,
            "backend": self.backend,
            "fallback_reason": self.fallback_reason,
            "study": self.study.to_dict() if self.study is not None else None,
            "read_latency": (
                self.read_latency.to_dict() if self.read_latency is not None else None
            ),
            "write_latency": (
                self.write_latency.to_dict() if self.write_latency is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RunSummary":
        study = data.get("study")
        read_latency = data.get("read_latency")
        write_latency = data.get("write_latency")
        return cls(
            scheme=Scheme(data["scheme"]),
            workload_name=data["workload"],
            total_time=data["total_time"],
            refs_per_node=data["refs_per_node"],
            barriers=data["barriers"],
            breakdowns=[TimeBreakdown(**fields) for fields in data["breakdowns"]],
            counters=data["counters"],
            timing=data.get("timing"),
            backend=data.get("backend"),
            fallback_reason=data.get("fallback_reason"),
            study=StudyResults.from_dict(study) if study is not None else None,
            read_latency=(
                LatencyHistogram.from_dict(read_latency)
                if read_latency is not None
                else None
            ),
            write_latency=(
                LatencyHistogram.from_dict(write_latency)
                if write_latency is not None
                else None
            ),
        )

    def __repr__(self) -> str:
        return (
            f"RunSummary({self.scheme.value}/{self.workload_name}, "
            f"time={self.total_time}, refs={self.total_references})"
        )
