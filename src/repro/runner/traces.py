"""Persistent store of recorded tap traces (the record-once half).

A tap trace is keyed by everything that determines the *hierarchy*
simulation — machine parameters, workload (name + overrides + variant),
and the reference bound — but **not** the bank configuration
(``sizes``/``orgs``): one recorded trace replays every bank design.
:meth:`JobSpec.trace_hash` computes that identity; the store lays
entries out exactly like :class:`~repro.runner.cache.ResultCache`
(``<root>/<hh>/<digest>.trace``, atomic writes), with its own LRU size
cap since traces are orders of magnitude larger than result summaries.

The default root is ``<result-cache root>/traces`` so ``--cache-dir``
relocates both stores together, and a trace directory remains
inspectable: each file is self-describing (see
:mod:`repro.system.taptrace`).  Unreadable, truncated, or corrupt
trace files are treated as misses and re-recorded; corrupt ones are
quarantined (deleted) with a ``RuntimeWarning`` and counted in
:attr:`TraceStore.corrupt_dropped` so disk corruption stays visible.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path
from typing import Optional

from repro.runner.cache import default_cache_dir, default_max_bytes, evict_lru, touch
from repro.runner.jobs import JobSpec
from repro.runner.locking import (
    atomic_write_bytes,
    quarantine_file,
    recover_orphans,
    store_lock,
)
from repro.system.taptrace import TapTraceSet, TraceError

#: Environment override for the trace-store size cap (in MiB).
TRACE_MAX_MB_ENV = "REPRO_TRACE_MAX_MB"

#: Traces are large; bound the store even when the user sets no cap.
DEFAULT_TRACE_MAX_BYTES = 2 * 1024 * 1024 * 1024  # 2 GiB


def default_trace_dir() -> Path:
    """``traces/`` under the result-cache root."""
    return default_cache_dir() / "traces"


class TraceStore:
    """Content-addressed store of :class:`TapTraceSet` files."""

    #: Runtime-metrics label + quarantine reason prefix.
    store_name = "trace-store"

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_trace_dir()
        if max_bytes is None:
            max_bytes = default_max_bytes(TRACE_MAX_MB_ENV)
        self.max_bytes = max_bytes if max_bytes is not None else DEFAULT_TRACE_MAX_BYTES
        self.hits = 0
        self.misses = 0
        #: Corrupt trace files quarantined by :meth:`get` — disk
        #: corruption is recoverable but must never be silent.
        self.corrupt_dropped = 0
        #: Files moved to quarantine (corrupt traces + orphaned temps).
        self.quarantined = 0
        #: Entries removed by the LRU size cap (this store object).
        self.evictions = 0
        self._recovered = False

    # ------------------------------------------------------------------
    def path_for(self, spec: JobSpec) -> Path:
        digest = spec.trace_hash()
        return self.root / digest[:2] / f"{digest}.trace"

    def recover(self) -> int:
        """Quarantine partial temp files from dead writers (lazy, once
        per store object, under the store lock)."""
        self._recovered = True
        if not self.root.is_dir():
            return 0
        with store_lock(self.root):
            recovered = recover_orphans(self.root, self.store_name)
        self.quarantined += recovered
        return recovered

    def get(self, spec: JobSpec) -> Optional[TapTraceSet]:
        """The recorded trace for ``spec``'s hierarchy run, or None."""
        if not self._recovered:
            self.recover()
        path = self.path_for(spec)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            traces = TapTraceSet.from_bytes(blob)
        except TraceError as exc:
            # Truncated or corrupt: quarantine it and re-record, loudly
            # — corruption usually means a sick disk or a torn writer.
            # The bytes move to quarantine/ (not the bin) so the
            # failure stays diagnosable.
            self.misses += 1
            self.corrupt_dropped += 1
            from repro.obs.runtime import record_corrupt_trace

            record_corrupt_trace()
            warnings.warn(
                f"dropping corrupt tap trace {path}: {exc}; re-recording",
                RuntimeWarning,
                stacklevel=2,
            )
            if quarantine_file(path, self.root, self.store_name, reason=str(exc)):
                self.quarantined += 1
            return None
        self.hits += 1
        touch(path)
        return traces

    def put(self, spec: JobSpec, traces: TapTraceSet) -> Path:
        """Store one recorded trace; returns the entry's path."""
        if not self._recovered:
            self.recover()
        path = self.path_for(spec)
        atomic_write_bytes(path, traces.to_bytes())
        if self.max_bytes is not None:
            with store_lock(self.root):
                removed, _ = evict_lru(
                    self.root, "*/*.trace", self.max_bytes, store=self.store_name
                )
            self.evictions += removed
        return path

    def contains(self, spec: JobSpec) -> bool:
        return self.path_for(spec).is_file()

    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        if not self.root.is_dir():
            return 0
        total = 0
        for entry in self.root.glob("*/*.trace"):
            try:
                total += entry.stat().st_size
            except OSError:
                continue
        return total

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.trace"))

    def clear(self) -> int:
        """Delete every trace; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in self.root.glob("*/*.trace"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:
        return f"TraceStore({self.root}, entries={len(self)})"
