"""Long-running simulation service tier.

Turns the batch runner into a network service with three pieces:

* :mod:`repro.service.server` — an asyncio JSON-over-HTTP front-end
  (``repro serve``): clients POST grids of :class:`JobSpec` dicts,
  poll ``/runs/<id>/status`` (manifest heartbeats → ETA), and GET
  results.  Identical in-flight work coalesces by content hash; warm
  specs serve straight from the :class:`ResultCache`.
* :mod:`repro.service.hub` / :mod:`repro.service.worker` — a remote
  worker pool (``repro worker --connect host:port``): workers pull
  jobs over TCP with the same length-prefixed pickle framing and the
  same retry/timeout/:class:`JobFailure` semantics as the forked-pipe
  pool, so grids shard across hosts under the existing fault model.
* :mod:`repro.service.client` — a small blocking HTTP client used by
  the integration tests and the load-test benchmark.

See ``docs/service.md`` for the API and protocol reference.
"""

from repro.service.client import ServiceClient
from repro.service.hub import WorkerHub
from repro.service.server import ServiceThread, SimulationService
from repro.service.worker import run_worker

__all__ = [
    "ServiceClient",
    "ServiceThread",
    "SimulationService",
    "WorkerHub",
    "run_worker",
]
