"""A small blocking client for the service API (tests + benchmarks).

One ``http.client`` connection per call keeps the failure surface
trivial (no pooling, no retry policy to reason about); the load-test
benchmark brings its own asyncio client where connection volume is the
point.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.runner.jobs import JobSpec

#: Terminal submission states.
_FINISHED = ("done", "failed")


class ServiceError(RuntimeError):
    """A non-2xx answer from the service."""

    def __init__(self, status: int, payload: object) -> None:
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload


class ServiceClient:
    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def request(self, method: str, path: str,
                payload: Optional[dict] = None) -> Tuple[int, object]:
        """One round trip; JSON bodies decoded, text passed through."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = json.dumps(payload) if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            ctype = response.headers.get("Content-Type", "")
            if "json" in ctype:
                data: object = json.loads(raw.decode("utf-8"))
            else:
                data = raw.decode("utf-8")
            return response.status, data
        finally:
            conn.close()

    def _checked(self, method: str, path: str,
                 payload: Optional[dict] = None,
                 accept: Sequence[int] = (200, 202)) -> object:
        status, data = self.request(method, path, payload)
        if status not in accept:
            raise ServiceError(status, data)
        return data

    # ------------------------------------------------------------------
    def submit(self, specs: Sequence[Union[JobSpec, Dict]]) -> dict:
        """POST a grid; specs may be :class:`JobSpec` or key() dicts."""
        encoded: List[Dict] = [
            spec.key() if isinstance(spec, JobSpec) else dict(spec)
            for spec in specs
        ]
        return self._checked("POST", "/runs", {"specs": encoded})

    def status(self, run_id: str) -> dict:
        return self._checked("GET", f"/runs/{run_id}/status")

    def results(self, run_id: str) -> dict:
        return self._checked("GET", f"/runs/{run_id}/results")

    def metrics(self) -> str:
        return self._checked("GET", "/metrics")

    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")

    def workers(self) -> dict:
        return self._checked("GET", "/workers")

    # ------------------------------------------------------------------
    def wait(self, run_id: str, timeout: float = 120.0,
             poll: float = 0.1) -> dict:
        """Poll status until the run finishes; returns the final view."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.status(run_id)
            if view.get("state") in _FINISHED:
                return view
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"run {run_id} still {view.get('state')!r} "
                    f"after {timeout}s")
            time.sleep(poll)

    def run(self, specs: Sequence[Union[JobSpec, Dict]],
            timeout: float = 120.0) -> dict:
        """submit → wait → results, in one call."""
        info = self.submit(specs)
        self.wait(info["run"], timeout=timeout)
        return self.results(info["run"])
