"""Length-prefixed pickle framing for the remote-worker protocol.

The forked-pipe pool moves jobs over ``multiprocessing.Pipe``
connections, whose wire format is a 4-byte big-endian length prefix
followed by a pickle of the payload.  The remote-worker protocol keeps
exactly that shape over TCP, so the supervisor-side message handling
(``("ok", ...)`` / ``("err", ...)`` tuples, EOF-means-worker-death) is
shared between both backends rather than re-invented.

Pickle over a socket is an explicit trust boundary: a frame is
arbitrary code execution on unpickling.  The hub binds to loopback by
default and the protocol is documented as "trusted network only" —
same stance as ``multiprocessing``'s own connection layer.
"""

from __future__ import annotations

import pickle
import socket
import struct

#: Refuse frames beyond this size — a corrupt or hostile length prefix
#: must not balloon into an unbounded allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class FrameError(OSError):
    """A frame violated the protocol (oversized or truncated)."""


def pack_frame(payload: object) -> bytes:
    """Serialize one message to its wire form (prefix + pickle)."""
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(blob)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(blob)) + blob


def write_frame(sock: socket.socket, payload: object) -> None:
    sock.sendall(pack_frame(payload))


def _recv_exact(sock: socket.socket, count: int, *, at_boundary: bool) -> bytes:
    """Read exactly ``count`` bytes.

    A clean EOF *between* frames raises :class:`EOFError` (the peer
    went away in an orderly fashion); EOF *inside* a frame is a
    :class:`FrameError` — someone died mid-write.
    """
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if at_boundary and remaining == count:
                raise EOFError("connection closed")
            raise FrameError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> object:
    """Read one message; :class:`EOFError` on orderly peer close."""
    header = _recv_exact(sock, _LENGTH.size, at_boundary=True)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    return pickle.loads(_recv_exact(sock, length, at_boundary=False))


# ----------------------------------------------------------------------
# asyncio variants (same wire format)
# ----------------------------------------------------------------------
async def read_frame_async(reader) -> object:
    header = await reader.readexactly(_LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    return pickle.loads(await reader.readexactly(length))


async def write_frame_async(writer, payload: object) -> None:
    writer.write(pack_frame(payload))
    await writer.drain()
