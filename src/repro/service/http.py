"""A minimal asyncio HTTP/1.1 layer for the service front-end.

Hand-rolled on ``asyncio.start_server`` (the stdlib ships no async
HTTP server), covering exactly what the job API needs: request-line +
header parsing, ``Content-Length`` bodies, JSON responses, and
keep-alive — the load test drives thousands of concurrent clients, so
connection reuse matters.  Anything outside that envelope (chunked
bodies, pipelining tricks, huge headers) is rejected with a 4xx rather
than guessed at.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote

MAX_BODY_BYTES = 16 * 1024 * 1024
MAX_HEADER_LINE = 8192
MAX_HEADERS = 100

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    431: "Request Header Fields Too Large", 500: "Internal Server Error",
}


class HttpError(Exception):
    """Maps straight to an error response."""

    def __init__(self, status: int, reason: str = "") -> None:
        super().__init__(reason or _REASONS.get(status, "error"))
        self.status = status
        self.reason = reason or _REASONS.get(status, "error")


@dataclass
class Request:
    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> object:
        if not self.body:
            raise HttpError(400, "expected a JSON body")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from None


async def read_request(reader) -> Optional[Request]:
    """Parse one request; ``None`` when the client hung up cleanly
    (or mid-request — a dropped client is routine, not an error)."""
    import asyncio

    try:
        line = await reader.readline()
    except (ConnectionResetError, OSError):
        return None
    if not line:
        return None
    if len(line) > MAX_HEADER_LINE:
        raise HttpError(431)
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise HttpError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]

    headers: Dict[str, str] = {}
    while True:
        try:
            raw = await reader.readline()
        except (ConnectionResetError, OSError):
            return None
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            return None  # client vanished mid-headers
        if len(raw) > MAX_HEADER_LINE or len(headers) >= MAX_HEADERS:
            raise HttpError(431)
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()

    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise HttpError(400, "malformed Content-Length") from None
    if length < 0:
        raise HttpError(400, "malformed Content-Length")
    if length > MAX_BODY_BYTES:
        raise HttpError(413)
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(400, "chunked bodies are not supported")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
            return None  # dropped mid-body

    path, _, query_string = target.partition("?")
    query = dict(parse_qsl(query_string))
    return Request(method=method, path=unquote(path), query=query,
                   headers=headers, body=body)


def response_bytes(
    status: int,
    payload: object = None,
    *,
    text: Optional[str] = None,
    content_type: str = "application/json",
    keep_alive: bool = True,
) -> bytes:
    """Serialize one response (JSON ``payload`` or raw ``text``)."""
    if text is not None:
        body = text.encode("utf-8")
        content_type = content_type if content_type != "application/json" \
            else "text/plain; charset=utf-8"
    else:
        body = (json.dumps(payload) + "\n").encode("utf-8")
    reason = _REASONS.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body
