"""The push side of the remote-worker protocol: the job hub.

:class:`WorkerHub` listens on a TCP port, registers ``repro worker``
processes as they dial in, and — when a :class:`BatchRunner` hands it a
grid — plays the same supervisor role the forked-pipe pool plays, over
sockets:

* one job outstanding per worker, so the hub always knows which job a
  dead or wedged worker was holding;
* socket EOF mid-job = worker death → ``stats.worker_deaths`` and a
  transient retry (re-dispatched to any surviving worker);
* a blown per-attempt deadline closes the socket (the remote analogue
  of killing the slot), counts ``stats.timeouts``, and retries;
* transient errors back off with the runner's own deterministic
  jitter (:meth:`BatchRunner._backoff`); deterministic errors fail
  through the runner's ``fail`` path exactly as in-process jobs do.

Workers may join mid-run (the dispatch loop polls for new arrivals)
and the pool may drain to zero: :meth:`run_jobs` then returns the
unfinished jobs so the caller can fall back to in-process execution —
a vanished pool degrades a run, never strands it.
"""

from __future__ import annotations

import heapq
import select
import socket
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.obs.runtime import set_connected_workers
from repro.runner.batch import JobFailure
from repro.service.framing import FrameError, read_frame, write_frame

#: How long run_jobs sleeps between polls while idle-waiting for new
#: workers or delayed retries (also bounds join-latency mid-run).
_POLL_SECONDS = 0.25

_HELLO_TIMEOUT = 10.0


class _RemoteWorker:
    """One registered worker: its socket plus current-job bookkeeping."""

    __slots__ = ("wid", "sock", "info", "alive", "jobs_done",
                 "index", "spec", "attempt", "deadline")

    def __init__(self, wid: int, sock: socket.socket, info: dict) -> None:
        self.wid = wid
        self.sock = sock
        self.info = info
        self.alive = True
        self.jobs_done = 0
        self.clear()

    @property
    def busy(self) -> bool:
        return self.index is not None

    def clear(self) -> None:
        self.index = None
        self.spec = None
        self.attempt = None
        self.deadline = None


class WorkerHub:
    """Accepts remote workers and runs grids across them.

    Duck-types the ``worker_pool`` interface :class:`BatchRunner`
    consumes: :meth:`worker_count` and :meth:`run_jobs`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._listener = socket.create_server((host, port))
        self.host = host
        self.port = self._listener.getsockname()[1]
        self._lock = threading.Lock()
        self._workers: Dict[int, _RemoteWorker] = {}
        self._next_id = 0
        self._closed = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="repro-hub-accept"
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._register, args=(sock,), daemon=True
            ).start()

    def _register(self, sock: socket.socket) -> None:
        try:
            sock.settimeout(_HELLO_TIMEOUT)
            hello = read_frame(sock)
            if not (isinstance(hello, tuple) and hello and hello[0] == "hello"):
                raise FrameError("expected a hello frame")
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except (EOFError, OSError, Exception):
            try:
                sock.close()
            except OSError:
                pass
            return
        info = dict(hello[1]) if len(hello) > 1 and isinstance(hello[1], dict) else {}
        with self._lock:
            if self._closed:
                sock.close()
                return
            wid = self._next_id
            self._next_id += 1
            self._workers[wid] = _RemoteWorker(wid, sock, info)
            count = len(self._workers)
        set_connected_workers(count)

    def worker_count(self) -> int:
        with self._lock:
            return sum(1 for w in self._workers.values() if w.alive)

    def workers_info(self) -> List[dict]:
        """Connected workers, for ``/workers`` (id, pid, host, state)."""
        with self._lock:
            return [
                {
                    "id": w.wid,
                    "pid": w.info.get("pid"),
                    "host": w.info.get("host"),
                    "version": w.info.get("version"),
                    "busy": w.busy,
                    "jobs_done": w.jobs_done,
                }
                for w in self._workers.values()
                if w.alive
            ]

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> bool:
        """Block until ``count`` workers are registered (tests/bench)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.worker_count() >= count:
                return True
            time.sleep(0.05)
        return self.worker_count() >= count

    def _drop(self, worker: _RemoteWorker) -> None:
        worker.alive = False
        try:
            worker.sock.close()
        except OSError:
            pass
        with self._lock:
            self._workers.pop(worker.wid, None)
            count = len(self._workers)
        set_connected_workers(count)

    # ------------------------------------------------------------------
    # supervised execution across the pool
    # ------------------------------------------------------------------
    def run_jobs(self, pending, runner, record, fail, heartbeat):
        """Drive ``pending`` ``(index, spec)`` pairs to completion.

        Returns the jobs it could *not* finish as ``(index, spec,
        attempt)`` triples — non-empty only when every worker vanished;
        the caller is expected to finish them in-process.
        """
        queue = deque((index, spec, 1) for index, spec in pending)
        #: (ready_at, index, next_attempt, spec) — delayed retries,
        #: same shape as the forked pool's heap.
        delayed: list = []
        while True:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, index, attempt, spec = heapq.heappop(delayed)
                queue.append((index, spec, attempt))

            with self._lock:
                workers = [w for w in self._workers.values() if w.alive]
            busy = [w for w in workers if w.busy]

            if not workers and not busy:
                # Pool exhausted: hand everything unfinished back.
                leftovers = [(index, spec, attempt)
                             for index, spec, attempt in queue]
                leftovers += [(index, spec, attempt)
                              for _, index, attempt, spec in delayed]
                return sorted(leftovers)

            for worker in workers:
                if worker.busy or not queue:
                    continue
                index, spec, attempt = queue.popleft()
                try:
                    write_frame(worker.sock, ("job", index, attempt, spec))
                except OSError:
                    # Died while idle: no attempt consumed, try the
                    # next worker (the forked pool respawns here; a
                    # remote worker is simply gone).
                    self._drop(worker)
                    queue.appendleft((index, spec, attempt))
                    continue
                worker.index = index
                worker.spec = spec
                worker.attempt = attempt
                worker.deadline = (
                    time.monotonic() + runner.timeout
                    if runner.timeout else None
                )
                heartbeat(spec, attempt, worker=worker.wid)

            busy = [w for w in workers if w.alive and w.busy]
            if not busy:
                if queue:
                    continue  # dispatch loop above will retry/requeue
                if delayed:
                    time.sleep(min(_POLL_SECONDS,
                                   max(0.0, delayed[0][0] - time.monotonic())))
                    continue
                return []  # drained: queue, delayed, and in-flight all empty

            wakeups = [w.deadline for w in busy if w.deadline is not None]
            if delayed:
                wakeups.append(delayed[0][0])
            wait = min(wakeups) - time.monotonic() if wakeups else _POLL_SECONDS
            wait = max(0.0, min(wait, _POLL_SECONDS))
            try:
                ready, _, _ = select.select([w.sock for w in busy], [], [], wait)
            except OSError:
                ready = []  # a socket died between snapshot and select
            for sock in ready:
                worker = next(w for w in busy if w.sock is sock)
                self._drain(worker, runner, record, fail, delayed)

            now = time.monotonic()
            for worker in busy:
                if (worker.alive and worker.busy
                        and worker.deadline is not None
                        and now >= worker.deadline):
                    self._expire(worker, runner, fail, delayed)

    def _drain(self, worker: _RemoteWorker, runner, record, fail, delayed) -> None:
        index, spec, attempt = worker.index, worker.spec, worker.attempt
        try:
            message = read_frame(worker.sock)
        except (EOFError, FrameError, OSError):
            # Worker death mid-job (SIGKILL, OOM, network partition):
            # same accounting and retry path as a closed pipe.
            runner.stats.worker_deaths += 1
            self._drop(worker)
            self._retry_or_fail(
                runner, fail, delayed, index, spec, attempt,
                error_type="WorkerDied",
                message=f"remote worker {worker.wid} disconnected mid-job",
                worker_died=True,
            )
            return
        worker.clear()
        worker.jobs_done += 1
        kind = message[0]
        if kind == "ok":
            _, index, attempt, summary, elapsed = message
            record(index, summary, elapsed, attempts=attempt)
            return
        _, index, attempt, error_type, text, tb, transient, elapsed = message
        if transient and attempt <= runner.retries:
            runner.stats.retries += 1
            heapq.heappush(
                delayed,
                (time.monotonic() + runner._backoff(index, attempt),
                 index, attempt + 1, spec),
            )
            return
        fail(index, JobFailure(
            spec=spec, error_type=error_type, message=text, traceback=tb,
            attempts=attempt, transient=transient, elapsed=elapsed,
        ))

    def _expire(self, worker: _RemoteWorker, runner, fail, delayed) -> None:
        """Deadline blown: closing the socket is the remote kill."""
        index, spec, attempt = worker.index, worker.spec, worker.attempt
        runner.stats.timeouts += 1
        self._drop(worker)
        self._retry_or_fail(
            runner, fail, delayed, index, spec, attempt,
            error_type="JobTimeout",
            message=f"job exceeded {runner.timeout}s wall clock",
            timed_out=True,
        )

    @staticmethod
    def _retry_or_fail(runner, fail, delayed, index, spec, attempt,
                       error_type, message, **flags) -> None:
        if attempt <= runner.retries:
            runner.stats.retries += 1
            heapq.heappush(
                delayed,
                (time.monotonic() + runner._backoff(index, attempt),
                 index, attempt + 1, spec),
            )
            return
        fail(index, JobFailure(
            spec=spec, error_type=error_type, message=message,
            attempts=attempt, transient=True, **flags,
        ))

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._closed = True
            workers = list(self._workers.values())
            self._workers.clear()
        try:
            self._listener.close()
        except OSError:
            pass
        for worker in workers:
            if not worker.busy:
                try:
                    write_frame(worker.sock, ("stop",))
                except OSError:
                    pass
            try:
                worker.sock.close()
            except OSError:
                pass
        set_connected_workers(0)
