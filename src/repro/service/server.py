"""The simulation service: an async job API over the batch runner.

Request lifecycle
-----------------
``POST /runs`` takes ``{"specs": [<JobSpec.key() dict>, ...]}`` and
answers with a run id + URLs.  Each spec in the grid resolves through
a three-level ladder, cheapest first:

1. **Warm** — a :class:`ResultCache` hit (fronted by an in-memory memo
   so repeat requests never touch disk) serves at memory speed.
2. **Coalesced** — the spec is already executing for another
   submission; this one attaches to the in-flight job's future instead
   of scheduling a duplicate (``repro_coalesced_requests_total`` /
   ``repro_service_coalesced_jobs_total``).
3. **Scheduled** — genuinely new work goes to a single-file executor
   thread that runs a :class:`BatchRunner` (optionally across the
   remote :class:`WorkerHub`), with the submission id as the manifest
   run id — so ``/runs/<id>/status`` gets heartbeat ETAs from
   :func:`read_status` for free.

Whole-grid coalescing sits above that: an identical grid (same sorted
content hashes) POSTed while in flight returns the *same* run id.

Everything here is deterministic-by-construction downstream: a
coalesced or cached result is bit-identical to a fresh run, so the
ladder is invisible in the payload except for the ``source`` field.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import queue as _queue
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import __version__
from repro.obs.export import to_openmetrics
from repro.obs.runtime import (
    record_coalesced_job,
    record_coalesced_request,
    record_service_request,
    record_service_simulations,
    record_spec_result,
    runtime_registry,
)
from repro.runner.batch import BatchRunner
from repro.runner.cache import ResultCache, default_cache_dir
from repro.runner.jobs import JobSpec
from repro.runner.manifest import read_status
from repro.runner.traces import TraceStore
from repro.service.http import HttpError, Request, read_request, response_bytes

#: Submission states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


def submission_id(spec_hashes: List[str]) -> str:
    """Grid identity: order-independent over the member spec hashes
    (and implicitly version-scoped, since each hash folds it in)."""
    blob = "\n".join(sorted(spec_hashes))
    return hashlib.sha256(blob.encode()).hexdigest()[:20]


class _SerialExecutor:
    """One daemon worker thread; grids execute strictly in order.

    A daemon thread (unlike ``ThreadPoolExecutor``'s non-daemon pool)
    cannot wedge interpreter shutdown if a simulation is mid-flight
    when a test or the CLI exits.
    """

    def __init__(self) -> None:
        self._queue: _queue.Queue = _queue.Queue()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-service-exec"
        )
        self._thread.start()

    def submit(self, loop: asyncio.AbstractEventLoop, fn, *args) -> asyncio.Future:
        future = loop.create_future()
        self._queue.put((loop, future, fn, args))
        return future

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            loop, future, fn, args = item
            try:
                result = fn(*args)
            except BaseException as exc:  # delivered, not swallowed
                self._resolve_later(loop, future, None, exc)
            else:
                self._resolve_later(loop, future, result, None)

    @staticmethod
    def _resolve_later(loop, future, result, exc) -> None:
        def _set() -> None:
            if future.cancelled():
                return
            if exc is not None:
                future.set_exception(exc)
            else:
                future.set_result(result)
        with contextlib.suppress(RuntimeError):  # loop already closed
            loop.call_soon_threadsafe(_set)

    def close(self) -> None:
        self._queue.put(None)


class Submission:
    """One POSTed grid and everything learned about it since."""

    __slots__ = ("id", "specs", "hashes", "created", "state", "sources",
                 "results", "failures", "owned", "attached", "requests",
                 "grid_stats", "effective_jobs", "error", "done_event",
                 "finished_at", "task")

    def __init__(self, sid: str, specs: List[JobSpec], hashes: List[str]) -> None:
        self.id = sid
        self.specs = specs
        self.hashes = hashes
        self.created = time.time()
        self.state = QUEUED
        #: Per-spec provenance, submission order: cache | coalesced | executed.
        self.sources: List[str] = []
        self.results: Dict[str, dict] = {}
        self.failures: Dict[str, dict] = {}
        self.owned: List[JobSpec] = []
        self.attached: Dict[str, asyncio.Future] = {}
        self.requests = 1
        self.grid_stats: Optional[dict] = None
        self.effective_jobs: Optional[int] = None
        self.error: Optional[str] = None
        self.done_event = asyncio.Event()
        self.finished_at: Optional[float] = None
        self.task: Optional[asyncio.Task] = None


class SimulationService:
    """The asyncio front-end behind ``repro serve``."""

    def __init__(
        self,
        cache_dir=None,
        *,
        jobs: int = 1,
        retries: int = 1,
        timeout: Optional[float] = None,
        replay: bool = True,
        hub=None,
        max_grid_jobs: int = 256,
        max_submissions: int = 1024,
        memo_entries: int = 4096,
        execute_delay: float = 0.0,
    ) -> None:
        root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.cache_root = root
        self.cache = ResultCache(root)
        self.trace_store = TraceStore(root / "traces")
        self.manifest_dir = root / "runs"
        self.jobs = jobs
        self.retries = retries
        self.timeout = timeout
        self.replay = replay
        self.hub = hub
        self.max_grid_jobs = max_grid_jobs
        self.max_submissions = max_submissions
        #: Deterministic pre-execution sleep — lets tests hold a spec
        #: in flight long enough to prove coalescing.
        self.execute_delay = execute_delay
        self.submissions: "OrderedDict[str, Submission]" = OrderedDict()
        #: content_hash -> future resolving to ("ok", summary_dict) or
        #: ("failed", failure_dict) — the spec-level coalescing table.
        self.inflight: Dict[str, asyncio.Future] = {}
        self._memo: "OrderedDict[str, dict]" = OrderedDict()
        self._memo_entries = memo_entries
        self._executor = _SerialExecutor()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(self._handle_client, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def serve_forever(self) -> None:
        assert self._server is not None
        await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        self.close()

    def close(self) -> None:
        """Synchronous teardown of the non-asyncio resources."""
        self._executor.close()
        if self.hub is not None:
            self.hub.close()

    # ------------------------------------------------------------------
    # connection loop
    # ------------------------------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(response_bytes(
                        exc.status, {"error": exc.reason}, keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break  # client hung up (possibly mid-request) — routine
                try:
                    status, payload, text, ctype = await self._route(request)
                except HttpError as exc:
                    status, payload, text, ctype = (
                        exc.status, {"error": exc.reason}, None, "application/json")
                except Exception as exc:
                    # A handler bug answers 500; it never tears down the
                    # connection loop or the server.
                    status, payload, text, ctype = (
                        500, {"error": f"{type(exc).__name__}: {exc}"},
                        None, "application/json")
                writer.write(response_bytes(
                    status, payload, text=text, content_type=ctype,
                    keep_alive=request.keep_alive))
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, TimeoutError, OSError):
            pass  # dropped connections are the client's prerogative
        except asyncio.CancelledError:
            raise
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(self, request: Request):
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz":
            record_service_request("healthz")
            return 200, self._health(), None, "application/json"
        if path == "/metrics":
            record_service_request("metrics")
            return 200, None, to_openmetrics(runtime_registry()), \
                "application/openmetrics-text"
        if path == "/workers":
            record_service_request("workers")
            info = self.hub.workers_info() if self.hub is not None else []
            return 200, {"workers": info, "count": len(info)}, None, \
                "application/json"
        if path == "/runs":
            if method == "POST":
                record_service_request("submit")
                return await self._submit(request)
            if method == "GET":
                record_service_request("list")
                return 200, self._list_runs(), None, "application/json"
            raise HttpError(405)
        if path.startswith("/runs/"):
            parts = path.split("/")  # ['', 'runs', '<id>', <leaf>?]
            if method != "GET" or len(parts) not in (3, 4):
                raise HttpError(405 if method != "GET" else 404)
            sub = self.submissions.get(parts[2])
            if sub is None:
                raise HttpError(404, f"unknown run {parts[2]!r}")
            leaf = parts[3] if len(parts) == 4 else "status"
            if leaf == "status":
                record_service_request("status")
                return 200, self._status(sub), None, "application/json"
            if leaf == "results":
                record_service_request("results")
                return self._results(sub)
            raise HttpError(404)
        raise HttpError(404)

    def _health(self) -> dict:
        return {
            "ok": True,
            "version": __version__,
            "submissions": len(self.submissions),
            "inflight_specs": len(self.inflight),
            "workers": self.hub.worker_count() if self.hub is not None else 0,
        }

    def _list_runs(self) -> dict:
        return {"runs": [self._run_info(sub) for sub in self.submissions.values()]}

    # ------------------------------------------------------------------
    # POST /runs
    # ------------------------------------------------------------------
    async def _submit(self, request: Request):
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "body must be a JSON object")
        raw_specs = body.get("specs")
        if not isinstance(raw_specs, list) or not raw_specs:
            raise HttpError(400, "specs must be a non-empty list")
        if len(raw_specs) > self.max_grid_jobs:
            raise HttpError(413, f"grid exceeds {self.max_grid_jobs} jobs")
        try:
            specs = [JobSpec.from_dict(raw) for raw in raw_specs]
        except Exception as exc:
            raise HttpError(400, f"invalid job spec: {exc}") from None
        hashes = [spec.content_hash() for spec in specs]
        sid = submission_id(hashes)

        existing = self.submissions.get(sid)
        if existing is not None:
            existing.requests += 1
            coalesced = existing.state in (QUEUED, RUNNING)
            if coalesced:
                record_coalesced_request()
            status = 202 if coalesced else 200
            return status, self._run_info(existing, coalesced=coalesced), \
                None, "application/json"

        sub = Submission(sid, specs, hashes)
        self.submissions[sid] = sub
        self._prune_submissions()
        seen_in_grid: Dict[str, str] = {}
        for spec, digest in zip(specs, hashes):
            if digest in seen_in_grid:
                sub.sources.append(seen_in_grid[digest])
                continue
            payload = self._lookup(spec, digest)
            if payload is not None:
                sub.results[digest] = payload
                sub.sources.append("cache")
                seen_in_grid[digest] = "cache"
                record_spec_result("cache")
                continue
            future = self.inflight.get(digest)
            if future is not None:
                sub.attached[digest] = future
                sub.sources.append("coalesced")
                seen_in_grid[digest] = "coalesced"
                record_coalesced_job()
                record_spec_result("coalesced")
                continue
            self.inflight[digest] = self._loop.create_future()
            sub.owned.append(spec)
            sub.sources.append("executed")
            seen_in_grid[digest] = "executed"
            record_spec_result("executed")

        if sub.owned or sub.attached:
            sub.task = asyncio.ensure_future(self._drive(sub))
            return 202, self._run_info(sub, coalesced=False), None, \
                "application/json"
        self._finish(sub)
        return 200, self._run_info(sub, coalesced=False), None, \
            "application/json"

    def _finish(self, sub: Submission) -> None:
        sub.state = FAILED if (sub.failures or sub.error) else DONE
        sub.finished_at = time.time()
        sub.done_event.set()

    def _prune_submissions(self) -> None:
        while len(self.submissions) > self.max_submissions:
            for sid, sub in self.submissions.items():
                if sub.state in (DONE, FAILED):
                    del self.submissions[sid]
                    break
            else:
                return  # everything live; let the table run hot

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def _drive(self, sub: Submission) -> None:
        try:
            if sub.owned:
                outcomes = await self._executor.submit(
                    self._loop, self._execute, sub)
                for spec, outcome in zip(sub.owned, outcomes):
                    digest = spec.content_hash()
                    if outcome is not None and outcome.ok:
                        payload = outcome.summary.to_dict()
                        self._remember(digest, payload)
                        sub.results[digest] = payload
                        value = ("ok", payload)
                    else:
                        failure = {
                            "error_type": getattr(outcome, "error_type", "JobError"),
                            "message": getattr(outcome, "message", "job vanished"),
                            "attempts": getattr(outcome, "attempts", 1),
                            "transient": getattr(outcome, "transient", False),
                        }
                        sub.failures[digest] = failure
                        value = ("failed", failure)
                    future = self.inflight.pop(digest, None)
                    if future is not None and not future.done():
                        future.set_result(value)
            for digest, future in sub.attached.items():
                kind, payload = await asyncio.shield(future)
                if kind == "ok":
                    sub.results[digest] = payload
                else:
                    sub.failures[digest] = dict(payload)
        except Exception as exc:
            sub.error = f"{type(exc).__name__}: {exc}"
            # Unblock anyone coalesced onto jobs this grid owned.
            for spec in sub.owned:
                digest = spec.content_hash()
                future = self.inflight.pop(digest, None)
                if future is not None and not future.done():
                    future.set_result(("failed", {
                        "error_type": type(exc).__name__,
                        "message": str(exc),
                        "attempts": 1,
                        "transient": False,
                    }))
        finally:
            self._finish(sub)

    def _execute(self, sub: Submission):
        """Runs on the executor thread: one BatchRunner per grid."""
        if self.execute_delay:
            time.sleep(self.execute_delay)
        sub.state = RUNNING
        pool = self.hub if (self.hub is not None
                            and self.hub.worker_count() > 0) else None
        runner = BatchRunner(
            jobs=self.jobs,
            cache=self.cache,
            trace_store=self.trace_store,
            replay=self.replay,
            retries=self.retries,
            timeout=self.timeout,
            keep_going=True,
            manifest_dir=self.manifest_dir,
            manifest_run_id=sub.id,
            worker_pool=pool,
        )
        try:
            return runner.run(sub.owned)
        finally:
            sub.grid_stats = runner.stats.to_dict()
            sub.effective_jobs = runner.effective_jobs
            record_service_simulations(runner.simulations_run)

    # ------------------------------------------------------------------
    # warm-result ladder
    # ------------------------------------------------------------------
    def _lookup(self, spec: JobSpec, digest: str) -> Optional[dict]:
        payload = self._memo.get(digest)
        if payload is not None:
            self._memo.move_to_end(digest)
            return payload
        summary = self.cache.get(spec)
        if summary is None:
            return None
        payload = summary.to_dict()
        self._remember(digest, payload)
        return payload

    def _remember(self, digest: str, payload: dict) -> None:
        self._memo[digest] = payload
        self._memo.move_to_end(digest)
        while len(self._memo) > self._memo_entries:
            self._memo.popitem(last=False)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def _run_info(self, sub: Submission, coalesced: bool = False) -> dict:
        return {
            "run": sub.id,
            "url": f"/runs/{sub.id}",
            "status_url": f"/runs/{sub.id}/status",
            "results_url": f"/runs/{sub.id}/results",
            "state": sub.state,
            "coalesced": coalesced,
            "specs": len(sub.specs),
            "requests": sub.requests,
        }

    def _status(self, sub: Submission) -> dict:
        sources = {key: sub.sources.count(key)
                   for key in ("cache", "coalesced", "executed")}
        payload = {
            "run": sub.id,
            "state": sub.state,
            "specs": len(sub.specs),
            "done": len(sub.results) + len(sub.failures),
            "failed": len(sub.failures),
            "requests": sub.requests,
            "created": sub.created,
            "sources": sources,
            "error": sub.error,
            "effective_jobs": sub.effective_jobs,
            "grid_stats": sub.grid_stats,
        }
        if sub.owned:
            try:
                manifest = read_status(sub.id, self.manifest_dir)
            except (FileNotFoundError, OSError):
                manifest = None  # still queued: manifest not created yet
            if manifest is not None:
                payload["manifest"] = {
                    "counts": manifest["counts"],
                    "pending": manifest["pending"],
                    "workers": manifest["workers"],
                    "avg_job_seconds": manifest["avg_job_seconds"],
                    "eta_seconds": manifest["eta_seconds"],
                }
        return payload

    def _results(self, sub: Submission):
        if sub.state in (QUEUED, RUNNING):
            payload = self._status(sub)
            payload["detail"] = "run not finished; poll status_url"
            return 202, payload, None, "application/json"
        entries = []
        for spec, digest, source in zip(sub.specs, sub.hashes, sub.sources):
            entry = {"label": spec.describe(), "hash": digest, "source": source}
            if digest in sub.results:
                entry["summary"] = sub.results[digest]
            else:
                entry["failure"] = sub.failures.get(digest)
            entries.append(entry)
        return 200, {
            "run": sub.id,
            "state": sub.state,
            "error": sub.error,
            "results": entries,
            "grid_stats": sub.grid_stats,
        }, None, "application/json"


class ServiceThread:
    """Run a :class:`SimulationService` on a background thread.

    The integration tests and the load benchmark need a live server
    inside one process: this owns a private event loop on a daemon
    thread and exposes just ``start() -> (host, port)`` / ``stop()``.
    """

    def __init__(self, service: SimulationService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self._host = host
        self._port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.address: Optional[Tuple[str, int]] = None

    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-service-loop")
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service did not start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._startup_error}")
        assert self.address is not None
        return self.address

    def _run(self) -> None:
        loop = self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            self.address = loop.run_until_complete(
                self.service.start(self._host, self._port))
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            with contextlib.suppress(Exception):
                loop.run_until_complete(self.service.aclose())
            with contextlib.suppress(Exception):
                loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServiceThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
