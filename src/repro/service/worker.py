"""The pull side of the remote-worker protocol (``repro worker``).

A worker dials the hub advertised by ``repro serve --worker-port``,
introduces itself with a ``("hello", info)`` frame, then serves
``("job", index, attempt, spec)`` frames until the hub closes the
connection or sends ``("stop",)``.  Replies reuse the forked-pipe
pool's exact tuple shapes (see :func:`repro.runner.batch._worker_loop`):
``("ok", index, attempt, summary, elapsed)`` on success, and a
pre-serialized ``("err", index, attempt, type, message, traceback,
transient, elapsed)`` on failure — an unpicklable exception object can
never poison the channel, and the hub applies the same retry policy to
both backends.

``REPRO_WORKER_DELAY`` (seconds, float) sleeps before each job.  It
exists for the chaos suite: a worker that provably *holds* a job for a
known window can be SIGKILL'd mid-job deterministically.
"""

from __future__ import annotations

import os
import socket
import sys
import time
import traceback as _traceback
from typing import Optional, Tuple

from repro.common.errors import ConfigurationError, is_transient
from repro.service.framing import FrameError, read_frame, write_frame

#: Sleep injected before each job execution (chaos/test hook).
WORKER_DELAY_ENV = "REPRO_WORKER_DELAY"

_DIAL_TIMEOUT = 10.0


def parse_address(text: str) -> Tuple[str, int]:
    """``host:port`` → ``(host, port)``; host defaults to loopback."""
    host, _, port = text.rpartition(":")
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise ConfigurationError(
            f"worker address must look like host:port, got {text!r}"
        ) from None


def _serve(sock: socket.socket, delay: float, out) -> str:
    """Pull jobs until the hub goes away; returns ``"stop"`` or ``"eof"``."""
    while True:
        try:
            message = read_frame(sock)
        except EOFError:
            return "eof"
        if not isinstance(message, tuple) or not message:
            continue
        if message[0] == "stop":
            return "stop"
        if message[0] != "job":
            continue
        _, index, attempt, spec = message
        started = time.perf_counter()
        try:
            if delay:
                time.sleep(delay)
            summary = spec.execute(trace_store=None, replay=True)
            payload = ("ok", index, attempt, summary,
                       time.perf_counter() - started)
        except Exception as exc:
            payload = (
                "err", index, attempt, type(exc).__name__, str(exc),
                _traceback.format_exc(), is_transient(exc),
                time.perf_counter() - started,
            )
        write_frame(sock, payload)
        if out is not None:
            status = payload[0]
            out.write(f"[worker {os.getpid()}] job {index} "
                      f"attempt {attempt}: {status}\n")
            out.flush()


def run_worker(
    connect: str,
    reconnect: bool = True,
    retry_delay: float = 1.0,
    max_retries: Optional[int] = None,
    out=None,
) -> int:
    """Worker main loop; blocks until told to stop (exit code 0) or the
    hub stays unreachable past the retry budget (exit code 1).

    An EOF from the hub (server restart, network blip) reconnects with
    linear backoff unless ``reconnect`` is off — mirroring the forked
    pool, where a dead slot is respawned rather than fatal.
    """
    if out is None:
        out = sys.stderr
    host, port = parse_address(connect)
    delay = float(os.environ.get(WORKER_DELAY_ENV) or 0.0)
    dial_failures = 0
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=_DIAL_TIMEOUT)
        except OSError as exc:
            dial_failures += 1
            if not reconnect or (max_retries is not None
                                 and dial_failures > max_retries):
                out.write(f"[worker {os.getpid()}] cannot reach "
                          f"{host}:{port}: {exc}\n")
                return 1
            time.sleep(min(retry_delay * dial_failures, 10.0))
            continue
        dial_failures = 0
        reason = "eof"
        try:
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            from repro import __version__

            write_frame(sock, ("hello", {
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "version": __version__,
            }))
            reason = _serve(sock, delay, out)
        except (FrameError, OSError):
            pass
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if reason == "stop" or not reconnect:
            return 0
        time.sleep(retry_delay)
