"""System assembly: nodes, the whole machine, and the simulator.

:class:`Machine` wires one of the five translation schemes over the
substrates (caches, attraction memories, COMA-F protocol, crossbar,
virtual-memory system), preloads a workload's data set, and
:class:`Simulator` interleaves the per-node reference streams to produce
miss statistics, pressure profiles, and the paper's time breakdowns.
"""

from repro.system.refs import BARRIER, LOCK, READ, UNLOCK, WRITE, Ref
from repro.system.taps import StudyAgent, StudyResults, TimingAgent
from repro.system.machine import Machine
from repro.system.simulator import Simulator
from repro.system.results import RunResult

__all__ = [
    "BARRIER",
    "LOCK",
    "Machine",
    "READ",
    "Ref",
    "RunResult",
    "Simulator",
    "StudyAgent",
    "StudyResults",
    "TimingAgent",
    "UNLOCK",
    "WRITE",
]
