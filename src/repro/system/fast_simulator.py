"""Compiled fast path for the timing simulator.

Drives the ``fastsim`` C engine (see :mod:`repro.core.timing_kernels`)
over materialized columnar reference streams.  The C engine owns the
whole inter-sync machine — event heap, FLC/SLC/AM hierarchies, COMA-F
protocol, directory, crossbar charging, TLB/DLB with the scalar path's
exact Mersenne Twister streams — and returns to Python only at
synchronization events (barriers, locks, stream end), where this module
replays :class:`~repro.system.simulator.Simulator`'s sync semantics
verbatim through thin C accessors.

The contract is **bit-identical results**: after a fast run the machine
object (counters, cache/AM/directory images, TLB contents, RNG states,
histograms, breakdowns) is indistinguishable from one driven by the
scalar engine, which the differential suite
(``tests/integration/test_timing_equivalence.py``) enforces field by
field.  Anything the C engine does not model — tracing, port
contention, topologies, paging extensions, study agents, invariant
checking — makes :func:`fallback_reason` return a string and the caller
stays on the scalar path.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.common.errors import CapacityError, ProtocolError, ReproError
from repro.coma.states import AMState
from repro.core import timing_kernels as tk
from repro.core.ladder import EngineDegraded, injected_fault
from repro.core.schemes import TAP_OF_SCHEME, TapPoint
from repro.core.tlb import Organization
from repro.system.refs import BARRIER, LOCK, UNLOCK
from repro.system.results import RunResult

#: Set non-empty to force the scalar engine (CLI ``--no-fast-timing``).
NO_FAST_ENV = "REPRO_NO_FAST_TIMING"

#: Set non-empty to force the scalar engine for uncoupled sweep/capture
#: runs (CLI ``--no-fast-sweep``).
NO_FAST_SWEEP_ENV = "REPRO_NO_FAST_SWEEP"

_TAP_CODE = {
    TapPoint.L0: tk.TAP_L0,
    TapPoint.L1: tk.TAP_L1,
    TapPoint.L2: tk.TAP_L2,
    TapPoint.L3: tk.TAP_L3,
    TapPoint.HOME: tk.TAP_HOME,
}

_N_ENGINE_GLOBALS = 11  # glob[0:11] → engine.counters, the rest → crossbar


def _pow2_at_least(n: int) -> int:
    size = 16
    while size < n:
        size <<= 1
    return size


def _is_sweep_agent(agent) -> bool:
    """True for the uncoupled sweep instruments (StudyAgent records the
    full miss surface, CaptureAgent records raw tap streams) — the
    agents the capture-mode fast path reproduces."""
    from repro.system.taps import StudyAgent
    from repro.system.taptrace import CaptureAgent

    return type(agent) in (StudyAgent, CaptureAgent)


def fallback_reason(simulator) -> Optional[str]:
    """None when the compiled fast path can reproduce this run exactly;
    otherwise a short human-readable reason for staying scalar."""
    from repro.system.machine import Machine
    from repro.system.taps import TimingAgent

    machine = simulator.machine
    sweep_agent = _is_sweep_agent(machine.agent)
    if sweep_agent:
        if os.environ.get(NO_FAST_SWEEP_ENV):
            return f"disabled ({NO_FAST_SWEEP_ENV})"
    elif os.environ.get(NO_FAST_ENV):
        return f"disabled ({NO_FAST_ENV})"
    if type(machine) is not Machine:
        return f"custom machine type {type(machine).__name__}"
    if (
        machine.tracer is not None
        or machine.engine.trace is not None
        or machine.crossbar.trace is not None
    ):
        return "tracing attached"
    if simulator.check_invariants_every:
        return "invariant checking requested"
    if (
        machine.swap_daemon is not None
        or machine.engine.overflow_handler is not None
        or machine.engine.fault_handler is not None
    ):
        return "paging extensions active"
    if machine.crossbar.contention:
        return "port contention model active"
    if machine.crossbar.topology is not None:
        return "topology model active"
    agent = machine.agent
    from repro.coma.protocol import TranslationAgent

    if type(agent) is TimingAgent:
        if agent.organization not in (
            Organization.FULLY_ASSOCIATIVE,
            Organization.DIRECT_MAPPED,
        ):
            return f"unsupported TLB organization {agent.organization.value}"
    elif not sweep_agent and type(agent) is not TranslationAgent:
        return f"unsupported agent {type(agent).__name__}"
    if tk.get_backend() is None:
        return f"compiled backend unavailable: {tk.backend_status()}"
    return None


def _raise_engine_error(status: int) -> None:
    if status == tk.ERR_PROTOCOL:
        raise ProtocolError("fast timing engine: protocol violation")
    if status == tk.ERR_CAPACITY:
        raise CapacityError("fast timing engine: no slot for injected master")
    if status == tk.ERR_KEY:
        raise ReproError("fast timing engine: unmapped page in translation")
    # ERR_INTERNAL is the sticky in-C failure code for conditions the
    # scalar oracle does not share — allocation failure in capture mode
    # or the event heap — so the supervisor may degrade and re-run.
    raise EngineDegraded(f"C engine internal error (status {status})")


def run_fast(simulator) -> RunResult:
    """Run one simulation on the compiled engine.

    The caller must have checked :func:`fallback_reason` first; this
    function assumes eligibility and raises on engine errors.  Failures
    the scalar oracle recovers from — C-side allocation failure, the
    sticky internal error status, injected faults — raise
    :class:`~repro.core.ladder.EngineDegraded` (or ``MemoryError``),
    and are only raised while the Python machine is still pristine
    (``simulator._fast_state_mutated`` guards the copy-back phase), so
    :meth:`Simulator.run` can re-run the same machine on the scalar
    engine.
    """
    from repro.system.taps import TimingAgent

    simulator._fast_state_mutated = False
    fault = injected_fault()
    if fault == "create":
        raise EngineDegraded("injected fault: engine allocation failed (create)")

    backend = tk.get_backend()
    ffi, lib = backend.ffi, backend.lib
    machine = simulator.machine
    params = machine.params
    layout = machine.layout
    engine = machine.engine
    agent = machine.agent
    nodes = machine.nodes
    count = params.nodes
    think = machine.workload.think_cycles
    timing_agent = type(agent) is TimingAgent
    max_refs = simulator.max_refs_per_node
    swords = (count + 63) // 64

    dir_entries = sum(len(d) for d in engine.directories)
    geom = [0] * tk.GEOM_LEN
    geom[tk.GEOM_NODES] = count
    geom[tk.GEOM_THINK] = think
    geom[tk.GEOM_PAGE_BITS] = layout.page_bits
    geom[tk.GEOM_BLOCK_BITS] = layout.block_bits
    geom[tk.GEOM_FLC_BLOCK] = params.flc_block
    geom[tk.GEOM_FLC_SETS] = params.flc_sets
    geom[tk.GEOM_FLC_ASSOC] = params.flc_assoc
    geom[tk.GEOM_SLC_BLOCK] = params.slc_block
    geom[tk.GEOM_SLC_SETS] = params.slc_sets
    geom[tk.GEOM_SLC_ASSOC] = params.slc_assoc
    geom[tk.GEOM_AM_SETS] = params.am_sets
    geom[tk.GEOM_AM_ASSOC] = params.am_assoc
    geom[tk.GEOM_SLC_HIT] = params.slc_hit_latency
    geom[tk.GEOM_AM_HIT] = params.am_hit_latency
    geom[tk.GEOM_REQ_CYCLES] = params.request_msg_cycles
    geom[tk.GEOM_BLK_CYCLES] = params.block_msg_cycles
    geom[tk.GEOM_DIR_LATENCY] = params.directory_lookup_latency
    geom[tk.GEOM_PENALTY] = params.translation_miss_penalty
    geom[tk.GEOM_VIRTUAL_FLC] = int(machine.scheme.uses_virtual_flc)
    geom[tk.GEOM_VIRTUAL_SLC] = int(machine.scheme.uses_virtual_slc)
    geom[tk.GEOM_VIRTUAL_AM] = int(machine.scheme.uses_virtual_am)
    geom[tk.GEOM_RELAXED] = int(nodes[0].relaxed_writes) if nodes else 0
    geom[tk.GEOM_TAP] = (
        _TAP_CODE[TAP_OF_SCHEME[machine.scheme]] if timing_agent else tk.TAP_NONE
    )
    geom[tk.GEOM_INCLUDE_L2_WB] = (
        int(agent.include_l2_writebacks) if timing_agent else 1
    )
    if timing_agent:
        buffer0 = agent.buffer(0)
        geom[tk.GEOM_TLB_ENTRIES] = buffer0.entries
        geom[tk.GEOM_TLB_SETS] = buffer0.sets
        geom[tk.GEOM_TLB_ASSOC] = buffer0.assoc
    geom[tk.GEOM_MAX_REFS] = -1 if max_refs is None else max_refs
    geom[tk.GEOM_AM_BLOCK] = params.am_block
    geom[tk.GEOM_REQ_PAYLOAD] = params.request_payload_bytes
    geom[tk.GEOM_BLK_PAYLOAD] = params.am_block + params.message_header_bytes
    geom[tk.GEOM_DIR_CAPACITY] = _pow2_at_least(2 * dir_entries + 16)
    geom[tk.GEOM_MAP_CAPACITY] = _pow2_at_least(2 * len(machine.page_map) + 16)

    handle = lib.fs_create(ffi.new("int64_t[]", geom))
    if handle == ffi.NULL:
        raise EngineDegraded("C engine allocation failed (fs_create OOM)")
    try:
        if fault == "oom":
            raise EngineDegraded("injected fault: C allocation failed (oom)")
        if fault == "internal":
            _raise_engine_error(tk.ERR_INTERNAL)
        if _is_sweep_agent(agent) and lib.fs_set_capture(handle, 1) != 0:
            raise EngineDegraded("capture-mode allocation failed")
        return _drive(simulator, ffi, lib, handle, swords, think, timing_agent)
    finally:
        lib.fs_destroy(handle)


def _drive(simulator, ffi, lib, handle, swords, think, timing_agent) -> RunResult:
    machine = simulator.machine
    engine = machine.engine
    agent = machine.agent
    nodes = machine.nodes
    count = machine.params.nodes

    # -- load the snapshot ----------------------------------------------
    # Streams: materialized columns (shared across grid cells through
    # the stream LRU when the caller supplied a workload identity);
    # `keep` pins the arrays and their cffi views for the lifetime of
    # the run (C holds raw pointers).
    stream_key = getattr(simulator, "stream_key", None)
    keep = []
    for n in range(count):
        ops, vals = tk.materialize_shared(
            stream_key, n, lambda node=n: machine.node_stream(node)
        )
        length = len(ops)
        if length:
            ops_view = ffi.from_buffer("uint8_t[]", ops)
            vals_view = ffi.from_buffer("int64_t[]", vals)
        else:
            ops_view = vals_view = ffi.NULL
        keep.append((ops, vals, ops_view, vals_view))
        lib.fs_set_stream(handle, n, ops_view, vals_view, length)

    for vpn, pfn in machine.page_map.items():
        if lib.fs_pagemap_add(handle, vpn, pfn) != 0:
            raise EngineDegraded("page map load failed (map allocation)")

    for n, am in enumerate(engine.ams):
        for am_set in am._sets:
            for block, state in am_set.items():
                if lib.fs_am_load(handle, n, block, int(state)) != 0:
                    raise EngineDegraded("AM image load failed")

    sharer_words = ffi.new("uint64_t[]", swords)
    for directory in engine.directories:
        for block, entry in directory._entries.items():
            mask = 0
            for sharer in entry.sharers:
                mask |= 1 << sharer
            for w in range(swords):
                sharer_words[w] = (mask >> (64 * w)) & 0xFFFFFFFFFFFFFFFF
            owner = -1 if entry.owner is None else entry.owner
            if lib.fs_dir_load(handle, block, owner, sharer_words) != 0:
                raise EngineDegraded("directory load failed")

    lib.fs_seed_engine(
        handle, ffi.from_buffer("uint32_t[]", tk.rng_state_words(engine._rng))
    )
    if timing_agent:
        for n in range(count):
            lib.fs_seed_tlb(
                handle,
                n,
                ffi.from_buffer("uint32_t[]", tk.rng_state_words(agent.buffer(n)._rng)),
            )

    # -- sync-event loop (mirrors Simulator.run exactly) ----------------
    sync: List[int] = [0] * count
    active = count
    barriers_seen = 0
    barrier_arrivals = {}
    lock_holder = {}
    lock_queue = {}
    out = ffi.new("int64_t[4]")

    def reference(node: int, word: int, now: int) -> int:
        stall = int(lib.fs_reference(handle, node, 1, word, now))
        if stall < 0:
            _raise_engine_error(stall)
        return stall

    def maybe_release_barrier(barrier_id: int) -> None:
        arrivals = barrier_arrivals.get(barrier_id)
        if arrivals is None or len(arrivals) < active:
            return
        release = max(arrivals.values()) if arrivals else 0
        for node_id, arrived in arrivals.items():
            sync[node_id] += release - arrived
            lib.fs_set_clock(handle, node_id, release)
            lib.fs_push(handle, release, node_id)
        del barrier_arrivals[barrier_id]

    def finish(node: int, now: int) -> None:
        nonlocal active
        lib.fs_mark_finished(handle, node)
        lib.fs_set_clock(handle, node, now)
        active -= 1
        for word, holder in list(lock_holder.items()):
            if holder != node:
                continue
            queue = lock_queue.get(word)
            if queue:
                waiter, arrival = queue.pop(0)
                lock_holder[word] = waiter
                sync[waiter] += max(0, now - arrival)
                lib.fs_push(handle, max(now, arrival), waiter)
            else:
                lock_holder[word] = None
        for barrier_id in list(barrier_arrivals):
            maybe_release_barrier(barrier_id)

    while True:
        status = int(lib.fs_run(handle, out))
        if status == tk.DONE:
            break
        if status < 0:
            _raise_engine_error(status)
        n, now = int(out[0]), int(out[1])
        if status == tk.NEED_FINISH:
            finish(n, now)
            continue
        op, value = int(out[2]), int(out[3])
        lib.fs_consume_op(handle, n)
        if op == BARRIER:
            barriers_seen += 1
            arrivals = barrier_arrivals.setdefault(value, {})
            if n in arrivals:
                raise ReproError(
                    f"node {n} reached barrier {value} twice before release"
                )
            arrivals[n] = now
            lib.fs_set_clock(handle, n, now)
            maybe_release_barrier(value)
        elif op == LOCK:
            holder = lock_holder.get(value)
            if holder is None:
                lock_holder[value] = n
                stall = reference(n, value, now)
                lib.fs_set_clock(handle, n, now + stall)
                lib.fs_push(handle, now + stall, n)
            else:
                lock_queue.setdefault(value, []).append((n, now))
        elif op == UNLOCK:
            if lock_holder.get(value) != n:
                raise ReproError(
                    f"node {n} unlocks {value:#x} held by {lock_holder.get(value)}"
                )
            stall = reference(n, value, now)
            release_time = now + stall
            lib.fs_set_clock(handle, n, release_time)
            lib.fs_push(handle, release_time, n)
            queue = lock_queue.get(value)
            if queue:
                waiter, arrival = queue.pop(0)
                lock_holder[value] = waiter
                sync[waiter] += release_time - arrival
                acquire_stall = reference(waiter, value, release_time)
                lib.fs_set_clock(handle, waiter, release_time + acquire_stall)
                lib.fs_push(handle, release_time + acquire_stall, waiter)
            else:
                lock_holder[value] = None
        else:
            raise ReproError(f"unknown opcode {op}")

    if barrier_arrivals:
        raise ReproError(
            f"deadlock: barriers {sorted(barrier_arrivals)} never released"
        )
    held = [w for w, h in lock_holder.items() if h is not None]
    if held:
        raise ReproError(f"locks still held at end of run: {held}")

    clock = [int(lib.fs_get_clock(handle, n)) for n in range(count)]
    end_time = max(clock) if clock else 0
    for n in range(count):
        sync[n] += end_time - clock[n]

    # -- copy every piece of machine state back -------------------------
    # Past this point the Python machine is mutated incrementally, so a
    # failure can no longer degrade to a scalar re-run of the same
    # machine object (Simulator.run checks this flag).
    simulator._fast_state_mutated = True
    refs_per_node = [int(lib.fs_refs_done(handle, n)) for n in range(count)]
    breakdowns = []
    bd3 = ffi.new("int64_t[3]")
    hist_buckets = ffi.new("int64_t[]", tk.N_HIST_BUCKETS)
    hist_ct = ffi.new("int64_t[2]")
    stats2 = ffi.new("int64_t[2]")
    node_vals = ffi.new("int64_t[]", len(tk.NODE_COUNTERS))
    node_calls = ffi.new("int64_t[]", len(tk.NODE_COUNTERS))

    for n, node in enumerate(nodes):
        lib.fs_export_breakdown(handle, n, bd3)
        breakdown = node.breakdown
        breakdown.busy = think * refs_per_node[n]
        breakdown.sync = sync[n]
        breakdown.loc_stall = int(bd3[0])
        breakdown.rem_stall = int(bd3[1])
        breakdown.tlb_stall = int(bd3[2])
        breakdowns.append(breakdown)

        lib.fs_export_node_counters(handle, n, node_vals, node_calls)
        values = node.counters._values
        for i, name in enumerate(tk.NODE_COUNTERS):
            if node_calls[i]:
                values[name] = values.get(name, 0) + int(node_vals[i])

        for is_write, hist in ((0, node.read_latency), (1, node.write_latency)):
            lib.fs_export_hist(handle, n, is_write, hist_buckets, hist_ct)
            hist._buckets = {
                i: int(hist_buckets[i])
                for i in range(tk.N_HIST_BUCKETS)
                if hist_buckets[i]
            }
            hist.count = int(hist_ct[0])
            hist.total = int(hist_ct[1])

        _load_cache(ffi, lib, handle, n, 0, node.flc, stats2, lambda s: s)
        _load_cache(ffi, lib, handle, n, 1, node.slc, stats2, lambda s: s)
        _load_cache(ffi, lib, handle, n, 2, engine.ams[n], stats2, AMState)

    glob_vals = ffi.new("int64_t[]", len(tk.GLOBAL_COUNTERS))
    glob_calls = ffi.new("int64_t[]", len(tk.GLOBAL_COUNTERS))
    lib.fs_export_global(handle, glob_vals, glob_calls)
    engine_values = engine.counters._values
    crossbar_values = machine.crossbar.counters._values
    for i, name in enumerate(tk.GLOBAL_COUNTERS):
        if glob_calls[i]:
            target = engine_values if i < _N_ENGINE_GLOBALS else crossbar_values
            target[name] = target.get(name, 0) + int(glob_vals[i])

    _load_directory(ffi, lib, handle, machine, swords)

    if timing_agent:
        _load_tlbs(ffi, lib, handle, agent, count)
    elif _is_sweep_agent(agent):
        _load_sweep_agent(ffi, lib, handle, agent, count)

    rng_out = ffi.new("uint32_t[]", tk.RNG_STATE_WORDS)
    lib.fs_export_engine_rng(handle, rng_out)
    tk.load_rng_state(engine._rng, [int(rng_out[i]) for i in range(tk.RNG_STATE_WORDS)])
    engine._translation_accum = int(lib.fs_translation_accum(handle))
    active_block = int(lib.fs_active_block(handle))
    engine.active_demand_block = None if active_block < 0 else active_block

    return RunResult(
        machine=machine,
        breakdowns=breakdowns,
        total_time=end_time,
        refs_per_node=refs_per_node,
        barriers=barriers_seen,
    )


def _load_cache(ffi, lib, handle, node: int, which: int, cache, stats2, cast) -> None:
    """Rebuild a Python cache/AM image from the C engine's LRU arrays.

    The export is set-major and LRU-ordered within each set, so
    appending into fresh per-set dicts reproduces the scalar path's
    dict insertion order (= LRU order) exactly.
    """
    capacity = cache.sets * cache.assoc
    blocks = ffi.new("int64_t[]", capacity)
    states = ffi.new("uint8_t[]", capacity)
    resident = int(lib.fs_export_cache(handle, node, which, blocks, states))
    shift = cache._block_shift
    mask = cache._set_mask
    fresh = [dict() for _ in range(cache.sets)]
    for i in range(resident):
        block = int(blocks[i])
        fresh[(block >> shift) & mask][block] = cast(int(states[i]))
    cache._sets = fresh
    lib.fs_cache_stats(handle, node, which, stats2)
    cache.hits = int(stats2[0])
    cache.misses = int(stats2[1])


def _load_directory(ffi, lib, handle, machine, swords: int) -> None:
    engine = machine.engine
    layout = machine.layout
    count = machine.params.nodes
    dcount = int(lib.fs_dir_count(handle))
    blocks = ffi.new("int64_t[]", max(dcount, 1))
    owners = ffi.new("int32_t[]", max(dcount, 1))
    sharers = ffi.new("uint64_t[]", max(dcount, 1) * swords)
    lib.fs_export_dir(handle, blocks, owners, sharers)
    page_bits = layout.page_bits
    node_mask = count - 1
    for i in range(dcount):
        block = int(blocks[i])
        home = (block >> page_bits) & node_mask
        entry = engine.directories[home]._entries[block]
        owner = int(owners[i])
        entry.owner = None if owner < 0 else owner
        holders = set()
        for w in range(swords):
            word = int(sharers[i * swords + w])
            base = 64 * w
            while word:
                low = word & -word
                holders.add(base + low.bit_length() - 1)
                word ^= low
        entry.sharers = holders
    lookups = ffi.new("int64_t[]", count)
    lib.fs_export_dir_lookups(handle, lookups)
    for home in range(count):
        engine.directories[home].lookups += int(lookups[home])


def _load_sweep_agent(ffi, lib, handle, agent, count: int) -> None:
    """Rebuild a sweep agent's state from the captured tap streams.

    For a :class:`~repro.system.taps.StudyAgent`, every bank member is
    replayed over its ``(tap, node)`` stream with one ``fs_bank_run``
    call — banks never interact, and each member draws victims from its
    own RNG substream, so per-stream replay reproduces the coupled
    scalar run's miss counts, buffer contents, and RNG states exactly.
    The lazy-counter convention is preserved: the *bank* access counter
    is set (the scalar fan-out bumps only it) while member buffers keep
    ``accesses == 0`` until a reader syncs them.

    For a :class:`~repro.system.taptrace.CaptureAgent`, the raw streams
    are copied out into its per-tap column arrays.
    """
    from repro.system.taps import StudyAgent

    if type(agent) is StudyAgent:
        _load_study_agent(ffi, lib, handle, agent, count)
    else:
        _load_capture_agent(ffi, lib, handle, agent, count)


def _load_study_agent(ffi, lib, handle, agent, count: int) -> None:
    total_references = 0
    for tap_index, tap in enumerate(tk.SWEEP_TAPS):
        for n in range(count):
            length = int(lib.fs_cap_count(handle, tap_index, n))
            if tap is TapPoint.L0:
                total_references += length
            bank = agent._banks[(tap, n)]
            bank.accesses += length
            if not length:
                continue
            pages = lib.fs_cap_data(handle, tap_index, n)
            for buffer in bank._buffer_list:
                _run_bank(ffi, lib, buffer, pages, length)
    agent.total_references += total_references


def _run_bank(ffi, lib, buffer, pages, length: int) -> None:
    """One fs_bank_run call: replay a recorded stream through one
    TranslationBuffer, importing misses, contents, and RNG state."""
    rng_words = tk.rng_state_words(buffer._rng)
    assoc = buffer.assoc
    sets = buffer.sets
    tags = ffi.new("int64_t[]", sets * assoc)
    lens = ffi.new("int32_t[]", sets)
    misses = int(
        lib.fs_bank_run(
            buffer.entries,
            sets,
            assoc,
            ffi.from_buffer("uint32_t[]", rng_words),
            pages,
            length,
            tags,
            lens,
        )
    )
    if misses < 0:
        raise MemoryError("fast sweep engine: bank allocation failed")
    buffer.misses += misses
    new_tags = []
    where = {}
    for set_idx in range(sets):
        ways = [int(tags[set_idx * assoc + w]) for w in range(int(lens[set_idx]))]
        new_tags.append(ways)
        for way, page in enumerate(ways):
            where[page] = (set_idx, way)
    buffer._tags = new_tags
    buffer._where = where
    tk.load_rng_state(buffer._rng, rng_words)


def _load_capture_agent(ffi, lib, handle, agent, count: int) -> None:
    per_tap = {
        TapPoint.L0: agent._l0,
        TapPoint.L1: agent._l1,
        TapPoint.L2: agent._l2,
        TapPoint.L2_NO_WBACK: agent._l2_no_wback,
        TapPoint.L3: agent._l3,
        TapPoint.HOME: agent._home,
    }
    total_references = 0
    for tap_index, tap in enumerate(tk.SWEEP_TAPS):
        columns = per_tap[tap]
        for n in range(count):
            length = int(lib.fs_cap_count(handle, tap_index, n))
            if tap is TapPoint.L0:
                total_references += length
            if not length:
                continue
            pages = lib.fs_cap_data(handle, tap_index, n)
            # Captured pages are non-negative int64s; a native-order
            # bulk copy into the agent's u8 columns is exact.
            columns[n].frombytes(ffi.buffer(pages, 8 * length))
    agent.total_references += total_references


def _load_tlbs(ffi, lib, handle, agent, count: int) -> None:
    rng_out = ffi.new("uint32_t[]", tk.RNG_STATE_WORDS)
    for n in range(count):
        buffer = agent.buffer(n)
        capacity = buffer.sets * buffer.assoc
        tags = ffi.new("int64_t[]", capacity)
        lens = ffi.new("int32_t[]", buffer.sets)
        stats = ffi.new("int64_t[2]")
        lib.fs_export_tlb(handle, n, tags, lens, stats)
        new_tags = []
        where = {}
        for set_idx in range(buffer.sets):
            ways = [
                int(tags[set_idx * buffer.assoc + w]) for w in range(int(lens[set_idx]))
            ]
            new_tags.append(ways)
            for way, page in enumerate(ways):
                where[page] = (set_idx, way)
        buffer._tags = new_tags
        buffer._where = where
        buffer.accesses = int(stats[0])
        buffer.misses = int(stats[1])
        lib.fs_export_tlb_rng(handle, n, rng_out)
        tk.load_rng_state(
            buffer._rng, [int(rng_out[i]) for i in range(tk.RNG_STATE_WORDS)]
        )
