"""Machine assembly: substrates wired for one translation scheme.

``Machine(params, scheme, workload)`` builds the full system:

* the segmented virtual address space with the workload's segments,
* per-home page tables; for virtual-AM schemes (L3-TLB, V-COMA) a
  directory-page allocator per home, for physical-AM schemes (L0/L1/L2)
  the round-robin frame allocator and the virtual↔physical page maps,
* attraction memories + directories + COMA-F protocol engine,
* one :class:`~repro.system.node.Node` per processor, wired with the
  right cache virtuality and translation taps,
* global-set pressure accounting (paper Figure 11),

then **preloads** every page (the paper simulates no paging): page-table
entries, directory pages/frames, and one master copy per memory block
spread from its home node.

Note on L3-TLB: with page coloring and at least as many page colors as
nodes (the paper's regime), the physical home of a page coincides with
its virtual home, and virtual indexing makes the AM placement identical
to V-COMA's; the schemes then differ only in *where* translation happens
— which is exactly how we model them (shared protocol state, different
taps).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.address import AddressLayout
from repro.common.params import MachineParams
from repro.common.rng import make_rng
from repro.common.stats import Counters
from repro.coma.protocol import ProtocolEngine, TranslationAgent
from repro.core.directory_space import DirectoryAddressSpace, DirectoryPageHandle
from repro.core.schemes import Scheme
from repro.interconnect.crossbar import Crossbar
from repro.interconnect.topology import make_topology
from repro.system.node import Node
from repro.vm.frames import FrameAllocator
from repro.vm.page_table import HomePageTable, PageTableEntry
from repro.vm.pressure import PressureTracker
from repro.vm.segments import SegmentedAddressSpace
from repro.vm.swap import SwapDaemon
from repro.workloads.base import Workload, WorkloadContext


class Machine:
    """A COMA multiprocessor configured for one scheme and workload."""

    def __init__(
        self,
        params: MachineParams,
        scheme: Scheme,
        workload: Workload,
        agent: Optional[TranslationAgent] = None,
        contention: bool = False,
        swap_threshold: Optional[float] = None,
        topology: Optional[str] = None,
        relaxed_writes: bool = False,
        tracer=None,
    ) -> None:
        self.params = params
        self.scheme = scheme
        self.workload = workload
        self.layout = AddressLayout.from_params(params)
        self.agent = agent if agent is not None else TranslationAgent()
        topo = make_topology(topology, params.nodes) if topology else None
        self.crossbar = Crossbar(params, contention=contention, topology=topo)
        self.counters = Counters()
        #: Optional :class:`~repro.obs.trace.Tracer`, threaded through
        #: every instrumented layer (simulator, nodes, protocol engine,
        #: crossbar, translation agent).  None → tracing disabled.
        self.tracer = tracer
        if tracer is not None:
            from repro import __version__

            tracer.set_meta(
                scheme=scheme.value,
                nodes=params.nodes,
                workload=workload.name,
                version=__version__,
            )
            self.crossbar.trace = tracer
            self.agent.attach_trace(tracer)

        self._virtual_am = scheme.uses_virtual_am
        self.page_map: Dict[int, int] = {}
        self.reverse_map: Dict[int, int] = {}
        self.frames: Optional[FrameAllocator] = None
        if not self._virtual_am:
            self.frames = FrameAllocator(
                self.layout, params.pages_per_am, coloring=False
            )
        self.page_tables: List[HomePageTable] = [
            HomePageTable(n, self.layout.global_page_sets) for n in range(params.nodes)
        ]
        self.directory_spaces: List[DirectoryAddressSpace] = [
            DirectoryAddressSpace(params.blocks_per_page) for _ in range(params.nodes)
        ]
        self.pressure = PressureTracker(
            self.layout.global_page_sets, params.page_slots_per_global_set
        )

        self.engine = ProtocolEngine(
            params,
            self.layout,
            self.crossbar,
            agent=self.agent,
            inclusion_hook=self._inclusion_hook,
            rng=make_rng(params.seed, "inject"),
        )
        if tracer is not None:
            self.engine.trace = tracer

        # -- segments and workload context ------------------------------
        self.space = SegmentedAddressSpace(params.page_size)
        segments = {}
        for spec in workload.segment_specs(params):
            segments[spec.name] = self.space.allocate(
                spec.name,
                spec.size,
                kind=spec.kind,
                owner=spec.owner,
                alignment=spec.alignment,
                offset=spec.offset,
            )
        self.ctx = WorkloadContext(
            params, self.layout, segments, params.seed, workload.name
        )

        # -- nodes -------------------------------------------------------
        self.nodes: List[Node] = [
            Node(
                n,
                params,
                scheme,
                self.engine,
                self.agent,
                to_physical=self._to_physical,
                to_virtual=self._to_virtual,
                relaxed_writes=relaxed_writes,
                trace=tracer,
            )
            for n in range(params.nodes)
        ]

        self.swap_daemon: Optional[SwapDaemon] = None
        if swap_threshold is not None:
            self.swap_daemon = SwapDaemon(
                self.pressure,
                self.page_tables,
                self._evict_page,
                threshold=swap_threshold,
            )
            self.engine.overflow_handler = self._handle_overflow
            self.engine.fault_handler = self._handle_fault

        self._preload()
        if self.swap_daemon is not None:
            for segment in self.space:
                for vpn in segment.pages(params.page_size):
                    self.swap_daemon.note_page_in(vpn)

    # ------------------------------------------------------------------
    # paging (swap-daemon extension, paper Section 4.3)
    # ------------------------------------------------------------------
    def _evict_page(self, vpn: int) -> None:
        """Swap one page out: purge every block copy, reclaim its
        directory page (or frame), unmap it."""
        layout = self.layout
        home = layout.home_node_of_vpn(vpn)
        pte = self.page_tables[home].remove(vpn)
        if self._virtual_am:
            proto_base = vpn << layout.page_bits
            self.directory_spaces[home].reclaim(
                DirectoryPageHandle(pte.payload, self.params.blocks_per_page)
            )
        else:
            pfn = pte.payload
            proto_base = pfn << layout.page_bits
            self.frames.free(pfn)
            del self.page_map[vpn]
            del self.reverse_map[pfn]
        block = self.params.am_block
        for i in range(self.params.blocks_per_page):
            self.engine.purge_block(proto_base + i * block)
        self.counters.add("pages_swapped_out")

    def _handle_overflow(self, proto_block: int) -> bool:
        """Engine hook: an injected master found no slot — force one
        page of that global set out (never a page involved in the
        transaction in flight)."""
        from repro.common.errors import CapacityError

        layout = self.layout
        gps = (proto_block >> layout.page_bits) & (layout.global_page_sets - 1)
        exclude = {self._vpn_of_proto(proto_block)}
        if self.engine.active_demand_block is not None:
            exclude.add(self._vpn_of_proto(self.engine.active_demand_block))
        try:
            victim = self.swap_daemon.make_room(gps, force=True, exclude=exclude)
        except CapacityError:
            return False
        return victim is not None

    def _handle_fault(self, proto_block: int) -> bool:
        """Engine hook: page a swapped-out page back in (paper §4.3's
        page-fault flow: request a directory page and a page-table entry
        from the home, swapping a resident page out first if the global
        set's pressure is over the daemon's threshold)."""
        layout = self.layout
        if not self._virtual_am:
            # Physical protocol addresses of a swapped page are dead
            # (the frame was freed); physical-machine faults would come
            # through the translation layer instead.  Not reachable in
            # the preloaded workloads.
            return False
        vpn = proto_block >> layout.page_bits
        if self.page_tables[layout.home_node_of_vpn(vpn)].contains(vpn):
            # Another block of the page faulted first and paged it in,
            # but this block's master is genuinely gone: corruption.
            return False
        self._page_in(vpn)
        return True

    def _page_in(self, vpn: int) -> None:
        layout = self.layout
        home = layout.home_node_of_vpn(vpn)
        gps = layout.global_page_set_of_vpn(vpn)
        if self.swap_daemon is not None:
            # Over-threshold (or full) sets lose a resident page first.
            if self.pressure.occupancy(gps) >= self.pressure.slots_per_set:
                self.swap_daemon.make_room(gps, force=True, exclude={vpn})
            else:
                self.swap_daemon.make_room(gps, exclude={vpn})
        handle = self.directory_spaces[home].allocate()
        self.page_tables[home].insert(PageTableEntry(vpn, handle.base))
        self.pressure.allocate_page(gps)
        block = self.params.am_block
        proto_base = vpn << layout.page_bits
        for i in range(self.params.blocks_per_page):
            self.engine.preload_block(proto_base + i * block)
        if self.swap_daemon is not None:
            self.swap_daemon.note_page_in(vpn)
        self.counters.add("pages_faulted_in")

    def _vpn_of_proto(self, proto_addr: int) -> int:
        page_number = proto_addr >> self.layout.page_bits
        if self._virtual_am:
            return page_number
        return self.reverse_map[page_number]

    # ------------------------------------------------------------------
    # address-space conversion
    # ------------------------------------------------------------------
    def _to_physical(self, vaddr: int) -> int:
        page_bits = self.layout.page_bits
        pfn = self.page_map[vaddr >> page_bits]
        return (pfn << page_bits) | (vaddr & (self.params.page_size - 1))

    def _to_virtual(self, paddr: int) -> int:
        page_bits = self.layout.page_bits
        vpn = self.reverse_map[paddr >> page_bits]
        return (vpn << page_bits) | (paddr & (self.params.page_size - 1))

    # ------------------------------------------------------------------
    # preload (paper Section 5.1: data sets preloaded, no paging)
    # ------------------------------------------------------------------
    def _preload(self) -> None:
        layout = self.layout
        block = self.params.am_block
        blocks_per_page = self.params.blocks_per_page
        for segment in self.space:
            for vpn in segment.pages(self.params.page_size):
                home = layout.home_node_of_vpn(vpn)
                if self._virtual_am:
                    handle = self.directory_spaces[home].allocate()
                    self.page_tables[home].insert(PageTableEntry(vpn, handle.base))
                    self.pressure.allocate_page(layout.global_page_set_of_vpn(vpn))
                    proto_base = vpn << layout.page_bits
                else:
                    pfn = self.frames.allocate(vpn)
                    self.page_map[vpn] = pfn
                    self.reverse_map[pfn] = vpn
                    self.page_tables[home].insert(PageTableEntry(vpn, pfn))
                    self.pressure.allocate_page(self.frames.color_of(pfn))
                    proto_base = pfn << layout.page_bits
                for i in range(blocks_per_page):
                    self.engine.preload_block(proto_base + i * block)
                self.counters.add("pages_preloaded")

    # ------------------------------------------------------------------
    def _inclusion_hook(self, node: int, proto_block: int, action: str) -> None:
        self.nodes[node].on_inclusion(proto_block, action)

    # ------------------------------------------------------------------
    def node_stream(self, node: int):
        """The workload's reference stream for one node."""
        return self.workload.node_stream(node, self.ctx)

    def lock_home(self, lock_addr: int) -> int:
        return self.layout.home_node(lock_addr)

    def merged_counters(self) -> Counters:
        merged = self.counters.merge(self.engine.counters).merge(self.crossbar.counters)
        for node in self.nodes:
            merged = merged.merge(node.counters)
        # Surface the timing agent's translation statistics as counters
        # (derived here, not maintained on the hot path).  For V-COMA the
        # structure is the home-directory DLB, otherwise a per-node TLB;
        # with tracing on, ``dlb_hit + dlb_fill`` events reconcile
        # exactly with ``dlb_accesses`` (and fills with misses).
        agent = self.agent
        accesses = getattr(agent, "total_accesses", None)
        if accesses is not None:
            prefix = "dlb" if self.scheme is Scheme.V_COMA else "tlb"
            merged[f"{prefix}_accesses"] = accesses
            merged[f"{prefix}_misses"] = agent.total_misses
        return merged

    def __repr__(self) -> str:
        return (
            f"Machine({self.scheme.value}, {self.workload.name}, "
            f"{self.params.nodes} nodes)"
        )
