"""One processing node: FLC + SLC over the attraction memory.

The node implements the scheme-dependent plumbing of paper Figure 2:
which caches are virtually indexed, where addresses get translated
(through the :class:`~repro.coma.protocol.TranslationAgent`), and the
inclusion bookkeeping between FLC, SLC and the attraction memory
(backpointers in real hardware; direct span invalidation here).

Reference cost model (Section 5.1): FLC hits are free, SLC hits cost 6
cycles, attraction-memory hits 74, remote misses pay the full protocol
path.  The FLC is write-through/no-write-allocate, so *every* store
proceeds to the SLC — that is why the L1 translation tap sees all stores
and why L1-TLB barely improves on L0-TLB for write-heavy programs.
Stores stall for their full latency (sequential consistency).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cache.cache import CLEAN_EXCLUSIVE, CLEAN_SHARED, DIRTY, Cache
from repro.common.params import MachineParams
from repro.common.stats import Counters, LatencyHistogram, TimeBreakdown
from repro.coma.protocol import ProtocolEngine, TranslationAgent
from repro.core.schemes import Scheme, TapPoint

#: Address-space converters; identity when the spaces coincide.
AddrMap = Callable[[int], int]


class Node:
    """A processor node wired for one translation scheme."""

    __slots__ = (
        "id",
        "params",
        "scheme",
        "engine",
        "agent",
        "flc",
        "slc",
        "counters",
        "breakdown",
        "read_latency",
        "write_latency",
        "relaxed_writes",
        "_virtual_flc",
        "_virtual_slc",
        "_virtual_am",
        "_needs_physical",
        "_to_physical",
        "_to_virtual",
        "_page_bits",
        "_slc_hit",
        "_at_l0",
        "_at_l1",
        "_at_l2",
        "_counter_values",
        "_trace",
        "_ref_begin",
        "_ref_end",
        # Per-instance entry point: bound once in __init__ to the traced
        # or untraced implementation, so the sweep inner loop pays no
        # per-reference is-None check.
        "reference",
    )

    def __init__(
        self,
        node_id: int,
        params: MachineParams,
        scheme: Scheme,
        engine: ProtocolEngine,
        agent: TranslationAgent,
        to_physical: Optional[AddrMap] = None,
        to_virtual: Optional[AddrMap] = None,
        relaxed_writes: bool = False,
        trace=None,
    ) -> None:
        self.id = node_id
        self.params = params
        self.scheme = scheme
        self.engine = engine
        self.agent = agent
        self.flc = Cache(params.flc_size, params.flc_block, params.flc_assoc, name=f"flc{node_id}")
        self.slc = Cache(params.slc_size, params.slc_block, params.slc_assoc, name=f"slc{node_id}")
        self.counters = Counters()
        self.breakdown = TimeBreakdown()
        #: Observed reference latencies (stall cycles per load/store).
        self.read_latency = LatencyHistogram()
        self.write_latency = LatencyHistogram()
        #: Sequential consistency (paper baseline) stalls the processor
        #: on every store; with relaxed_writes store latency is hidden
        #: behind a write buffer (counted, not charged).
        self.relaxed_writes = relaxed_writes

        self._virtual_flc = scheme.uses_virtual_flc
        self._virtual_slc = scheme.uses_virtual_slc
        self._virtual_am = scheme.uses_virtual_am
        self._needs_physical = not (self._virtual_flc and self._virtual_slc and self._virtual_am)
        identity: AddrMap = lambda addr: addr
        self._to_physical = to_physical if to_physical is not None else identity
        self._to_virtual = to_virtual if to_virtual is not None else identity
        if self._needs_physical and to_physical is None:
            raise ValueError(f"scheme {scheme} needs a virtual-to-physical map")
        self._page_bits = params.page_size.bit_length() - 1
        self._slc_hit = params.slc_hit_latency
        # Pre-resolve the node-side translation taps.  None marks a tap
        # the agent declared a no-op (e.g. a V-COMA TimingAgent only
        # acts at the home directory), letting _process skip the call —
        # these fire up to three times per simulated reference.
        self._at_l0 = agent.at_l0 if agent.uses_tap(TapPoint.L0) else None
        self._at_l1 = agent.at_l1 if agent.uses_tap(TapPoint.L1) else None
        self._at_l2 = agent.at_l2 if agent.uses_tap(TapPoint.L2) else None
        self._counter_values = self.counters._values
        #: Optional :class:`~repro.obs.trace.Tracer`; one "ref" span per
        #: reference when attached, one is-None check when not.  The
        #: span emitters are hoisted here, once, so the traced hot path
        #: packs a fixed-layout record instead of building dicts.
        self._trace = trace
        if trace is not None:
            self._ref_begin, self._ref_end = trace.span_emitter(
                "ref",
                ("node", "op", "vpn"),
                ("cycles", "tlb"),
                enums={"op": ("read", "write")},
            )
        else:
            self._ref_begin = self._ref_end = None
        #: Main entry point, one load or store per call.  Bound to the
        #: traced or untraced body here, once, instead of branching on
        #: the tracer inside the per-reference hot path.
        self.reference = (
            self._traced_reference if trace is not None else self._untraced_reference
        )

    # ------------------------------------------------------------------
    # main entry: one load or store
    # ------------------------------------------------------------------
    def _untraced_reference(self, op_is_write: bool, vaddr: int, now: int) -> int:
        """Process one memory reference; updates the node's time
        breakdown and returns the cycles consumed (stall + translation).

        Under ``relaxed_writes`` stores complete in the coherence system
        as usual, but the processor does not wait: their cycles are
        recorded in the ``hidden_store_cycles`` counter and zero is
        returned.  Reached as ``node.reference`` on untraced nodes."""
        if op_is_write and self.relaxed_writes:
            breakdown = self.breakdown
            before = (breakdown.loc_stall, breakdown.rem_stall, breakdown.tlb_stall)
            cycles = self._process(op_is_write, vaddr, now)
            breakdown.loc_stall, breakdown.rem_stall, breakdown.tlb_stall = before
            self.counters.add("hidden_store_cycles", cycles)
            self.write_latency.record(0)
            return 0
        cycles = self._process(op_is_write, vaddr, now)
        if op_is_write:
            self.write_latency.record(cycles)
        else:
            self.read_latency.record(cycles)
        return cycles

    def _traced_reference(self, op_is_write: bool, vaddr: int, now: int) -> int:
        """One reference wrapped in a "ref" span; mirrors
        :meth:`_untraced_reference`'s body between the span emitters
        (protocol spans still nest — the engine holds its own reference
        to the same tracer).  Reached as ``node.reference`` on traced
        nodes."""
        breakdown = self.breakdown
        tlb_before = breakdown.tlb_stall
        self._ref_begin(now, self.id, op_is_write, vaddr >> self._page_bits)
        if op_is_write and self.relaxed_writes:
            before = (breakdown.loc_stall, breakdown.rem_stall, breakdown.tlb_stall)
            raw = self._process(op_is_write, vaddr, now)
            breakdown.loc_stall, breakdown.rem_stall, breakdown.tlb_stall = before
            self.counters.add("hidden_store_cycles", raw)
            self.write_latency.record(0)
            cycles = 0
        else:
            cycles = self._process(op_is_write, vaddr, now)
            if op_is_write:
                self.write_latency.record(cycles)
            else:
                self.read_latency.record(cycles)
        self._ref_end(now + cycles, cycles, breakdown.tlb_stall - tlb_before)
        return cycles

    def _process(self, op_is_write: bool, vaddr: int, now: int) -> int:
        # Localize everything touched per reference: this method runs
        # once per simulated load/store and repeated self.X lookups are
        # a measurable fraction of its cost.
        node_id = self.id
        flc = self.flc
        slc = self.slc
        breakdown = self.breakdown
        slc_hit = self._slc_hit
        at_l0 = self._at_l0
        at_l1 = self._at_l1
        at_l2 = self._at_l2
        values = self._counter_values

        vpn = vaddr >> self._page_bits
        tlb = at_l0(node_id, vpn) if at_l0 is not None else 0
        paddr = self._to_physical(vaddr) if self._needs_physical else vaddr
        flc_addr = vaddr if self._virtual_flc else paddr
        slc_addr = vaddr if self._virtual_slc else paddr
        proto_addr = vaddr if self._virtual_am else paddr
        stall = 0

        if not op_is_write:
            values["reads"] = values.get("reads", 0) + 1
            if not flc.lookup(flc_addr):
                if at_l1 is not None:
                    tlb += at_l1(node_id, vpn)
                if slc.lookup(slc_addr):
                    stall += slc_hit
                    breakdown.loc_stall += slc_hit
                else:
                    if at_l2 is not None:
                        tlb += at_l2(node_id, vpn)
                    outcome = self.engine.fetch(node_id, proto_addr, False, now + stall + tlb)
                    stall += outcome.cycles
                    self._attribute(outcome)
                    self._fill_slc(slc_addr, proto_addr, dirty=False)
                self._fill_flc(flc_addr)
        else:
            values["writes"] = values.get("writes", 0) + 1
            flc.lookup(flc_addr)  # write-through, no-write-allocate
            if at_l1 is not None:
                tlb += at_l1(node_id, vpn)  # every store reaches the SLC
            state = slc.state_of(slc_addr)
            if state is None:
                slc.lookup(slc_addr)  # count the miss
                if at_l2 is not None:
                    tlb += at_l2(node_id, vpn)
                outcome = self.engine.fetch(node_id, proto_addr, True, now + stall + tlb)
                stall += outcome.cycles
                self._attribute(outcome)
                self._fill_slc(slc_addr, proto_addr, dirty=True)
            else:
                slc.lookup(slc_addr)  # hit (refresh LRU)
                stall += slc_hit
                breakdown.loc_stall += slc_hit
                if state == CLEAN_SHARED:
                    # Ownership upgrade below the SLC.
                    if at_l2 is not None:
                        tlb += at_l2(node_id, vpn)
                    outcome = self.engine.upgrade_for_write(node_id, proto_addr, now + stall + tlb)
                    stall += outcome.cycles
                    self._attribute(outcome)
                slc.set_state(slc_addr, DIRTY)

        breakdown.tlb_stall += tlb
        return stall + tlb

    def _attribute(self, outcome) -> None:
        memory_cycles = outcome.cycles - outcome.translation
        self.breakdown.tlb_stall += outcome.translation
        if outcome.remote:
            self.breakdown.rem_stall += memory_cycles
            self.counters.add("remote_accesses")
        else:
            self.breakdown.loc_stall += memory_cycles
            self.counters.add("am_local_accesses")

    # ------------------------------------------------------------------
    # fills and the writeback path
    # ------------------------------------------------------------------
    def _fill_flc(self, flc_addr: int) -> None:
        # Write-through FLC: victims are always clean, nothing to do.
        self.flc.insert(flc_addr, CLEAN_SHARED)

    def _fill_slc(self, slc_addr: int, proto_addr: int, dirty: bool) -> None:
        if dirty:
            state = DIRTY
        else:
            am_state = self.engine.ams[self.id].state_of(proto_addr)
            state = CLEAN_EXCLUSIVE if am_state.writable else CLEAN_SHARED
        victim = self.slc.insert(slc_addr, state)
        if victim is None:
            return
        # Inclusion: the FLC may not cache anything the SLC lost.
        flc_base = self._slc_to_flc_space(victim.block)
        for _ in self.flc.invalidate_span(flc_base, self.slc.block_size):
            pass
        if victim.state == DIRTY:
            self._write_back(victim.block)

    def _write_back(self, slc_block: int) -> None:
        """Send one dirty SLC block down to the attraction memory.  This
        is the traffic that hurts L2-TLB in the paper (writebacks have
        poor locality)."""
        self.counters.add("slc_writebacks")
        vaddr = slc_block if self._virtual_slc else self._to_virtual(slc_block)
        if self._at_l2 is not None:
            self._at_l2(self.id, vaddr >> self._page_bits, writeback=True)
        proto = vaddr if self._virtual_am else self._to_physical(vaddr)
        self.engine.writeback(self.id, proto, 0)

    def _slc_to_flc_space(self, slc_block: int) -> int:
        if self._virtual_flc == self._virtual_slc:
            return slc_block
        if self._virtual_flc:
            return self._to_virtual(slc_block)
        return self._to_physical(slc_block)

    def _proto_to_slc_space(self, proto_block: int) -> int:
        if self._virtual_slc == self._virtual_am:
            return proto_block
        if self._virtual_slc:
            return self._to_virtual(proto_block)
        return self._to_physical(proto_block)

    # ------------------------------------------------------------------
    # inclusion hook (called by the protocol engine)
    # ------------------------------------------------------------------
    def on_inclusion(self, proto_block: int, action: str) -> None:
        """Keep caches included when the local AM loses or downgrades a
        block (an AM block spans several SLC/FLC blocks)."""
        span = self.params.am_block
        slc_base = self._proto_to_slc_space(proto_block)
        if action == "invalidate":
            for _ in self.slc.invalidate_span(slc_base, span):
                # Dirty data travels with the AM block to its new owner;
                # no separate writeback crosses the translation point.
                pass
            flc_base = self._slc_to_flc_space(slc_base)
            for _ in self.flc.invalidate_span(flc_base, span):
                pass
            self.counters.add("inclusion_invalidations")
        elif action == "downgrade":
            for evicted in self.slc.downgrade_span(slc_base, span, CLEAN_SHARED):
                # Exclusive->Master-shared: dirty cache data drains to
                # the AM; in L2-TLB this traffic crosses the TLB.
                self._write_back_downgraded(evicted.block)
            self.counters.add("inclusion_downgrades")
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown inclusion action {action!r}")

    def _write_back_downgraded(self, slc_block: int) -> None:
        self.counters.add("slc_coherence_writebacks")
        vaddr = slc_block if self._virtual_slc else self._to_virtual(slc_block)
        if self._at_l2 is not None:
            self._at_l2(self.id, vaddr >> self._page_bits, writeback=True)
        proto = vaddr if self._virtual_am else self._to_physical(vaddr)
        self.engine.writeback(self.id, proto, 0)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"Node({self.id}, {self.scheme.value})"
