"""Reference-stream vocabulary.

Workload generators yield a flat stream of ``(op, value)`` tuples per
node.  Plain tuples with small-int opcodes keep the simulator's hot loop
cheap; :class:`Ref` is a convenience constructor/namedtuple for tests
and examples.

========  =======================================================
op        value
========  =======================================================
READ      virtual byte address to load
WRITE     virtual byte address to store
BARRIER   barrier id (all nodes must arrive before any proceeds)
LOCK      virtual address of the lock word (acquire)
UNLOCK    virtual address of the lock word (release)
========  =======================================================
"""

from __future__ import annotations

from typing import NamedTuple

READ = 0
WRITE = 1
BARRIER = 2
LOCK = 3
UNLOCK = 4

OP_NAMES = {READ: "read", WRITE: "write", BARRIER: "barrier", LOCK: "lock", UNLOCK: "unlock"}


class Ref(NamedTuple):
    """One reference-stream event (readable form of the hot-path
    tuples)."""

    op: int
    value: int

    @property
    def op_name(self) -> str:
        return OP_NAMES[self.op]

    @property
    def is_memory(self) -> bool:
        return self.op in (READ, WRITE)

    @property
    def is_sync(self) -> bool:
        return self.op in (BARRIER, LOCK, UNLOCK)
