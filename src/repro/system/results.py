"""Run results: everything an experiment needs after a simulation."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.stats import AverageBreakdown, Counters, LatencyHistogram, TimeBreakdown


class RunResult:
    """Outcome of one simulated run.

    Collects per-node time breakdowns, merged counters, the pressure
    profile, and (when the run used a :class:`~repro.system.taps.StudyAgent`)
    the full translation-miss sweep.
    """

    def __init__(
        self,
        machine,
        breakdowns: List[TimeBreakdown],
        total_time: int,
        refs_per_node: List[int],
        barriers: int,
    ) -> None:
        self.machine = machine
        self.params = machine.params
        self.scheme = machine.scheme
        self.workload_name = machine.workload.name
        self.breakdowns = breakdowns
        self.total_time = total_time
        self.refs_per_node = refs_per_node
        self.barriers = barriers
        #: Which engine produced this result ("compiled" or "scalar"),
        #: and why the scalar path ran (None on the fast path).  Filled
        #: in by :meth:`~repro.system.simulator.Simulator.run`.
        self.backend: Optional[str] = None
        self.fallback_reason: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def total_references(self) -> int:
        return sum(self.refs_per_node)

    @property
    def counters(self) -> Counters:
        return self.machine.merged_counters()

    def aggregate_breakdown(self) -> TimeBreakdown:
        total = TimeBreakdown()
        for breakdown in self.breakdowns:
            total = total + breakdown
        return total

    def average_breakdown(self) -> AverageBreakdown:
        return self.aggregate_breakdown().scaled(len(self.breakdowns))

    def translation_overhead_ratio(self) -> float:
        """Table 4's metric: translation stall / memory stall, averaged
        machine-wide."""
        return self.aggregate_breakdown().translation_overhead_ratio()

    def pressure_profile(self) -> List[float]:
        return self.machine.pressure.profile()

    def read_latency_histogram(self) -> LatencyHistogram:
        """Machine-wide distribution of load stall latencies."""
        merged = LatencyHistogram()
        for node in self.machine.nodes:
            merged = merged.merge(node.read_latency)
        return merged

    def write_latency_histogram(self) -> LatencyHistogram:
        """Machine-wide distribution of store stall latencies."""
        merged = LatencyHistogram()
        for node in self.machine.nodes:
            merged = merged.merge(node.write_latency)
        return merged

    def study_results(self):
        """Sweep results when the run's agent was a StudyAgent."""
        agent = self.machine.agent
        results = getattr(agent, "results", None)
        if results is None:
            return None
        return results()

    def timing_summary(self) -> Optional[Dict[str, float]]:
        """Translation statistics when the run used a TimingAgent."""
        agent = self.machine.agent
        if not hasattr(agent, "total_misses"):
            return None
        accesses = agent.total_accesses
        return {
            "entries": agent.entries,
            "accesses": accesses,
            "misses": agent.total_misses,
            "miss_rate": agent.total_misses / accesses if accesses else 0.0,
        }

    def summary(self) -> Dict[str, float]:
        breakdown = self.average_breakdown()
        return {
            "scheme": self.scheme.value,
            "workload": self.workload_name,
            "total_time": self.total_time,
            "references": self.total_references,
            "busy": breakdown.busy,
            "sync": breakdown.sync,
            "loc_stall": breakdown.loc_stall,
            "rem_stall": breakdown.rem_stall,
            "tlb_stall": breakdown.tlb_stall,
        }

    def __repr__(self) -> str:
        return (
            f"RunResult({self.scheme.value}/{self.workload_name}, "
            f"time={self.total_time}, refs={self.total_references})"
        )
