"""Trace-interleaved multiprocessor simulation.

The simulator always advances the node with the smallest local clock, so
cross-node interactions (coherence interleaving, barrier imbalance, lock
contention) happen in a globally consistent time order even though each
reference is processed atomically.  Synchronization semantics:

* **barrier** — a node arriving waits until every *active* node has
  arrived; the wait is charged to ``sync``.  (A node whose stream ends
  counts as arrived at every future barrier, so imbalanced tails cannot
  deadlock the machine.)
* **lock / unlock** — locks are FIFO queues keyed by the lock word's
  address; acquisition and release each perform a real store to the
  lock word (generating genuine coherence traffic, which is how
  RAYTRACE's task-queue contention shows up).  Waiting time is charged
  to ``sync``.

At the end of the run every node's idle tail (waiting for the slowest
node to finish) is charged to ``sync``, as if a final barrier closed the
program — this is how the paper's per-benchmark bars stay comparable.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, Optional

from repro.common.errors import ReproError
from repro.system.machine import Machine
from repro.system.refs import BARRIER, LOCK, READ, UNLOCK, WRITE
from repro.system.results import RunResult


class Simulator:
    """Drives one machine over its workload's reference streams."""

    def __init__(
        self,
        machine: Machine,
        max_refs_per_node: Optional[int] = None,
        check_invariants_every: int = 0,
        phase_every: int = 2048,
        fast: bool = True,
        stream_key: Optional[str] = None,
    ) -> None:
        self.machine = machine
        self.max_refs_per_node = max_refs_per_node
        self.check_invariants_every = check_invariants_every
        #: With a tracer attached, emit one "phase" progress event per
        #: this many processed references (refs/sec over simulated time).
        self.phase_every = phase_every
        #: Try the compiled columnar engine first (bit-identical; see
        #: repro.system.fast_simulator).  False forces the scalar path.
        self.fast = fast
        #: Optional workload identity (``JobSpec.trace_hash()`` in grid
        #: runs) keying the materialized-column LRU, so grid cells that
        #: share a workload materialize its streams once.  None bypasses
        #: the cache.
        self.stream_key = stream_key
        #: After run(): "compiled" or "scalar".
        self.backend: Optional[str] = None
        #: After run(): why the scalar path was used (None on the fast
        #: path; "fast=False" when explicitly disabled).
        self.fallback_reason: Optional[str] = None

    def run(self) -> RunResult:
        """Run to completion, preferring the compiled fast path.

        Both paths produce bit-identical results (the differential
        suite enforces it); ``backend``/``fallback_reason`` record
        which one actually ran.  A compiled-engine failure the scalar
        oracle recovers from — C-side allocation failure, the sticky
        internal error status, an injected fault — degrades to a
        scalar re-run of the same (still pristine) machine, recorded
        on the ladder's fallback counters and stamped as a structured
        ``fallback_reason``; it never crashes the run.
        """
        if self.fast:
            from repro.core.ladder import EngineDegraded
            from repro.system import fast_simulator

            reason = fast_simulator.fallback_reason(self)
            if reason is None:
                self.backend = "compiled"
                self.fallback_reason = None
                try:
                    return self._stamp(fast_simulator.run_fast(self))
                except (EngineDegraded, MemoryError) as exc:
                    if getattr(self, "_fast_state_mutated", False):
                        # Copy-back had begun: the machine is no longer
                        # pristine, so a scalar re-run would be wrong.
                        raise
                    detail = getattr(exc, "reason", None) or str(exc) or "MemoryError"
                    reason = f"compiled engine degraded: {detail}"
                    from repro.obs.runtime import record_fallback

                    record_fallback("compiled", detail)
            self.fallback_reason = reason
        else:
            self.fallback_reason = "fast=False"
        self.backend = "scalar"
        return self._stamp(self._run_scalar())

    def _stamp(self, result: RunResult) -> RunResult:
        result.backend = self.backend
        result.fallback_reason = self.fallback_reason
        return result

    def _run_scalar(self) -> RunResult:
        machine = self.machine
        nodes = machine.nodes
        count = len(nodes)
        think = machine.workload.think_cycles
        streams = [machine.node_stream(n) for n in range(count)]
        clock = [0] * count
        refs_done = [0] * count
        finished = [False] * count
        active = count
        barriers_seen = 0
        total_refs_processed = 0
        check_every = self.check_invariants_every
        trace = getattr(machine, "tracer", None)
        phase_every = self.phase_every if trace is not None else 0
        if trace is not None:
            trace.begin("run", 0, max_refs=self.max_refs_per_node)

        # Barrier state: id -> {node: arrival_time}
        barrier_arrivals: Dict[int, Dict[int, int]] = {}
        # Lock state: lock word address -> holder node (or None) + queue.
        lock_holder: Dict[int, Optional[int]] = {}
        lock_queue: Dict[int, deque] = {}

        heap = [(0, n) for n in range(count)]
        heapq.heapify(heap)
        heappush = heapq.heappush
        heappop = heapq.heappop
        max_refs = self.max_refs_per_node

        def finish(node: int, now: int) -> None:
            nonlocal active
            finished[node] = True
            clock[node] = now
            active -= 1
            # Process exit releases any lock still held (only reachable
            # when max_refs_per_node truncates inside a critical section).
            for word, holder in list(lock_holder.items()):
                if holder != node:
                    continue
                queue = lock_queue.get(word)
                if queue:
                    waiter, arrival = queue.popleft()
                    lock_holder[word] = waiter
                    nodes[waiter].breakdown.sync += max(0, now - arrival)
                    heappush(heap, (max(now, arrival), waiter))
                else:
                    lock_holder[word] = None
            # A finished node satisfies every outstanding barrier.
            for barrier_id in list(barrier_arrivals):
                self._maybe_release_barrier(
                    barrier_id, barrier_arrivals, clock, heap, nodes, active
                )

        while heap:
            now, n = heappop(heap)
            if finished[n]:
                continue
            if max_refs is not None and refs_done[n] >= max_refs:
                finish(n, now)
                continue
            event = next(streams[n], None)
            if event is None:
                finish(n, now)
                continue
            op, value = event

            if op == READ or op == WRITE:
                node = nodes[n]
                node.breakdown.busy += think
                stall = node.reference(op == WRITE, value, now + think)
                clock[n] = now + think + stall
                refs_done[n] += 1
                total_refs_processed += 1
                heappush(heap, (clock[n], n))
                if check_every and total_refs_processed % check_every == 0:
                    machine.engine.check_invariants()
                if phase_every and total_refs_processed % phase_every == 0:
                    trace.event("phase", clock[n], refs=total_refs_processed)
            elif op == BARRIER:
                barriers_seen += 1
                if trace is not None:
                    trace.event("sim.barrier", now, node=n, barrier=value)
                arrivals = barrier_arrivals.setdefault(value, {})
                if n in arrivals:
                    raise ReproError(
                        f"node {n} reached barrier {value} twice before release"
                    )
                arrivals[n] = now
                clock[n] = now
                self._maybe_release_barrier(
                    value, barrier_arrivals, clock, heap, nodes, active
                )
            elif op == LOCK:
                word = value
                holder = lock_holder.get(word)
                if holder is None:
                    lock_holder[word] = n
                    if trace is not None:
                        trace.event("sim.lock", now, node=n, word=word)
                    stall = nodes[n].reference(True, word, now)
                    clock[n] = now + stall
                    heappush(heap, (clock[n], n))
                else:
                    lock_queue.setdefault(word, deque()).append((n, now))
            elif op == UNLOCK:
                word = value
                if lock_holder.get(word) != n:
                    raise ReproError(
                        f"node {n} unlocks {word:#x} held by {lock_holder.get(word)}"
                    )
                stall = nodes[n].reference(True, word, now)
                release_time = now + stall
                clock[n] = release_time
                heappush(heap, (clock[n], n))
                queue = lock_queue.get(word)
                if queue:
                    waiter, arrival = queue.popleft()
                    lock_holder[word] = waiter
                    nodes[waiter].breakdown.sync += release_time - arrival
                    acquire_stall = nodes[waiter].reference(True, word, release_time)
                    clock[waiter] = release_time + acquire_stall
                    heappush(heap, (clock[waiter], waiter))
                else:
                    lock_holder[word] = None
            else:  # pragma: no cover - defensive
                raise ReproError(f"unknown opcode {op}")

        if barrier_arrivals:
            raise ReproError(
                f"deadlock: barriers {sorted(barrier_arrivals)} never released"
            )
        held = [w for w, h in lock_holder.items() if h is not None]
        if held:
            raise ReproError(f"locks still held at end of run: {held}")

        # Idle tails count as synchronization (final implicit barrier).
        end_time = max(clock) if clock else 0
        for n in range(count):
            nodes[n].breakdown.sync += end_time - clock[n]

        if trace is not None:
            trace.end(end_time, refs=total_refs_processed, barriers=barriers_seen)

        return RunResult(
            machine=machine,
            breakdowns=[node.breakdown for node in nodes],
            total_time=end_time,
            refs_per_node=refs_done,
            barriers=barriers_seen,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _maybe_release_barrier(barrier_id, barrier_arrivals, clock, heap, nodes, active) -> None:
        arrivals = barrier_arrivals.get(barrier_id)
        if arrivals is None:
            return
        waiting = len(arrivals)
        if waiting < active:
            return
        release = max(arrivals.values()) if arrivals else 0
        for node_id, arrived in arrivals.items():
            nodes[node_id].breakdown.sync += release - arrived
            clock[node_id] = release
            heapq.heappush(heap, (release, node_id))
        del barrier_arrivals[barrier_id]
