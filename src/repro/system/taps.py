"""Translation agents: what happens at each translation point.

Two concrete :class:`~repro.coma.protocol.TranslationAgent`\\ s:

* :class:`StudyAgent` — the sweep instrument.  At every tap point it
  feeds the observed virtual page number into a bank of TLB/DLB models
  of *every* size and organization under study, then charges nothing.
  Because the TLB content never feeds back into the cache hierarchy,
  one simulation run yields the full miss surface of Figures 8 and 9
  and Tables 2 and 3.

* :class:`TimingAgent` — the coupled instrument.  It owns one real
  translation structure at the scheme's tap point (per-node TLB, or
  per-home DLB for V-COMA) and charges the paper's 40-cycle penalty on
  each miss, so translation stalls shift execution and synchronization
  time (Table 4, Figure 10).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.common.params import MachineParams
from repro.common.rng import make_rng
from repro.coma.protocol import TranslationAgent
from repro.core.schemes import TAP_OF_SCHEME, Scheme, TapPoint
from repro.core.tlb import Organization, TranslationBank, TranslationBuffer

#: Sizes matching the x-axis of paper Figure 8 / columns of Tables 2-3.
DEFAULT_SWEEP_SIZES: Tuple[int, ...] = (8, 32, 128, 512)
DEFAULT_SWEEP_ORGS: Tuple[Organization, ...] = (
    Organization.FULLY_ASSOCIATIVE,
    Organization.DIRECT_MAPPED,
)

_PER_NODE_TAPS = (TapPoint.L0, TapPoint.L1, TapPoint.L2, TapPoint.L2_NO_WBACK, TapPoint.L3)


class StudyResults:
    """Aggregated sweep output: misses/accesses per tap, size, org."""

    def __init__(
        self,
        nodes: int,
        sizes: Tuple[int, ...],
        orgs: Tuple[Organization, ...],
        misses: Dict[Tuple[TapPoint, int, Organization], int],
        accesses: Dict[TapPoint, int],
        total_references: int,
    ) -> None:
        self.nodes = nodes
        self.sizes = sizes
        self.orgs = orgs
        self._misses = misses
        self._accesses = accesses
        self.total_references = total_references

    def misses(self, tap: TapPoint, size: int, org: Organization = Organization.FULLY_ASSOCIATIVE) -> int:
        """Machine-wide translation misses for one design point."""
        return self._misses[(tap, size, org)]

    def misses_per_node(self, tap: TapPoint, size: int, org: Organization = Organization.FULLY_ASSOCIATIVE) -> float:
        """Figure 8's y-axis: translation misses per node."""
        return self.misses(tap, size, org) / self.nodes

    def miss_rate(self, tap: TapPoint, size: int, org: Organization = Organization.FULLY_ASSOCIATIVE) -> float:
        """Table 2's metric: misses per processor reference."""
        if self.total_references == 0:
            return 0.0
        return self.misses(tap, size, org) / self.total_references

    def accesses(self, tap: TapPoint) -> int:
        """References that reached this tap (machine-wide)."""
        return self._accesses.get(tap, 0)

    def curve(self, tap: TapPoint, org: Organization = Organization.FULLY_ASSOCIATIVE) -> List[Tuple[int, int]]:
        """(size, misses) points, size-ascending — one Figure 8 line."""
        return [(size, self.misses(tap, size, org)) for size in sorted(self.sizes)]

    # -- serialization (runner result cache) ----------------------------
    def to_dict(self) -> Dict:
        """JSON-serializable form (enum keys flattened to strings)."""
        return {
            "nodes": self.nodes,
            "sizes": list(self.sizes),
            "orgs": [org.value for org in self.orgs],
            "total_references": self.total_references,
            "misses": {
                f"{tap.value}|{size}|{org.value}": count
                for (tap, size, org), count in self._misses.items()
            },
            "accesses": {tap.value: count for tap, count in self._accesses.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "StudyResults":
        misses: Dict[Tuple[TapPoint, int, Organization], int] = {}
        for key, count in data["misses"].items():
            tap_value, size, org_value = key.rsplit("|", 2)
            misses[(TapPoint(tap_value), int(size), Organization(org_value))] = count
        return cls(
            nodes=data["nodes"],
            sizes=tuple(data["sizes"]),
            orgs=tuple(Organization(value) for value in data["orgs"]),
            misses=misses,
            accesses={TapPoint(value): count for value, count in data["accesses"].items()},
            total_references=data["total_references"],
        )


class StudyAgent(TranslationAgent):
    """Feeds every tap into banks of translation buffers; never stalls."""

    def __init__(
        self,
        params: MachineParams,
        sizes: Iterable[int] = DEFAULT_SWEEP_SIZES,
        orgs: Iterable[Organization] = DEFAULT_SWEEP_ORGS,
    ) -> None:
        self.params = params
        self.sizes = tuple(sorted(set(sizes)))
        self.orgs = tuple(dict.fromkeys(orgs))
        configs = [(size, org) for size in self.sizes for org in self.orgs]
        self._node_bits = params.nodes.bit_length() - 1
        self._banks: Dict[Tuple[TapPoint, int], TranslationBank] = {}
        for tap in TapPoint:
            for node in range(params.nodes):
                self._banks[(tap, node)] = TranslationBank(
                    configs, seed=params.seed, name=f"{tap.value}:{node}"
                )
        # Per-tap bank lists indexed by node: the tap feeds run once per
        # simulated reference, and a plain list index is markedly cheaper
        # than hashing a (TapPoint, node) tuple each time.
        nodes = range(params.nodes)
        self._l0 = [self._banks[(TapPoint.L0, n)] for n in nodes]
        self._l1 = [self._banks[(TapPoint.L1, n)] for n in nodes]
        self._l2 = [self._banks[(TapPoint.L2, n)] for n in nodes]
        self._l2_no_wback = [self._banks[(TapPoint.L2_NO_WBACK, n)] for n in nodes]
        self._l3 = [self._banks[(TapPoint.L3, n)] for n in nodes]
        self._home = [self._banks[(TapPoint.HOME, n)] for n in nodes]
        self.total_references = 0

    # -- tap feeds ------------------------------------------------------
    def at_l0(self, node: int, vpn: int) -> int:
        self.total_references += 1
        self._l0[node].access(vpn)
        return 0

    def at_l1(self, node: int, vpn: int) -> int:
        self._l1[node].access(vpn)
        return 0

    def at_l2(self, node: int, vpn: int, writeback: bool = False) -> int:
        self._l2[node].access(vpn)
        if not writeback:
            self._l2_no_wback[node].access(vpn)
        return 0

    def at_l3(self, node: int, vpn: int) -> int:
        self._l3[node].access(vpn)
        return 0

    def at_home(self, home: int, vpn: int, for_ownership: bool = False, injection: bool = False, requester=None) -> int:
        # The DLB indexes with the VPN bits *above* the home selector:
        # every page at this home shares the low `p` bits, so keeping
        # them would waste a direct-mapped DLB's index space P-fold.
        self._home[home].access(vpn >> self._node_bits)
        return 0

    # -- results --------------------------------------------------------
    def results(self) -> StudyResults:
        misses: Dict[Tuple[TapPoint, int, Organization], int] = {}
        accesses: Dict[TapPoint, int] = {}
        for tap in TapPoint:
            accesses[tap] = sum(
                self._banks[(tap, node)].accesses for node in range(self.params.nodes)
            )
            for size in self.sizes:
                for org in self.orgs:
                    total = 0
                    for node in range(self.params.nodes):
                        bank = self._banks[(tap, node)]
                        total += bank.buffers[(size, org)].misses
                    misses[(tap, size, org)] = total
        return StudyResults(
            nodes=self.params.nodes,
            sizes=self.sizes,
            orgs=self.orgs,
            misses=misses,
            accesses=accesses,
            total_references=self.total_references,
        )


class TimingAgent(TranslationAgent):
    """One real TLB/DLB at the scheme's translation point, with the
    40-cycle miss penalty charged to whoever is waiting.

    For V-COMA the structure is the per-home DLB (shared by all
    requesters); for the TLB schemes it is per node.  ``include_l2_writebacks``
    mirrors the paper's solid-vs-dashed L2 lines: when False, writebacks
    bypass the TLB via physical pointers stored in the SLC.
    """

    def __init__(
        self,
        params: MachineParams,
        scheme: Scheme,
        entries: int,
        organization: Organization = Organization.FULLY_ASSOCIATIVE,
        include_l2_writebacks: bool = True,
    ) -> None:
        self.params = params
        self.scheme = scheme
        self.entries = entries
        self.organization = organization
        self.include_l2_writebacks = include_l2_writebacks
        self.penalty = params.translation_miss_penalty
        self._node_bits = params.nodes.bit_length() - 1
        self._buffers: List[TranslationBuffer] = [
            TranslationBuffer(
                entries,
                organization,
                rng=make_rng(params.seed, "timing-tlb", scheme.value, node),
            )
            for node in range(params.nodes)
        ]

    # -- tracing --------------------------------------------------------
    def attach_trace(self, trace) -> None:
        """Emit one ``tlb_hit``/``tlb_fill`` (or, for V-COMA,
        ``dlb_hit``/``dlb_fill``) event per translation lookup, wired
        through each buffer's ``trace_hook`` so the tap feeds stay
        unchanged.  Event counts reconcile exactly with the
        ``tlb_accesses``/``tlb_misses`` (``dlb_*``) counters the machine
        derives from this agent: hits + fills = accesses, fills =
        misses."""
        self.trace = trace
        prefix = "dlb" if self.scheme is Scheme.V_COMA else "tlb"
        hit_name, fill_name = f"{prefix}_hit", f"{prefix}_fill"
        for node, buffer in enumerate(self._buffers):
            buffer.trace_hook = self._make_hook(trace, hit_name, fill_name, node)

    @staticmethod
    def _make_hook(trace, hit_name: str, fill_name: str, node: int):
        # One packed emitter per event name, hoisted here so each
        # translation lookup packs a fixed-layout record (timestamped
        # at the tracer's last seen time — the hooks carry no clock).
        emit_hit = trace.event_emitter(hit_name, ("node", "vpn"))
        emit_fill = trace.event_emitter(fill_name, ("node", "vpn"))

        def hook(page: int, hit: bool) -> None:
            (emit_hit if hit else emit_fill)(trace._last_time, node, page)

        return hook

    # -- statistics -----------------------------------------------------
    @property
    def total_misses(self) -> int:
        return sum(buffer.misses for buffer in self._buffers)

    @property
    def total_accesses(self) -> int:
        return sum(buffer.accesses for buffer in self._buffers)

    def buffer(self, node: int) -> TranslationBuffer:
        return self._buffers[node]

    def uses_tap(self, tap: TapPoint) -> bool:
        # Only the scheme's own tap charges cycles; every other at_*
        # call would return 0, so hot paths may skip them entirely.
        return TAP_OF_SCHEME[self.scheme] is tap

    def _translate(self, node: int, vpn: int) -> int:
        return 0 if self._buffers[node].access(vpn) else self.penalty

    # -- tap feeds ------------------------------------------------------
    def at_l0(self, node: int, vpn: int) -> int:
        if self.scheme is Scheme.L0_TLB:
            return self._translate(node, vpn)
        return 0

    def at_l1(self, node: int, vpn: int) -> int:
        if self.scheme is Scheme.L1_TLB:
            return self._translate(node, vpn)
        return 0

    def at_l2(self, node: int, vpn: int, writeback: bool = False) -> int:
        if self.scheme is Scheme.L2_TLB:
            if writeback and not self.include_l2_writebacks:
                return 0
            return self._translate(node, vpn)
        return 0

    def at_l3(self, node: int, vpn: int) -> int:
        if self.scheme is Scheme.L3_TLB:
            return self._translate(node, vpn)
        return 0

    def at_home(self, home: int, vpn: int, for_ownership: bool = False, injection: bool = False, requester=None) -> int:
        if self.scheme is Scheme.V_COMA:
            # Index with the VPN bits above the home selector (all pages
            # at one home share the low `p` bits).
            return self._translate(home, vpn >> self._node_bits)
        return 0
