"""Record-once/replay-many translation tap traces.

The miss-count experiments (Figures 8/9, Tables 2/3) are decoupled:
the :class:`~repro.system.taps.StudyAgent` observes the hierarchy but
never perturbs it, so the hierarchy simulation — by far the dominant
cost — is identical for every TLB/DLB size and organization under
study.  This module splits that work in two:

* :func:`capture_tap_traces` runs the hierarchy **once** per
  ``(workload, MachineParams)`` pair with a :class:`CaptureAgent` that
  records, per translation tap and node, the exact page-number stream
  a bank of translation buffers would observe, plus the run's
  hierarchy-side :class:`~repro.runner.summary.RunSummary` (time
  breakdowns, counters — none of which depend on bank configuration).
* :func:`replay_study` drives banks of **any** sizes/organizations from
  those recorded streams through the vectorized kernels of
  :mod:`repro.core.replay`, producing a
  :class:`~repro.system.taps.StudyResults` bit-identical to a coupled
  :class:`StudyAgent` run with the same configuration.

A :class:`TapTraceSet` serializes to a compact columnar binary format
(``to_bytes``/``from_bytes``): a JSON header describing one column per
``(tap, node)`` stream followed by the concatenated little-endian page
arrays (4-byte entries when every page number fits, 8-byte otherwise),
CRC-guarded so truncated or corrupted files are detected and treated
as cache misses by the :class:`~repro.runner.traces.TraceStore`.
"""

from __future__ import annotations

import json
import struct
import sys
import zlib
from array import array
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ReproError
from repro.common.params import MachineParams
from repro.coma.protocol import TranslationAgent
from repro.core.replay import ReplayStream, bank_miss_counts
from repro.core.schemes import Scheme, TapPoint
from repro.core.tlb import Organization
from repro.system.taps import StudyResults
from repro.workloads.base import Workload

#: On-disk magic + format version; bump the version on any layout change.
TRACE_MAGIC = b"RTAP"
TRACE_FORMAT = 1

#: array typecodes for exact 4- and 8-byte unsigned columns.
_U4 = "I" if array("I").itemsize == 4 else "L"
_U8 = "Q"

#: Tap values in canonical column order.
_TAP_ORDER = tuple(tap.value for tap in TapPoint)


class TraceError(ReproError):
    """A tap-trace file is missing, truncated, or corrupt."""


class CaptureAgent(TranslationAgent):
    """Records every tap's page-number stream; never stalls.

    The hierarchy behaves exactly as under a
    :class:`~repro.system.taps.StudyAgent` (every tap returns zero
    cycles), so the captured streams and the run's time breakdowns are
    the ones a coupled sweep run would produce.
    """

    __slots__ = (
        "params",
        "total_references",
        "_node_bits",
        "_l0",
        "_l1",
        "_l2",
        "_l2_no_wback",
        "_l3",
        "_home",
    )

    def __init__(self, params: MachineParams) -> None:
        nodes = range(params.nodes)
        self.params = params
        self.total_references = 0
        self._node_bits = params.nodes.bit_length() - 1
        self._l0 = [array(_U8) for _ in nodes]
        self._l1 = [array(_U8) for _ in nodes]
        self._l2 = [array(_U8) for _ in nodes]
        self._l2_no_wback = [array(_U8) for _ in nodes]
        self._l3 = [array(_U8) for _ in nodes]
        self._home = [array(_U8) for _ in nodes]

    # -- tap feeds ------------------------------------------------------
    def at_l0(self, node: int, vpn: int) -> int:
        self.total_references += 1
        self._l0[node].append(vpn)
        return 0

    def at_l1(self, node: int, vpn: int) -> int:
        self._l1[node].append(vpn)
        return 0

    def at_l2(self, node: int, vpn: int, writeback: bool = False) -> int:
        self._l2[node].append(vpn)
        if not writeback:
            self._l2_no_wback[node].append(vpn)
        return 0

    def at_l3(self, node: int, vpn: int) -> int:
        self._l3[node].append(vpn)
        return 0

    def at_home(self, home: int, vpn: int, for_ownership: bool = False, injection: bool = False, requester=None) -> int:
        # Same index transformation as StudyAgent/TimingAgent: the DLB
        # drops the home-selector bits shared by every page at a home.
        self._home[home].append(vpn >> self._node_bits)
        return 0

    # -- extraction -----------------------------------------------------
    def streams(self) -> Dict[Tuple[str, int], array]:
        per_tap = {
            TapPoint.L0: self._l0,
            TapPoint.L1: self._l1,
            TapPoint.L2: self._l2,
            TapPoint.L2_NO_WBACK: self._l2_no_wback,
            TapPoint.L3: self._l3,
            TapPoint.HOME: self._home,
        }
        return {
            (tap.value, node): columns[node]
            for tap, columns in per_tap.items()
            for node in range(self.params.nodes)
        }


class TapTraceSet:
    """Recorded tap streams plus the hierarchy-side run summary."""

    __slots__ = ("nodes", "seed", "total_references", "streams", "base")

    def __init__(
        self,
        nodes: int,
        seed: int,
        total_references: int,
        streams: Dict[Tuple[str, int], array],
        base,  # RunSummary with study=None
    ) -> None:
        self.nodes = nodes
        self.seed = seed
        self.total_references = total_references
        self.streams = streams
        self.base = base

    def stream(self, tap: TapPoint, node: int) -> array:
        return self.streams.get((tap.value, node), array(_U8))

    @property
    def total_events(self) -> int:
        return sum(len(column) for column in self.streams.values())

    # -- serialization ---------------------------------------------------
    def to_bytes(self) -> bytes:
        columns = []
        payload_parts: List[bytes] = []
        for tap_value in _TAP_ORDER:
            for node in range(self.nodes):
                column = self.streams.get((tap_value, node))
                if column is None:
                    continue
                # Downcast to 4-byte entries when every page fits: tap
                # streams are page *numbers*, which are far below 2**32
                # on any machine configuration we simulate, so this
                # normally halves the file.
                narrow = not column or max(column) < 1 << 32
                data = array(_U4, column) if narrow else column
                if sys.byteorder == "big":  # pragma: no cover - exotic host
                    data = array(data.typecode, data)
                    data.byteswap()
                payload_parts.append(data.tobytes())
                columns.append(
                    {
                        "tap": tap_value,
                        "node": node,
                        "count": len(column),
                        "dtype": "u4" if narrow else "u8",
                    }
                )
        payload = b"".join(payload_parts)
        from repro import __version__

        header = json.dumps(
            {
                "version": __version__,
                "nodes": self.nodes,
                "seed": self.seed,
                "total_references": self.total_references,
                "base": self.base.to_dict(),
                "columns": columns,
                "payload_len": len(payload),
                "payload_crc32": zlib.crc32(payload),
            }
        ).encode()
        return b"".join(
            [
                TRACE_MAGIC,
                struct.pack("<II", TRACE_FORMAT, len(header)),
                header,
                payload,
            ]
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "TapTraceSet":
        prefix = len(TRACE_MAGIC) + 8
        if len(blob) < prefix or blob[: len(TRACE_MAGIC)] != TRACE_MAGIC:
            raise TraceError("not a tap-trace file (bad magic)")
        fmt, header_len = struct.unpack_from("<II", blob, len(TRACE_MAGIC))
        if fmt != TRACE_FORMAT:
            raise TraceError(f"unsupported trace format {fmt}")
        if len(blob) < prefix + header_len:
            raise TraceError("truncated trace header")
        try:
            header = json.loads(blob[prefix : prefix + header_len])
        except ValueError as exc:
            raise TraceError(f"unreadable trace header: {exc}") from None
        payload = blob[prefix + header_len :]
        try:
            expected_len = header["payload_len"]
            expected_crc = header["payload_crc32"]
            columns = header["columns"]
            nodes = header["nodes"]
            seed = header["seed"]
            total_references = header["total_references"]
            base_dict = header["base"]
        except (KeyError, TypeError) as exc:
            raise TraceError(f"trace header missing field: {exc}") from None
        if len(payload) != expected_len:
            raise TraceError(
                f"truncated trace payload: {len(payload)} of {expected_len} bytes"
            )
        if zlib.crc32(payload) != expected_crc:
            raise TraceError("trace payload checksum mismatch")

        from repro.runner.summary import RunSummary

        try:
            base = RunSummary.from_dict(base_dict)
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"unreadable base summary: {exc}") from None

        streams: Dict[Tuple[str, int], array] = {}
        offset = 0
        for spec in columns:
            try:
                tap_value, node, count, dtype = (
                    spec["tap"], spec["node"], spec["count"], spec["dtype"],
                )
            except (KeyError, TypeError) as exc:
                raise TraceError(f"bad column descriptor: {exc}") from None
            typecode = _U4 if dtype == "u4" else _U8
            column = array(typecode)
            nbytes = count * column.itemsize
            if offset + nbytes > len(payload):
                raise TraceError("trace payload shorter than its columns")
            column.frombytes(payload[offset : offset + nbytes])
            if sys.byteorder == "big":  # pragma: no cover - exotic host
                column.byteswap()
            offset += nbytes
            streams[(tap_value, node)] = column
        return cls(
            nodes=nodes,
            seed=seed,
            total_references=total_references,
            streams=streams,
            base=base,
        )


# ----------------------------------------------------------------------
# record / replay
# ----------------------------------------------------------------------
def capture_tap_traces(
    params: MachineParams,
    workload: Workload,
    max_refs_per_node: Optional[int] = None,
    fast: bool = True,
    stream_key: Optional[str] = None,
) -> TapTraceSet:
    """Run the hierarchy once, recording every translation tap.

    The machine is configured exactly as :func:`run_miss_sweep`'s
    (V-COMA hierarchy — every scheme's tap stream can be read off it),
    so the recorded streams and base summary match a scalar sweep run
    bit for bit.  The capture prefers the compiled engine's capture
    mode (``fast=False`` forces the scalar reference path — identical
    streams either way); ``stream_key`` keys the materialized-column
    LRU for grid-level stream sharing.
    """
    from repro.system.machine import Machine
    from repro.system.simulator import Simulator
    from repro.runner.summary import RunSummary

    agent = CaptureAgent(params)
    machine = Machine(params, Scheme.V_COMA, workload, agent=agent)
    result = Simulator(
        machine, max_refs_per_node=max_refs_per_node, fast=fast, stream_key=stream_key
    ).run()
    return TapTraceSet(
        nodes=params.nodes,
        seed=params.seed,
        total_references=agent.total_references,
        streams=agent.streams(),
        base=RunSummary.from_result(result),
    )


def replay_study(
    traces: TapTraceSet,
    sizes,
    orgs,
) -> StudyResults:
    """Drive banks of every ``(size, org)`` point from recorded streams.

    Bit-identical to a :class:`~repro.system.taps.StudyAgent` run with
    the same ``sizes``/``orgs``: the per-``(tap, node)`` bank names and
    RNG substreams match, so the replacement decisions — and therefore
    the miss counts — are the same.
    """
    sizes = tuple(sorted(set(sizes)))
    orgs = tuple(dict.fromkeys(orgs))
    configs = [(size, org) for size in sizes for org in orgs]
    misses: Dict[Tuple[TapPoint, int, Organization], int] = {}
    accesses: Dict[TapPoint, int] = {}
    for tap in TapPoint:
        tap_accesses = 0
        totals = {config: 0 for config in configs}
        for node in range(traces.nodes):
            column = traces.stream(tap, node)
            tap_accesses += len(column)
            counts = bank_miss_counts(
                column,
                configs,
                traces.seed,
                f"{tap.value}:{node}",
                stream=ReplayStream(column),
            )
            for config, count in counts.items():
                totals[config] += count
        accesses[tap] = tap_accesses
        for (size, org), total in totals.items():
            misses[(tap, size, org)] = total
    return StudyResults(
        nodes=traces.nodes,
        sizes=sizes,
        orgs=orgs,
        misses=misses,
        accesses=accesses,
        total_references=traces.total_references,
    )


def replay_summary(traces: TapTraceSet, sizes, orgs):
    """A sweep :class:`~repro.runner.summary.RunSummary`: the recorded
    hierarchy summary with the replayed study surface attached.  The
    ``backend`` stamp records both halves of the pipeline — e.g.
    ``"compiled+replay"`` when the capture ran on the fast engine."""
    summary = traces.base.with_study(replay_study(traces, sizes, orgs))
    capture_backend = summary.backend or "scalar"
    summary.backend = f"{capture_backend}+replay"
    return summary
