"""Virtual-memory substrate.

A PowerPC-like *segmented, synonym-free* global virtual address space
(paper Section 2.2.1), per-home page tables mapping virtual pages to
directory pages (V-COMA) or physical frames (physical schemes), the
round-robin frame allocator with optional page coloring (L3-TLB), the
global-set pressure accounting behind paper Figure 11, and the optional
swap daemon of Section 4.3.
"""

from repro.vm.segments import Segment, SegmentedAddressSpace, SegmentKind
from repro.vm.page_table import HomePageTable, PageTableEntry, Protection
from repro.vm.frames import FrameAllocator
from repro.vm.pressure import PressureTracker
from repro.vm.swap import SwapDaemon
from repro.vm.protection import ProtectionManager

__all__ = [
    "FrameAllocator",
    "HomePageTable",
    "PageTableEntry",
    "PressureTracker",
    "Protection",
    "ProtectionManager",
    "Segment",
    "SegmentKind",
    "SegmentedAddressSpace",
    "SwapDaemon",
]
