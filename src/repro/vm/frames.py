"""Physical pageframe allocation for the physical-address schemes.

The paper assigns physical pages **round robin** across nodes (Section
5.3).  In a flat COMA a physical page is really a directory slot: the low
``p`` bits of the physical frame number (PFN) select the page's home node
and the low ``s+b-n`` bits are its *color* — the bits that index the
attraction-memory sets (paper Figures 4 and 6).

* Without coloring (L0/L1/L2-TLB), frames are handed out sequentially:
  ``pfn = 0, 1, 2, …`` — homes cycle round robin through the nodes and
  colors cycle uniformly through the global sets, which is the paper's
  baseline ("round robin is a good strategy for the COMA").
* With coloring (L3-TLB), the frame must carry the virtual page's color:
  ``pfn ≡ color (mod G)``, so allocation keeps one counter per color and
  hands out ``pfn = counter*G + color``.  When ``G >= P`` this forces the
  home node to ``color mod P`` — the same home V-COMA would use — which
  is the regime the paper analyzes.
"""

from __future__ import annotations

from typing import Dict

from repro.common.address import AddressLayout
from repro.common.errors import CapacityError, ConfigurationError


class FrameAllocator:
    """Round-robin physical frame allocator with optional page coloring.

    ``frames_per_node`` is each node's attraction-memory capacity in
    pages; the machine-wide frame pool is ``nodes * frames_per_node``.
    """

    def __init__(self, layout: AddressLayout, frames_per_node: int, coloring: bool = False) -> None:
        if frames_per_node <= 0:
            raise ConfigurationError("frames_per_node must be positive")
        if frames_per_node % layout.global_page_sets:
            raise ConfigurationError(
                "frames_per_node must be a multiple of the number of page colors"
            )
        self.layout = layout
        self.nodes = layout.nodes
        self.frames_per_node = frames_per_node
        self.coloring = coloring
        self._sequential_cursor = 0
        self._color_cursor: Dict[int, int] = {}
        self._free: Dict[int, None] = {}  # freed PFNs, insertion-ordered
        self._allocated: Dict[int, int] = {}  # pfn -> vpn

    # ------------------------------------------------------------------
    @property
    def total_frames(self) -> int:
        return self.nodes * self.frames_per_node

    @property
    def frames_per_color(self) -> int:
        return self.total_frames // self.layout.global_page_sets

    @property
    def allocated_frames(self) -> int:
        return len(self._allocated)

    # ------------------------------------------------------------------
    def allocate(self, vpn: int, color: int = None) -> int:
        """Allocate a frame for ``vpn``; returns the PFN.

        With coloring enabled the frame color defaults to the virtual
        page's color; passing ``color`` overrides it (used by tests and
        by OS-policy experiments).
        """
        if self.coloring and color is None:
            color = self.layout.global_page_set_of_vpn(vpn)
        if color is None:
            pfn = self._allocate_sequential(vpn)
        else:
            pfn = self._allocate_colored(vpn, color)
        self._allocated[pfn] = vpn
        return pfn

    def _allocate_sequential(self, vpn: int) -> int:
        for pfn in self._free:
            del self._free[pfn]
            return pfn
        if self._sequential_cursor >= self.total_frames:
            raise CapacityError(f"physical memory exhausted allocating VPN {vpn:#x}")
        pfn = self._sequential_cursor
        self._sequential_cursor += 1
        return pfn

    def _allocate_colored(self, vpn: int, color: int) -> int:
        colors = self.layout.global_page_sets
        if not 0 <= color < colors:
            raise ConfigurationError(f"color {color} out of range 0..{colors - 1}")
        for pfn in self._free:
            if pfn % colors == color:
                del self._free[pfn]
                return pfn
        slot = self._color_cursor.get(color, 0)
        if slot >= self.frames_per_color:
            raise CapacityError(
                f"no frame of color {color} left for VPN {vpn:#x} "
                f"(global set full: {self.frames_per_color} frames)"
            )
        self._color_cursor[color] = slot + 1
        return slot * colors + color

    # ------------------------------------------------------------------
    def home_of(self, pfn: int) -> int:
        """Home node of a physical page: low ``p`` bits of the PFN."""
        return pfn & (self.nodes - 1)

    def color_of(self, pfn: int) -> int:
        return pfn & (self.layout.global_page_sets - 1)

    def physical_address(self, pfn: int, page_offset: int) -> int:
        return (pfn << self.layout.page_bits) | page_offset

    def free(self, pfn: int) -> None:
        """Release a frame back to the pool (page-out path)."""
        if pfn not in self._allocated:
            raise KeyError(f"PFN {pfn:#x} is not allocated")
        del self._allocated[pfn]
        self._free[pfn] = None

    def vpn_of(self, pfn: int) -> int:
        return self._allocated[pfn]
