"""Per-home page tables (paper Sections 4.2-4.3).

In V-COMA each node hosts, in private memory, the page table for the
pages it is home to.  The table is *set-associative with the global page
set as the set*: all pages in one global page set compete for the
``P * K`` page slots of that set.  A hit yields the page's directory-page
base address; the protocol engine walks this table on DLB misses.

For the physical schemes the same structure maps virtual pages to
physical frames (the payload is just an integer either way).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.common.errors import TranslationFault


class Protection(enum.IntFlag):
    """Page protection bits (paper Section 2.2.4)."""

    NONE = 0
    READ = 1
    WRITE = 2
    EXECUTE = 4
    READ_WRITE = READ | WRITE


@dataclass
class PageTableEntry:
    """One virtual page's mapping and metadata.

    ``payload`` is the directory-page base (V-COMA / L3) or the physical
    frame number (physical schemes).
    """

    vpn: int
    payload: int
    protection: Protection = Protection.READ_WRITE
    referenced: bool = False
    modified: bool = False


class HomePageTable:
    """The page table of one home node, organized by global page set."""

    def __init__(self, node: int, global_page_sets: int) -> None:
        if global_page_sets <= 0:
            raise ValueError("global_page_sets must be positive")
        self.node = node
        self.global_page_sets = global_page_sets
        self._sets: Dict[int, Dict[int, PageTableEntry]] = {}
        self.walks = 0

    def _gps(self, vpn: int) -> int:
        return vpn & (self.global_page_sets - 1)

    def insert(self, entry: PageTableEntry) -> None:
        """Install a mapping (page-fault service path)."""
        bucket = self._sets.setdefault(self._gps(entry.vpn), {})
        bucket[entry.vpn] = entry

    def remove(self, vpn: int) -> PageTableEntry:
        """Unmap a page (page-out path); raises ``KeyError`` if absent."""
        bucket = self._sets.get(self._gps(vpn), {})
        entry = bucket.pop(vpn, None)
        if entry is None:
            raise KeyError(f"node {self.node}: VPN {vpn:#x} not mapped")
        return entry

    def lookup(self, vpn: int) -> Optional[PageTableEntry]:
        """Probe without fault semantics; counts a table walk."""
        self.walks += 1
        return self._sets.get(self._gps(vpn), {}).get(vpn)

    def walk(self, vpn: int) -> PageTableEntry:
        """Full walk; raises :class:`TranslationFault` when unmapped
        (the page-fault case — never expected with preloaded data)."""
        entry = self.lookup(vpn)
        if entry is None:
            raise TranslationFault(
                f"page fault at home node {self.node}: VPN {vpn:#x} has no mapping"
            )
        return entry

    def resolve(self, vpn: int) -> int:
        """Resolver hook for the DLB: VPN -> payload."""
        return self.walk(vpn).payload

    def contains(self, vpn: int) -> bool:
        return vpn in self._sets.get(self._gps(vpn), {})

    def entries(self) -> Iterator[PageTableEntry]:
        for bucket in self._sets.values():
            yield from bucket.values()

    def entries_in_set(self, gps: int) -> Iterator[PageTableEntry]:
        yield from self._sets.get(gps, {}).values()

    def set_occupancy(self, gps: int) -> int:
        return len(self._sets.get(gps, {}))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._sets.values())

    def clear_reference_bits(self) -> None:
        """Periodic reference-bit reset (done by the protocol engine in
        V-COMA, paper Section 4.1)."""
        for entry in self.entries():
            entry.referenced = False
