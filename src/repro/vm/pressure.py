"""Global-set memory-pressure accounting (paper Sections 3.4 and 6).

*Memory pressure* of a global page set is the number of occupied page
slots divided by the set's capacity (``P * K`` slots).  When pressure
approaches 1, replication in the set is inhibited and the page daemon
must start swapping.  V-COMA has no control over which global set a
virtual page lands in, so the paper's Figure 11 plots the pressure
profile across the global page sets for every benchmark to show that
virtual-layout locality spreads pressure almost uniformly.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import CapacityError, ConfigurationError


class PressureTracker:
    """Tracks page-slot occupancy per global page set."""

    def __init__(self, global_page_sets: int, slots_per_set: int) -> None:
        if global_page_sets <= 0 or slots_per_set <= 0:
            raise ConfigurationError("pressure tracker geometry must be positive")
        self.global_page_sets = global_page_sets
        self.slots_per_set = slots_per_set
        self._occupied: List[int] = [0] * global_page_sets
        self.peak: List[int] = [0] * global_page_sets

    def set_of_vpn(self, vpn: int) -> int:
        return vpn & (self.global_page_sets - 1)

    def allocate_page(self, gps: int, count: int = 1) -> None:
        """Occupy ``count`` page slots in a global set.

        Raises :class:`CapacityError` when the set would exceed its
        ``P*K`` capacity — in a real system the page daemon swaps
        instead (see :class:`repro.vm.swap.SwapDaemon`).
        """
        if not 0 <= gps < self.global_page_sets:
            raise ConfigurationError(f"global page set {gps} out of range")
        if self._occupied[gps] + count > self.slots_per_set:
            raise CapacityError(
                f"global page set {gps} overflows: "
                f"{self._occupied[gps]}+{count} > {self.slots_per_set} slots"
            )
        self._occupied[gps] += count
        if self._occupied[gps] > self.peak[gps]:
            self.peak[gps] = self._occupied[gps]

    def free_page(self, gps: int, count: int = 1) -> None:
        if self._occupied[gps] < count:
            raise ValueError(f"global page set {gps}: freeing more than occupied")
        self._occupied[gps] -= count

    def occupancy(self, gps: int) -> int:
        return self._occupied[gps]

    def pressure(self, gps: int) -> float:
        return self._occupied[gps] / self.slots_per_set

    def profile(self) -> List[float]:
        """Pressure of every global page set (Figure 11's x-axis order)."""
        return [occ / self.slots_per_set for occ in self._occupied]

    def peak_profile(self) -> List[float]:
        return [occ / self.slots_per_set for occ in self.peak]

    def max_pressure(self) -> float:
        return max(self.profile())

    def mean_pressure(self) -> float:
        profile = self.profile()
        return sum(profile) / len(profile)

    def imbalance(self) -> float:
        """Max/mean pressure ratio — 1.0 is perfectly uniform."""
        mean = self.mean_pressure()
        return self.max_pressure() / mean if mean else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "mean": self.mean_pressure(),
            "max": self.max_pressure(),
            "min": min(self.profile()),
            "imbalance": self.imbalance(),
        }
