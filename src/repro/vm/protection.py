"""Page-protection changes and translation-coherence costs.

The paper motivates V-COMA partly through the **TLB consistency
problem**: per-node TLBs replicate translations, so any mapping or
protection change must interrupt every processor that might cache the
entry (a TLB shootdown).  V-COMA keeps translations only at the home
node, so a change touches one DLB plus the nodes actually holding blocks
of the page (paper Section 4.3):

    "If a processor wants to change the protection bits of a page, it
    sends a message to the home node which hosts the page.  The PE at
    the home node changes the bits in the page table and in the DLB.
    Then, according to the directory entries, it sends update messages
    to the nodes holding the blocks of that page."

:class:`ProtectionManager` implements both flows over a machine and
reports their cost, so the consistency advantage is measurable (see
``benchmarks/bench_ablation_shootdown.py``).
"""

from __future__ import annotations

from typing import Set

from repro.common.stats import Counters
from repro.core.schemes import Scheme
from repro.vm.page_table import Protection

#: Cycles for a processor to take an inter-processor interrupt, flush
#: the TLB entry, and acknowledge — a conservative, literature-typical
#: shootdown cost per interrupted processor.
SHOOTDOWN_INTERRUPT_CYCLES = 200


class ProtectionManager:
    """Executes protection/mapping changes against a machine.

    The manager is scheme-aware: for per-node-TLB schemes every
    processor must be interrupted (the initiator cannot know which TLBs
    cache the entry); for V-COMA only the home's page table/DLB entry
    changes, plus update messages to the nodes the directory lists as
    holding blocks of the page.
    """

    def __init__(self, machine) -> None:
        self.machine = machine
        self.counters = Counters()

    # ------------------------------------------------------------------
    def change_protection(self, vpn: int, protection: Protection) -> int:
        """Change one page's protection bits; returns the cycle cost."""
        machine = self.machine
        home = machine.layout.home_node_of_vpn(vpn)
        entry = machine.page_tables[home].walk(vpn)
        entry.protection = protection
        self.counters.add("protection_changes")
        if machine.scheme is Scheme.V_COMA:
            return self._vcoma_update_cost(vpn, home)
        return self._shootdown_cost()

    def unmap_page(self, vpn: int) -> int:
        """Demap a page (its cached translations must die everywhere);
        returns the cycle cost.  The page itself stays resident — this
        models remap-type operations, not swap-out."""
        self.counters.add("unmaps")
        if self.machine.scheme is Scheme.V_COMA:
            home = self.machine.layout.home_node_of_vpn(vpn)
            return self._vcoma_update_cost(vpn, home)
        return self._shootdown_cost()

    # ------------------------------------------------------------------
    def _shootdown_cost(self) -> int:
        """Classic TLB shootdown: interrupt every other processor, wait
        for all acknowledgements (overlapped interrupts, serial ack
        collection on the initiator)."""
        params = self.machine.params
        others = params.nodes - 1
        self.counters.add("shootdown_interrupts", others)
        # Interrupt request out, flush + ack back, per processor; the
        # interrupts overlap but each ack must be collected.
        return (
            params.request_msg_cycles  # broadcast request
            + SHOOTDOWN_INTERRUPT_CYCLES  # slowest handler
            + others * params.request_msg_cycles  # ack collection
        )

    def _vcoma_update_cost(self, vpn: int, home: int) -> int:
        """V-COMA: one home-side update plus messages to the nodes the
        directory says hold blocks of the page."""
        machine = self.machine
        params = machine.params
        holders = self._page_holders(vpn, home)
        holders.discard(home)
        self.counters.add("dlb_updates")
        self.counters.add("holder_updates", len(holders))
        cost = params.request_msg_cycles + params.directory_lookup_latency
        if holders:
            # Overlapped multicast of update messages + one ack round.
            cost += 2 * params.request_msg_cycles
        return cost

    def _page_holders(self, vpn: int, home: int) -> Set[int]:
        machine = self.machine
        layout = machine.layout
        base = vpn << layout.page_bits
        block = machine.params.am_block
        holders: Set[int] = set()
        for i in range(machine.params.blocks_per_page):
            entry = machine.engine.directories[home].peek(base + i * block)
            if entry is not None:
                holders |= entry.holders
        return holders

    # ------------------------------------------------------------------
    def mapping_change_cost(self) -> int:
        """Cost of one generic mapping change under this machine's
        scheme — the quantity whose scaling with node count motivates
        the paper (per-node TLBs get worse with P; V-COMA does not)."""
        if self.machine.scheme is Scheme.V_COMA:
            params = self.machine.params
            return params.request_msg_cycles + params.directory_lookup_latency
        return self._shootdown_cost()
