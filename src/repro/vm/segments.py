"""Segmented global virtual address space (paper Section 2.2.1).

The paper assumes a PowerPC-like segmented memory system in which
synonyms are neither needed nor allowed: every piece of data has exactly
one global virtual address, and sharing happens at segment granularity.
:class:`SegmentedAddressSpace` hands out non-overlapping segments with
caller-controlled alignment — alignment is load-bearing for the
reproduction because the RAYTRACE experiment (Figure 10, DLB/8/V2) turns
on a 32 KB vs 4 KB alignment of per-node private stacks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.common.errors import ConfigurationError


class SegmentKind(enum.Enum):
    """How a segment is used; workloads tag segments so analyses can
    attribute traffic."""

    SHARED = "shared"
    PRIVATE = "private"
    CODE = "code"


@dataclass(frozen=True)
class Segment:
    """A naturally contiguous region of the global virtual space."""

    name: str
    base: int
    size: int
    kind: SegmentKind = SegmentKind.SHARED
    owner: Optional[int] = None  # node id for PRIVATE segments

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"segment {self.name}: size must be positive")
        if self.base < 0:
            raise ConfigurationError(f"segment {self.name}: negative base")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def address(self, offset: int) -> int:
        """Byte address at ``offset`` into the segment (bounds-checked)."""
        if not 0 <= offset < self.size:
            raise IndexError(
                f"segment {self.name}: offset {offset} outside size {self.size}"
            )
        return self.base + offset

    def pages(self, page_size: int) -> Iterator[int]:
        """Virtual page numbers the segment touches."""
        first = self.base // page_size
        last = (self.end - 1) // page_size
        return iter(range(first, last + 1))

    def page_count(self, page_size: int) -> int:
        first = self.base // page_size
        last = (self.end - 1) // page_size
        return last - first + 1


class SegmentedAddressSpace:
    """Allocator of non-overlapping segments in one global space.

    Segments are allocated upward from ``base``; each allocation is
    aligned to ``alignment`` (default: page size), reproducing the
    virtual-layout effects the paper discusses in Sections 5.3 and 6.
    """

    def __init__(self, page_size: int, base: int = 1 << 32) -> None:
        if page_size <= 0 or page_size & (page_size - 1):
            raise ConfigurationError("page_size must be a positive power of two")
        self.page_size = page_size
        self._cursor = self._align(base, page_size)
        self._segments: Dict[str, Segment] = {}

    @staticmethod
    def _align(value: int, alignment: int) -> int:
        return (value + alignment - 1) & ~(alignment - 1)

    def allocate(
        self,
        name: str,
        size: int,
        kind: SegmentKind = SegmentKind.SHARED,
        owner: Optional[int] = None,
        alignment: Optional[int] = None,
        offset: int = 0,
    ) -> Segment:
        """Carve a new segment out of the space.

        ``alignment`` must be a power of two ≥ the page size; it aligns
        the segment *base* (RAYTRACE's 32 KB padding alignment is
        expressed this way).  ``offset`` displaces the base by that many
        bytes *after* alignment (a structure field's position inside an
        aligned allocation); it must be page-aligned.
        """
        if name in self._segments:
            raise ConfigurationError(f"segment {name!r} already allocated")
        alignment = alignment or self.page_size
        if alignment < self.page_size or alignment & (alignment - 1):
            raise ConfigurationError(
                f"alignment {alignment} must be a power-of-two multiple of the page size"
            )
        if offset < 0 or offset % self.page_size:
            raise ConfigurationError("offset must be a non-negative page multiple")
        base = self._align(self._cursor, alignment) + offset
        segment = Segment(name=name, base=base, size=size, kind=kind, owner=owner)
        self._segments[name] = segment
        self._cursor = self._align(segment.end, self.page_size)
        return segment

    def __getitem__(self, name: str) -> Segment:
        return self._segments[name]

    def __contains__(self, name: str) -> bool:
        return name in self._segments

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments.values())

    def __len__(self) -> int:
        return len(self._segments)

    def segment_of(self, addr: int) -> Optional[Segment]:
        """The segment containing ``addr`` (linear scan; segments are
        few)."""
        for segment in self._segments.values():
            if segment.contains(addr):
                return segment
        return None

    def total_bytes(self) -> int:
        return sum(s.size for s in self._segments.values())

    def total_pages(self) -> int:
        return sum(s.page_count(self.page_size) for s in self._segments.values())
