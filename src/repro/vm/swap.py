"""Page daemon / swap-out path (paper Section 4.3) — optional extension.

On a page fault, "a resident page may have to be swapped out by the page
daemon if the memory pressure of the page's global set is higher than a
threshold".  The paper preloads its data sets and never exercises this
path; we implement it anyway so the pressure-threshold behaviour of
Section 4.3 is testable and so oversubscribed workloads degrade
gracefully instead of dying with :class:`CapacityError`.

The daemon approximates LRU with the page-table reference bits (which the
protocol engine periodically clears): victims are chosen
not-referenced-first, then FIFO by residence order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.errors import CapacityError
from repro.vm.page_table import HomePageTable
from repro.vm.pressure import PressureTracker

#: Callback invoked to actually evict a page: flush its blocks from every
#: attraction memory, invalidate DLB entries, reclaim its directory page.
EvictHook = Callable[[int], None]


class SwapDaemon:
    """Keeps every global page set's pressure under a threshold."""

    def __init__(
        self,
        pressure: PressureTracker,
        page_tables: List[HomePageTable],
        evict_hook: EvictHook,
        threshold: float = 0.9,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.pressure = pressure
        self.page_tables = page_tables
        self.evict_hook = evict_hook
        self.threshold = threshold
        self.swapped_out = 0
        self._residence_order: Dict[int, int] = {}
        self._arrival = 0

    def note_page_in(self, vpn: int) -> None:
        """Record residence order for FIFO tie-breaking."""
        self._residence_order[vpn] = self._arrival
        self._arrival += 1

    def note_page_out(self, vpn: int) -> None:
        self._residence_order.pop(vpn, None)

    # ------------------------------------------------------------------
    def over_threshold(self, gps: int) -> bool:
        return self.pressure.pressure(gps) > self.threshold

    def make_room(self, gps: int, force: bool = False, exclude=()) -> Optional[int]:
        """Swap out one page of global set ``gps``.

        Normally acts only above the threshold; ``force`` swaps
        unconditionally (the protocol's injection-overflow path).
        ``exclude`` lists VPNs that must not be chosen (pages involved
        in the transaction that needs the room).
        Returns the evicted VPN (or None if under threshold), and raises
        :class:`CapacityError` when no victim exists (every page of the
        set is wired — cannot happen with real workloads).
        """
        if not force and not self.over_threshold(gps):
            return None
        victim = self._choose_victim(gps, exclude)
        if victim is None:
            raise CapacityError(f"global set {gps} needs room but has no victim")
        self.evict_hook(victim)
        self.note_page_out(victim)
        self.pressure.free_page(gps)
        self.swapped_out += 1
        return victim

    def _choose_victim(self, gps: int, exclude=()) -> Optional[int]:
        candidates = []
        excluded = set(exclude)
        for table in self.page_tables:
            for entry in table.entries_in_set(gps):
                if entry.vpn in excluded:
                    continue
                order = self._residence_order.get(entry.vpn, 0)
                candidates.append((entry.referenced, order, entry.vpn))
        if not candidates:
            return None
        # Not-referenced pages first, then oldest residence.
        candidates.sort()
        return candidates[0][2]
