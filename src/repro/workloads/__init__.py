"""SPLASH-2-shaped synthetic workloads (paper Table 1).

The paper drives its simulator with six SPLASH-2 programs.  We cannot
execute SPARC binaries, so each workload here is a *generator* that
emits, per node, a deterministic stream of virtual-address references
with the same page-granularity locality and sharing structure as the
original program (see DESIGN.md §2 for the substitution argument):

========== ==========================================================
RADIX      permutation writes into a huge shared output array,
           histogram phase, very write-heavy, no significant TLB
           working set
FFT        blocked all-to-all transpose between matrix halves
FMM        read-mostly tree walk (Zipf) + owned particle updates
OCEAN      near-neighbour grid sweeps with boundary sharing
RAYTRACE   read-mostly shared scene + per-node ray stacks whose
           padding alignment is configurable (32 KB vs 4 KB — the
           paper's DLB/8/V2 experiment)
BARNES     lock-guarded tree build + read-shared force computation
========== ==========================================================

All workloads are registered in :data:`WORKLOADS` by lower-case name.
"""

from repro.workloads.base import SegmentSpec, Workload, WorkloadContext
from repro.workloads.radix import RadixWorkload
from repro.workloads.fft import FFTWorkload
from repro.workloads.fmm import FMMWorkload
from repro.workloads.ocean import OceanWorkload
from repro.workloads.raytrace import RaytraceWorkload
from repro.workloads.barnes import BarnesWorkload
from repro.workloads.custom import CustomWorkload
from repro.workloads.trace import TraceWorkload, record_trace

WORKLOADS = {
    "radix": RadixWorkload,
    "fft": FFTWorkload,
    "fmm": FMMWorkload,
    "ocean": OceanWorkload,
    "raytrace": RaytraceWorkload,
    "barnes": BarnesWorkload,
}

#: Paper presentation order (Tables 2-4).
PAPER_ORDER = ("radix", "fft", "fmm", "raytrace", "barnes", "ocean")


def make_workload(name: str, **config) -> Workload:
    """Instantiate a registered workload by name."""
    try:
        factory = WORKLOADS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    return factory(**config)


__all__ = [
    "BarnesWorkload",
    "CustomWorkload",
    "FFTWorkload",
    "FMMWorkload",
    "OceanWorkload",
    "PAPER_ORDER",
    "RadixWorkload",
    "RaytraceWorkload",
    "SegmentSpec",
    "TraceWorkload",
    "WORKLOADS",
    "Workload",
    "WorkloadContext",
    "make_workload",
    "record_trace",
]
