"""BARNES-like workload (paper Table 1: 16384 particles, 3.9 MB shared).

Barnes-Hut alternates a lock-guarded octree *build* (concurrent inserts
touch and write shared tree cells) with a read-dominated *force*
computation (each body walks the tree, upper levels hot) and an *update*
phase over the node's own bodies.  The shared data set is the smallest
of the six benchmarks and cache filtering works well, so the paper sees
low miss rates everywhere below L0 and an essentially-zero DLB rate.

Structure per time step: build (locked writes into the tree) → barrier
→ force (skewed tree reads per body) → barrier → update own bodies →
barrier.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.common.params import MachineParams
from repro.system.refs import READ, WRITE
from repro.workloads.base import Event, SegmentSpec, Workload, WorkloadContext


class BarnesWorkload(Workload):
    """Lock-guarded tree build + skewed read-shared force phase."""

    name = "barnes"
    think_cycles = 8

    def __init__(
        self,
        tree_fraction: float = 0.08,
        bodies_fraction: float = 0.08,
        timesteps: int = 2,
        walk_reads_per_body: int = 12,
        tree_descend: float = 0.75,
        build_locks: int = 8,
        intensity: float = 1.0,
    ) -> None:
        self.tree_fraction = tree_fraction
        self.bodies_fraction = bodies_fraction
        self.timesteps = timesteps
        self.walk_reads_per_body = walk_reads_per_body
        self.tree_descend = tree_descend
        self.build_locks = build_locks
        self.intensity = intensity

    def segment_specs(self, params: MachineParams) -> List[SegmentSpec]:
        return [
            SegmentSpec("tree", self.scaled(params, self.tree_fraction)),
            SegmentSpec("bodies", self.scaled(params, self.bodies_fraction)),
            SegmentSpec("locks", max(params.page_size, self.build_locks * 64)),
        ]

    def bodies_per_node(self, ctx: WorkloadContext) -> int:
        body_bytes = 96
        total = ctx.segment("bodies").size // body_bytes
        return max(8, int(total // ctx.params.nodes * self.intensity))

    def node_stream(self, node: int, ctx: WorkloadContext) -> Iterator[Event]:
        params = ctx.params
        tree = ctx.segment("tree")
        bodies = ctx.segment("bodies")
        locks = ctx.segment("locks")
        rng = ctx.rng(node)
        body_bytes = 96
        count = self.bodies_per_node(ctx)
        partition = bodies.size // params.nodes
        my_base = node * partition
        barrier_id = 0

        for _ in range(self.timesteps):
            # Build: insert a subset of own bodies into the shared tree
            # under per-subtree locks (real write sharing + contention).
            offset = my_base
            inserts = self.tree_walk_accesses(
                tree,
                max(1, count // 4),
                rng,
                op=WRITE,
                granularity=64,
                descend=self.tree_descend,
                cluster_bytes=params.page_size,
            )
            for _, write_addr in inserts:
                yield READ, bodies.address(offset)
                offset = my_base + (offset - my_base + body_bytes) % partition
                cell = (write_addr - tree.base) // 64
                lock_word = locks.address((cell % self.build_locks) * 64)
                yield self.lock(lock_word)
                yield WRITE, write_addr
                yield self.unlock(lock_word)
            yield self.barrier(barrier_id)
            barrier_id += 1

            # Force computation: every body walks the tree read-only.
            offset = my_base
            for _ in range(count):
                yield READ, bodies.address(offset)
                for event in self.tree_walk_accesses(
                    tree, self.walk_reads_per_body, rng, op=READ,
                    granularity=64, descend=self.tree_descend,
                    cluster_bytes=params.page_size,
                ):
                    yield event
                offset = my_base + (offset - my_base + body_bytes) % partition
            yield self.barrier(barrier_id)
            barrier_id += 1

            # Update own bodies (sequential read-modify-write).
            offset = my_base
            for _ in range(count):
                addr = bodies.address(offset)
                yield READ, addr
                yield WRITE, addr
                offset = my_base + (offset - my_base + body_bytes) % partition
            yield self.barrier(barrier_id)
            barrier_id += 1
