"""Workload framework: segment declarations + per-node streams.

A :class:`Workload` declares the virtual segments it needs
(:meth:`Workload.segment_specs`) and generates one reference stream per
node (:meth:`Workload.node_stream`).  The machine allocates the segments
in a :class:`~repro.vm.segments.SegmentedAddressSpace`, preloads every
page, and hands each node's stream to the simulator.

Streams are deterministic functions of ``(machine seed, workload name,
node)``; re-running a configuration reproduces it bit-for-bit.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.common.address import AddressLayout
from repro.common.params import MachineParams
from repro.common.rng import make_rng
from repro.system.refs import BARRIER, LOCK, READ, UNLOCK
from repro.vm.segments import Segment, SegmentKind

#: One reference-stream event: ``(op, value)``.
Event = Tuple[int, int]


@dataclass(frozen=True)
class SegmentSpec:
    """A segment request, resolved into a real Segment by the machine."""

    name: str
    size: int
    kind: SegmentKind = SegmentKind.SHARED
    owner: Optional[int] = None
    alignment: Optional[int] = None
    offset: int = 0


class WorkloadContext:
    """Everything a stream generator needs at run time."""

    def __init__(
        self,
        params: MachineParams,
        layout: AddressLayout,
        segments: Dict[str, Segment],
        seed: int,
        workload_name: str,
    ) -> None:
        self.params = params
        self.layout = layout
        self.segments = segments
        self.seed = seed
        self.workload_name = workload_name

    def segment(self, name: str) -> Segment:
        return self.segments[name]

    def rng(self, node: int, tag: str = "stream") -> random.Random:
        """A deterministic per-node, per-purpose random stream."""
        return make_rng(self.seed, "workload", self.workload_name, tag, node)


class Workload(abc.ABC):
    """Base class for reference-stream generators.

    Concrete workloads set :attr:`name`, declare segments, and yield
    events.  ``think_cycles`` is the busy time charged per memory
    reference (instructions between shared accesses).
    """

    name: str = "workload"
    think_cycles: int = 4

    @abc.abstractmethod
    def segment_specs(self, params: MachineParams) -> List[SegmentSpec]:
        """Segments to allocate before the run."""

    @abc.abstractmethod
    def node_stream(self, node: int, ctx: WorkloadContext) -> Iterator[Event]:
        """The node's reference stream (must be regenerable)."""

    # ------------------------------------------------------------------
    # shared stream-building helpers
    # ------------------------------------------------------------------
    @staticmethod
    def sequential_sweep(
        segment: Segment,
        start: int,
        length: int,
        stride: int,
        op: int = READ,
    ) -> Iterator[Event]:
        """Walk ``length`` elements of ``stride`` bytes from ``start``
        (segment offset), wrapping inside the segment."""
        size = segment.size
        offset = start % size
        for _ in range(length):
            yield op, segment.base + offset
            offset = (offset + stride) % size

    @staticmethod
    def random_accesses(
        segment: Segment,
        count: int,
        rng: random.Random,
        op: int = READ,
        granularity: int = 8,
    ) -> Iterator[Event]:
        """Uniform random touches at ``granularity``-byte alignment."""
        slots = segment.size // granularity
        for _ in range(count):
            yield op, segment.base + rng.randrange(slots) * granularity

    @staticmethod
    def zipf_accesses(
        segment: Segment,
        count: int,
        rng: random.Random,
        op: int = READ,
        granularity: int = 64,
        skew: float = 3.0,
        cluster_bytes: Optional[int] = None,
    ) -> Iterator[Event]:
        """Skewed touches — hot head, long tail (tree/scene traversal
        locality).  ``slot = slots * u^skew`` with uniform ``u``: larger
        ``skew`` concentrates accesses on a hot subset; ``skew=1`` is
        uniform.

        ``cluster_bytes`` scatters the hot subset over the whole segment
        in clusters of that many bytes (typically one page), the way
        heap-allocated structures really land on many different pages —
        page-level skew is preserved, but the hot pages are *not* the
        contiguous low pages (which would be unrealistically kind to
        direct-mapped TLBs).
        """
        slots = max(1, segment.size // granularity)
        per_cluster = 1
        clusters = slots
        if cluster_bytes is not None:
            per_cluster = max(1, cluster_bytes // granularity)
            clusters = max(1, slots // per_cluster)
        for _ in range(count):
            slot = int(slots * (rng.random() ** skew))
            if slot >= slots:
                slot = slots - 1
            if cluster_bytes is not None:
                cluster, within = divmod(slot, per_cluster)
                # Knuth multiplicative scatter of the cluster index.
                cluster = (cluster * 2654435761 + 40503) % clusters
                slot = cluster * per_cluster + within
            yield op, segment.base + slot * granularity

    @staticmethod
    def tree_walk_accesses(
        segment: Segment,
        count: int,
        rng: random.Random,
        op: int = READ,
        granularity: int = 64,
        descend: float = 0.7,
        cluster_bytes: Optional[int] = None,
    ) -> Iterator[Event]:
        """Touches distributed like tree-traversal steps.

        Levels follow a geometric distribution (every walk passes the
        root; deeper cells are exponentially colder): level ``l`` has
        probability ``(1-descend)*descend^l``.  Cells are laid out
        heap-style (level ``l`` occupies slots ``2^l-1 .. 2^(l+1)-2``)
        and optionally scattered in ``cluster_bytes`` units so deep
        cells land on many distinct pages.  This is what makes a tiny
        TLB serviceable for FMM/BARNES byte-wise (the upper levels are a
        couple of hot pages) while large level-crossing strides defeat
        it — the paper's FMM signature.
        """
        slots = max(1, segment.size // granularity)
        depth = max(1, slots.bit_length() - 1)
        per_cluster = 1
        clusters = slots
        if cluster_bytes is not None:
            per_cluster = max(1, cluster_bytes // granularity)
            clusters = max(1, slots // per_cluster)
        for _ in range(count):
            level = 0
            while level < depth - 1 and rng.random() < descend:
                level += 1
            first = (1 << level) - 1
            width = min(1 << level, slots - first)
            slot = first + (rng.randrange(width) if width > 1 else 0)
            if cluster_bytes is not None:
                cluster, within = divmod(slot, per_cluster)
                cluster = (cluster * 2654435761 + 40503) % clusters
                slot = cluster * per_cluster + within
            yield op, segment.base + (slot % slots) * granularity

    @staticmethod
    def barrier(barrier_id: int) -> Event:
        return BARRIER, barrier_id

    @staticmethod
    def lock(addr: int) -> Event:
        return LOCK, addr

    @staticmethod
    def unlock(addr: int) -> Event:
        return UNLOCK, addr

    # ------------------------------------------------------------------
    def scaled(self, params: MachineParams, fraction: float) -> int:
        """Bytes amounting to ``fraction`` of total AM capacity — the
        standard way workloads size their data to the machine (the
        paper's data sets fit in the combined attraction memory)."""
        return max(params.page_size, int(params.am_size * params.nodes * fraction))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def interleave(streams: Iterable[Iterator[Event]]) -> Iterator[Event]:
    """Round-robin merge of several event streams (phases that overlap
    work on several structures)."""
    active = [iter(s) for s in streams]
    while active:
        still = []
        for stream in active:
            item = next(stream, None)
            if item is not None:
                yield item
                still.append(stream)
        active = still
