"""User-defined workloads: plug your own reference streams into the
machine.

Downstream users rarely want the six SPLASH-2 clones; they want to ask
"what would *my* access pattern cost under each translation scheme?".
:class:`CustomWorkload` takes segment declarations plus a stream factory
(a callable ``(node, ctx) -> iterator of (op, value)``) and behaves like
any built-in workload — see ``examples/custom_workload.py``.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Sequence

from repro.common.params import MachineParams
from repro.workloads.base import Event, SegmentSpec, Workload, WorkloadContext

#: Stream factory signature: called once per node per run.
StreamFactory = Callable[[int, WorkloadContext], Iterator[Event]]


class CustomWorkload(Workload):
    """A workload assembled from user-provided parts.

    Parameters
    ----------
    segments:
        Segment declarations (sizes may be computed by the caller from
        :class:`~repro.common.params.MachineParams` beforehand).
    stream_factory:
        ``(node, ctx) -> iterator of (op, value)`` producing each node's
        reference stream.  Must be deterministic and restartable (it is
        invoked once per run).
    """

    def __init__(
        self,
        segments: Sequence[SegmentSpec],
        stream_factory: StreamFactory,
        name: str = "custom",
        think_cycles: int = 4,
    ) -> None:
        if not segments:
            raise ValueError("a workload needs at least one segment")
        self._segments = list(segments)
        self._stream_factory = stream_factory
        self.name = name
        self.think_cycles = think_cycles

    def segment_specs(self, params: MachineParams) -> List[SegmentSpec]:
        return list(self._segments)

    def node_stream(self, node: int, ctx: WorkloadContext) -> Iterator[Event]:
        return self._stream_factory(node, ctx)
