"""FFT-like workload (paper Table 1: ``-m20 -t``, 51 MB shared).

The SPLASH-2 six-step FFT is dominated by blocked matrix transposes.
As in the original, each node *reads* the column slice it needs out of
every other node's row band and *writes* the transposed data into its
own band.  Two consequences drive the paper's FFT results:

* each source row is read by every node (each takes its own column
  slice, and slices share pages), so the home DLB loads a page's
  translation once for all readers — the sharing/prefetching effects;
* from one node's view the reads stride a full row between consecutive
  pages, so the per-node TLB working set is the whole matrix; and the
  local writes produce heavy SLC writeback traffic with poor temporal
  locality — FFT (with OCEAN) is where the paper's L2-TLB curve crosses
  above L0-TLB once writebacks access the TLB.

Structure per stage: local 1-D FFT over the node's rows (sequential
read/write, good locality) → barrier → transpose (read remote column
slices, write the own band) → barrier.
"""

from __future__ import annotations

import math
from typing import Iterator, List

from repro.common.params import MachineParams
from repro.system.refs import READ, WRITE
from repro.workloads.base import Event, SegmentSpec, Workload, WorkloadContext


class FFTWorkload(Workload):
    """Blocked all-to-all matrix transpose + local FFT phases."""

    name = "fft"
    think_cycles = 6  # floating-point butterflies between accesses

    def __init__(
        self,
        element_bytes: int = 8,
        matrix_fraction: float = 0.125,
        stages: int = 2,
        intensity: float = 1.0,
    ) -> None:
        self.element_bytes = element_bytes
        self.matrix_fraction = matrix_fraction
        self.stages = stages
        self.intensity = intensity

    def segment_specs(self, params: MachineParams) -> List[SegmentSpec]:
        matrix_bytes = self.scaled(params, self.matrix_fraction)
        # Shape the matrix as close to square as the element count
        # allows; dimension n is a power of two divisible by the node
        # count so every node owns n/P whole rows.
        return [
            SegmentSpec("matrix_a", matrix_bytes),
            SegmentSpec("matrix_b", matrix_bytes),
        ]

    def _dimension(self, ctx: WorkloadContext) -> int:
        elements = ctx.segment("matrix_a").size // self.element_bytes
        n = 1 << (int(math.log2(max(4, elements))) // 2)
        return max(n, ctx.params.nodes)

    def node_stream(self, node: int, ctx: WorkloadContext) -> Iterator[Event]:
        params = ctx.params
        a = ctx.segment("matrix_a")
        b = ctx.segment("matrix_b")
        n = self._dimension(ctx)
        rows_per_node = max(1, n // params.nodes)
        row_bytes = n * self.element_bytes
        # Keep the touched area inside the segment even if n*n elements
        # overshoot the allocation (dimension rounding).
        usable_rows = min(n, a.size // row_bytes)
        rows_per_node = min(rows_per_node, max(1, usable_rows // params.nodes))
        my_first_row = node * rows_per_node
        step = max(1, int(1 / self.intensity)) if self.intensity < 1 else 1
        barrier_id = 0

        for stage in range(self.stages):
            src, dst = (a, b) if stage % 2 == 0 else (b, a)
            # Local 1-D FFTs over the node's own rows: sequential
            # read-modify-write with excellent locality.
            for row in range(my_first_row, my_first_row + rows_per_node):
                base = row * row_bytes
                for col in range(0, n, step):
                    addr = src.address(base + col * self.element_bytes)
                    yield READ, addr
                    if col % 2 == 0:
                        yield WRITE, addr
            yield self.barrier(barrier_id)
            barrier_id += 1

            # Transpose: this node gathers column slice `node` of every
            # row (remote reads; the slices of different nodes share
            # pages) and writes the transposed elements into its own
            # band (local writes).  Bands are visited starting at the
            # next neighbour to avoid an all-on-one hotspot.
            eb = self.element_bytes
            col_slice = rows_per_node  # columns per node == rows per node
            for band in range(params.nodes):
                src_band = (node + 1 + band) % params.nodes
                for row in range(
                    src_band * rows_per_node, (src_band + 1) * rows_per_node
                ):
                    read_base = row * row_bytes + node * col_slice * eb
                    for j in range(0, col_slice, step):
                        yield READ, src.address(read_base + j * eb)
                        dst_row = node * rows_per_node + j
                        yield WRITE, dst.address(dst_row * row_bytes + row * eb)
            yield self.barrier(barrier_id)
            barrier_id += 1
