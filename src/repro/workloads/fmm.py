"""FMM-like workload (paper Table 1: 16384 particles, 29 MB shared).

The fast multipole method walks a shared spatial tree (read-mostly,
strongly skewed toward the upper levels) and updates the node's own
particles.  Characteristic behaviour in the paper: the byte-level
working set is cache-friendly, but the tree walk hops across *many
pages*, so the tiny L0 TLB thrashes while every deeper translation
point is quiet — FMM has the largest L0-TLB overhead in Table 4
(96.5 % of memory stall time) yet nearly zero misses from L3 down.

Structure per iteration: tree traversal (skewed reads over the tree
segment interleaved with cell-list reads) → own-particle update phase
(sequential read/write) → barrier.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.common.params import MachineParams
from repro.system.refs import READ, WRITE
from repro.workloads.base import Event, SegmentSpec, Workload, WorkloadContext


class FMMWorkload(Workload):
    """Skewed shared-tree traversal + owned particle updates."""

    name = "fmm"
    think_cycles = 8  # multipole math between accesses

    def __init__(
        self,
        tree_fraction: float = 0.12,
        particles_fraction: float = 0.08,
        iterations: int = 2,
        interactions_per_particle: int = 8,
        tree_descend: float = 0.75,
        intensity: float = 1.0,
    ) -> None:
        self.tree_fraction = tree_fraction
        self.particles_fraction = particles_fraction
        self.iterations = iterations
        self.interactions_per_particle = interactions_per_particle
        self.tree_descend = tree_descend
        self.intensity = intensity

    def segment_specs(self, params: MachineParams) -> List[SegmentSpec]:
        return [
            SegmentSpec("tree", self.scaled(params, self.tree_fraction)),
            SegmentSpec("particles", self.scaled(params, self.particles_fraction)),
        ]

    def particles_per_node(self, ctx: WorkloadContext) -> int:
        particle_bytes = 64
        total = ctx.segment("particles").size // particle_bytes
        return max(8, int(total // ctx.params.nodes * self.intensity))

    def node_stream(self, node: int, ctx: WorkloadContext) -> Iterator[Event]:
        params = ctx.params
        tree = ctx.segment("tree")
        particles = ctx.segment("particles")
        rng = ctx.rng(node)
        particle_bytes = 64
        count = self.particles_per_node(ctx)
        partition = particles.size // params.nodes
        my_base = node * partition
        barrier_id = 0

        for _ in range(self.iterations):
            # Tree traversal: for each particle, read a skewed chain of
            # tree cells (upper levels hot, leaves cold and page-sparse).
            offset = my_base
            tree_reads = self.tree_walk_accesses(
                tree,
                count * self.interactions_per_particle,
                rng,
                op=READ,
                granularity=64,
                descend=self.tree_descend,
                cluster_bytes=params.page_size,
            )
            for i, event in enumerate(tree_reads):
                yield event
                if i % self.interactions_per_particle == 0:
                    yield READ, particles.address(offset)
                    offset = my_base + (offset - my_base + particle_bytes) % partition
            yield self.barrier(barrier_id)
            barrier_id += 1

            # Update phase: sequential read-modify-write of own
            # particles (good locality, some SLC writebacks later).
            offset = my_base
            for _ in range(count):
                addr = particles.address(offset)
                yield READ, addr
                yield WRITE, addr
                offset = my_base + (offset - my_base + particle_bytes) % partition
            yield self.barrier(barrier_id)
            barrier_id += 1
