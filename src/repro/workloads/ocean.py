"""OCEAN-like workload (paper Table 1: 258x258 grid, 15.5 MB shared).

SPLASH-2 Ocean partitions a 2-D grid into contiguous row bands, one per
node, and repeatedly applies near-neighbour stencils: every sweep reads
the node's own band plus one boundary row from each neighbour band and
writes the own band.  Behaviour the paper highlights: large sequential
working set (many writebacks with poor temporal locality — with
writebacks, OCEAN's L2-TLB misses exceed L0's at some sizes), and
nearest-neighbour sharing only (boundary rows), so remote traffic and
deep-level translations are modest.

Structure: ``sweeps`` stencil passes separated by barriers, alternating
between two grids (red/black style).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.common.params import MachineParams
from repro.system.refs import READ, WRITE
from repro.workloads.base import Event, SegmentSpec, Workload, WorkloadContext


class OceanWorkload(Workload):
    """Banded near-neighbour grid relaxation."""

    name = "ocean"
    think_cycles = 5

    def __init__(
        self,
        element_bytes: int = 8,
        grid_fraction: float = 0.12,
        sweeps: int = 4,
        intensity: float = 1.0,
    ) -> None:
        self.element_bytes = element_bytes
        self.grid_fraction = grid_fraction
        self.sweeps = sweeps
        self.intensity = intensity

    def segment_specs(self, params: MachineParams) -> List[SegmentSpec]:
        grid_bytes = self.scaled(params, self.grid_fraction)
        return [
            SegmentSpec("grid_a", grid_bytes),
            SegmentSpec("grid_b", grid_bytes),
        ]

    def _geometry(self, ctx: WorkloadContext):
        """Rows/columns such that every node owns a whole band."""
        grid = ctx.segment("grid_a")
        elements = grid.size // self.element_bytes
        # Near-square grid with row count divisible by the node count.
        cols = 1
        while cols * cols < elements:
            cols *= 2
        rows = max(ctx.params.nodes, elements // cols)
        rows -= rows % ctx.params.nodes
        return rows, cols

    def node_stream(self, node: int, ctx: WorkloadContext) -> Iterator[Event]:
        params = ctx.params
        grids = (ctx.segment("grid_a"), ctx.segment("grid_b"))
        rows, cols = self._geometry(ctx)
        band = rows // params.nodes
        row_bytes = cols * self.element_bytes
        my_first = node * band
        step = max(1, int(1 / self.intensity)) if self.intensity < 1 else 1
        barrier_id = 0

        for sweep in range(self.sweeps):
            src = grids[sweep % 2]
            dst = grids[(sweep + 1) % 2]
            for row in range(my_first, my_first + band):
                row_base = row * row_bytes
                up_base = max(0, (row - 1)) * row_bytes
                down_base = min(rows - 1, row + 1) * row_bytes
                for col in range(0, cols, step):
                    col_off = col * self.element_bytes
                    yield READ, src.address(row_base + col_off)
                    # North/south neighbours: at band edges these rows
                    # belong to the adjacent node — the shared boundary.
                    if col % 4 == 0:
                        yield READ, src.address(up_base + col_off)
                        yield READ, src.address(down_base + col_off)
                    yield WRITE, dst.address(row_base + col_off)
            yield self.barrier(barrier_id)
            barrier_id += 1
