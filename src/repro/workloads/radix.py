"""RADIX-like workload (paper Table 1: ``-n524288 -r2048 -m1048576``).

The SPLASH-2 radix sort alternates local histogramming over the node's
own keys with a *permutation* phase in which every key is written to a
rank-determined position of a large output array shared and distributed
over all nodes.  Two properties drive the paper's RADIX results:

* the permutation writes are essentially random over the whole output
  array — they are not filtered by caches or attraction memory, so the
  TLB-miss curves of every per-node scheme stay high ("no clear
  significant working set… until the size reaches 512");
* each output page is written by *many* nodes during one pass, so the
  home DLB loads its translation once for everyone (sharing +
  prefetching effects): "the number of DLB misses in RADIX is
  consistently less than the number of TLB misses in an L3-TLB system
  with 32 times more TLB".

The generator reproduces exactly that structure: sequential reads of the
node's key partition, random writes into the shared output array,
histogram updates, with barriers between passes.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.common.params import MachineParams
from repro.system.refs import READ, WRITE
from repro.workloads.base import Event, SegmentSpec, Workload, WorkloadContext


class RadixWorkload(Workload):
    """Permutation-heavy integer sort."""

    name = "radix"
    think_cycles = 3  # integer code, very memory-intensive

    def __init__(
        self,
        key_bytes: int = 16,
        array_fraction: float = 0.15,
        passes: int = 2,
        radix_buckets: int = 2048,
        intensity: float = 1.0,
    ) -> None:
        if passes <= 0:
            raise ValueError("passes must be positive")
        if radix_buckets <= 0:
            raise ValueError("radix_buckets must be positive")
        self.key_bytes = key_bytes
        self.array_fraction = array_fraction
        self.passes = passes
        self.radix_buckets = radix_buckets
        self.intensity = intensity

    def segment_specs(self, params: MachineParams) -> List[SegmentSpec]:
        array_bytes = self.scaled(params, self.array_fraction)
        histogram_bytes = max(params.page_size, array_bytes // 64)
        return [
            SegmentSpec("keys_in", array_bytes),
            SegmentSpec("keys_out", array_bytes),
            SegmentSpec("histogram", histogram_bytes),
        ]

    def keys_per_node(self, ctx: WorkloadContext) -> int:
        total_keys = ctx.segment("keys_in").size // self.key_bytes
        per_node = total_keys // ctx.params.nodes
        return max(16, int(per_node * self.intensity))

    def node_stream(self, node: int, ctx: WorkloadContext) -> Iterator[Event]:
        params = ctx.params
        keys_in = ctx.segment("keys_in")
        keys_out = ctx.segment("keys_out")
        histogram = ctx.segment("histogram")
        rng = ctx.rng(node)
        keys = self.keys_per_node(ctx)
        partition = keys_in.size // params.nodes
        my_base = node * partition
        hist_slots = histogram.size // 8
        barrier_id = 0

        # Rank-based permutation layout (as in SPLASH-2 radix): the
        # output array is divided into `radix_buckets` dense bucket
        # regions; inside a bucket, each node owns an adjacent
        # sub-region (its prefix-summed rank range).  Sub-regions of
        # different nodes share pages, which is precisely what feeds the
        # DLB's sharing/prefetching effects.
        total_slots = keys_out.size // self.key_bytes
        buckets = min(self.radix_buckets, max(1, total_slots // params.nodes))
        bucket_slots = total_slots // buckets
        sub_slots = max(1, bucket_slots // params.nodes)

        for _ in range(self.passes):
            # Phase 1: local histogram of own keys (reads own partition,
            # writes shared histogram counters).
            offset = my_base
            for i in range(keys):
                yield READ, keys_in.address(offset)
                offset = my_base + (offset - my_base + self.key_bytes) % partition
                if i % 2 == 0:
                    yield WRITE, histogram.address(rng.randrange(hist_slots) * 8)
            yield self.barrier(barrier_id)
            barrier_id += 1

            # Phase 2: permutation.  After the local sort, every node
            # writes its keys bucket by bucket in the same global
            # order, each into its own (prefix-summed) sub-region.  From
            # one node's view each output page is visited once per pass
            # and never reused — so per-node TLB misses stay flat until
            # the TLB holds the whole array ("no clear significant
            # working set… until the size reaches 512").  From a home
            # node's view, all nodes write around the same sweep front,
            # so the DLB's active set is a handful of pages: the paper's
            # sharing + prefetching effects.
            offset = my_base
            base_quota, remainder = divmod(keys, buckets)
            for bucket in range(buckets):
                quota = base_quota + (1 if bucket < remainder else 0)
                for rank in range(quota):
                    yield READ, keys_in.address(offset)
                    offset = my_base + (offset - my_base + self.key_bytes) % partition
                    slot = (
                        bucket * bucket_slots
                        + node * sub_slots
                        + rank % sub_slots
                    )
                    yield WRITE, keys_out.address((slot % total_slots) * self.key_bytes)
            yield self.barrier(barrier_id)
            barrier_id += 1
