"""RAYTRACE-like workload (paper Table 1: ``car``, 34.9 MB shared).

SPLASH-2 Raytrace reads a large shared scene database (BSP tree +
primitives, read-mostly with strong skew), distributes work through a
lock-protected task queue, and keeps a per-process *ray-tree stack*
(``raystruct``) that is padded to avoid false sharing.

The padding is the paper's most interesting case study: in the original
program the stack elements are **padded to multiples of 32 KB** in
virtual space, so in V-COMA every node's stack elements land in the
*same* global sets, causing uneven conflicts, extra injections, and
inflated synchronization time (Figure 10's V-COMA bar).  Re-aligning
the padding to one page — the paper's ``DLB/8/V2`` — spreads the stacks
over consecutive page colors and removes the effect.  ``stack_pad_pages``
reproduces both layouts: ``None`` (default) pads elements to the
attraction-memory way size (the scaled equivalent of the pathological
32 KB padding), an integer pads to that many pages (1 = the fixed V2
layout).  Each element is modelled as its own page-sized segment at the
padding alignment — under demand paging the gap pages are never touched
and never allocated, so only the elements occupy attraction memory.

Structure per node: loop { acquire task (lock), then for each ray:
skewed scene reads + push/pop writes on the own stack }, with a final
barrier.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.common.params import MachineParams
from repro.system.refs import READ, WRITE
from repro.vm.segments import SegmentKind
from repro.workloads.base import Event, SegmentSpec, Workload, WorkloadContext


class RaytraceWorkload(Workload):
    """Read-mostly scene + lock task queue + aligned private stacks."""

    name = "raytrace"
    think_cycles = 7

    def __init__(
        self,
        scene_fraction: float = 0.15,
        stack_depth: int = None,
        stack_groups: int = None,
        stack_pad_pages: int = None,  # None = pathological V1 padding
        tasks_per_node: int = 24,
        rays_per_task: int = 12,
        reads_per_ray: int = 10,
        scene_skew: float = 2.5,
        intensity: float = 1.0,
    ) -> None:
        if stack_depth is not None and stack_depth < 1:
            raise ValueError("stack_depth must be >= 1")
        if stack_groups is not None and stack_groups < 1:
            raise ValueError("stack_groups must be >= 1")
        if stack_pad_pages is not None and stack_pad_pages < 1:
            raise ValueError("stack_pad_pages must be >= 1")
        self.scene_fraction = scene_fraction
        self.stack_depth = stack_depth
        self.stack_groups = stack_groups
        self.stack_pad_pages = stack_pad_pages
        self.tasks_per_node = tasks_per_node
        self.rays_per_task = rays_per_task
        self.reads_per_ray = reads_per_ray
        self.scene_skew = scene_skew
        self.intensity = intensity

    @classmethod
    def v2(cls, **overrides) -> "RaytraceWorkload":
        """The paper's DLB/8/V2 layout: stack elements padded to one
        page, so consecutive elements take consecutive page colors."""
        overrides.setdefault("stack_pad_pages", 1)
        return cls(**overrides)

    def effective_stack_depth(self, params: MachineParams) -> int:
        """Stack elements per node.

        When ``stack_depth`` is None (default), pick the deepest stack
        that keeps the colliding global set's pressure safely below 1
        under the V1 padding: the V1 experiment needs conflicts, not a
        wedged machine.  All nodes' elements and the scene pages of that
        color compete for ``P*K`` slots; a couple of slots per global
        set are reserved for replication headroom.
        """
        if self.stack_depth is not None:
            return self.stack_depth
        capacity = params.nodes * params.am_assoc
        colors = params.global_page_sets
        scene_pages = -(-self.scaled(params, self.scene_fraction) // params.page_size)
        scene_per_color = -(-scene_pages // colors)
        margin = max(2, params.nodes // 4)
        free = capacity - scene_per_color - 1 - margin
        return max(1, min(params.am_assoc - 1, free // params.nodes))

    def effective_stack_groups(self, params: MachineParams) -> int:
        """Independent padded element groups per stack.

        In the original raystruct the 32 KB padding stride pollutes one
        page color per 32 KB of the 1 MB attraction-memory way — an
        eighth of all colors.  The default keeps that *fraction* of
        polluted global sets on scaled machines: one group per eight
        colors (at least one).
        """
        if self.stack_groups is not None:
            return self.stack_groups
        return max(1, params.global_page_sets // 8)

    def _pad_stride(self, params: MachineParams) -> int:
        if self.stack_pad_pages is None:
            # V1: the paper's pathological padding.  Padding every stack
            # element to the attraction-memory way size puts *all*
            # elements of *all* nodes' stacks into the same global page
            # sets — the scaled equivalent of raystruct's 32 KB-multiple
            # padding colliding with the AM set indexing.
            return params.am_way_size
        return self.stack_pad_pages * params.page_size

    def segment_specs(self, params: MachineParams) -> List[SegmentSpec]:
        specs = [
            SegmentSpec("scene", self.scaled(params, self.scene_fraction)),
            SegmentSpec("task_queue", params.page_size),
        ]
        stride = self._pad_stride(params)
        # One page-sized segment per stack element, each aligned to the
        # padding stride.  Under demand paging the padding gap pages are
        # never touched, hence never allocated — only the elements
        # themselves occupy attraction memory.  With the V1 padding all
        # elements of one group land in the same global page set; groups
        # are separated by one page so each group pollutes its own set
        # (as the 32 KB stride does across the paper's 1 MB way).
        groups = self.effective_stack_groups(params)
        depth = self.effective_stack_depth(params)
        group_offset = params.page_size if self.stack_pad_pages is None else 0
        for node in range(params.nodes):
            for group in range(groups):
                for element in range(depth):
                    specs.append(
                        SegmentSpec(
                            f"stack{node}_g{group}_e{element}",
                            params.page_size,
                            kind=SegmentKind.PRIVATE,
                            owner=node,
                            alignment=stride,
                            offset=group * group_offset,
                        )
                    )
        return specs

    def node_stream(self, node: int, ctx: WorkloadContext) -> Iterator[Event]:
        scene = ctx.segment("scene")
        queue = ctx.segment("task_queue")
        depth_limit = self.effective_stack_depth(ctx.params)
        groups = self.effective_stack_groups(ctx.params)
        element_groups = [
            [ctx.segment(f"stack{node}_g{g}_e{i}") for i in range(depth_limit)]
            for g in range(groups)
        ]
        rng = ctx.rng(node)
        lock_word = queue.base  # one global task-queue lock
        tasks = max(1, int(self.tasks_per_node * self.intensity))
        barrier_id = 0

        for task in range(tasks):
            elements = element_groups[task % groups]
            # Grab a task under the queue lock; read/update the queue.
            yield self.lock(lock_word)
            yield READ, queue.address(64)
            yield WRITE, queue.address(64)
            yield self.unlock(lock_word)

            depth = 0
            for _ in range(self.rays_per_task):
                # Descend the scene structures (hot upper levels).
                for event in self.zipf_accesses(
                    scene, self.reads_per_ray, rng, op=READ,
                    granularity=64, skew=self.scene_skew,
                    cluster_bytes=ctx.params.page_size,
                ):
                    yield event
                # Push/pop the ray tree on the private padded stack:
                # each element is its own padded page (raystruct's
                # padding), with a few word touches per element.
                depth = (depth + 1) % depth_limit
                element = elements[depth]
                yield WRITE, element.address(0)
                yield READ, element.address(32)
                yield WRITE, element.address(64)
                if depth > 0 and rng.random() < 0.5:
                    depth -= 1
                    yield WRITE, elements[depth].address(0)
        yield self.barrier(barrier_id)
