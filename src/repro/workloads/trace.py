"""Trace recording and replay.

Downstream users often have *real* address traces (from Pin, DynamoRIO,
QEMU plugins, …) rather than generators.  This module gives them a
round-trip path:

* :func:`record_trace` runs any workload's generators and writes one
  compact text file;
* :class:`TraceWorkload` replays such a file as a first-class workload
  (usable with every machine, scheme, and experiment runner).

Format (line-oriented, gzip-friendly, diff-able)::

    #repro-trace v1 nodes=8 think=4
    #segment data 65536 shared -
    N0 R 0x100000000
    N0 W 0x100000040
    N0 B 0
    N1 L 0x100004000
    N1 U 0x100004000

``R``/``W`` are loads/stores with byte addresses, ``B`` barriers with
ids, ``L``/``U`` lock/unlock with lock-word addresses.  Addresses are
absolute; on replay they are rebased so the smallest referenced page
lands at the start of the replay segment (virtual layout is preserved
relative to that base, keeping page-color relationships intact).
"""

from __future__ import annotations

import io
from typing import Dict, Iterator, List, Optional, TextIO, Tuple

from repro.common.errors import ReproError
from repro.common.params import MachineParams
from repro.system.refs import BARRIER, LOCK, READ, UNLOCK, WRITE
from repro.vm.segments import SegmentKind
from repro.workloads.base import Event, SegmentSpec, Workload, WorkloadContext

_OP_TO_CODE = {READ: "R", WRITE: "W", BARRIER: "B", LOCK: "L", UNLOCK: "U"}
_CODE_TO_OP = {v: k for k, v in _OP_TO_CODE.items()}

HEADER_PREFIX = "#repro-trace v1"


def record_trace(
    workload: Workload,
    ctx: WorkloadContext,
    out: TextIO,
    max_refs_per_node: Optional[int] = None,
) -> int:
    """Write every node's stream to ``out``; returns events written.

    Events are grouped per node (the simulator interleaves on replay
    exactly as it does for generators, so ordering across nodes is not
    part of the trace).
    """
    nodes = ctx.params.nodes
    out.write(f"{HEADER_PREFIX} nodes={nodes} think={workload.think_cycles}\n")
    for segment in ctx.segments.values():
        owner = segment.owner if segment.owner is not None else "-"
        out.write(
            f"#segment {segment.name} {segment.size} {segment.kind.value} {owner}\n"
        )
    written = 0
    for node in range(nodes):
        count = 0
        for op, value in workload.node_stream(node, ctx):
            out.write(f"N{node} {_OP_TO_CODE[op]} {value:#x}\n")
            written += 1
            count += 1
            if max_refs_per_node is not None and count >= max_refs_per_node:
                break
    return written


def _parse(handle: TextIO) -> Tuple[int, int, List[List[Event]]]:
    header = handle.readline().rstrip("\n")
    if not header.startswith(HEADER_PREFIX):
        raise ReproError(f"not a repro trace (header {header!r})")
    fields = dict(
        part.split("=", 1) for part in header[len(HEADER_PREFIX):].split() if "=" in part
    )
    nodes = int(fields.get("nodes", "0"))
    think = int(fields.get("think", "4"))
    if nodes <= 0:
        raise ReproError("trace header missing a positive node count")
    streams: List[List[Event]] = [[] for _ in range(nodes)]
    for lineno, line in enumerate(handle, start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            node_tok, code, value_tok = line.split()
            node = int(node_tok[1:])
            op = _CODE_TO_OP[code]
            value = int(value_tok, 0)
        except (ValueError, KeyError) as exc:
            raise ReproError(f"trace line {lineno}: cannot parse {line!r}") from exc
        if not 0 <= node < nodes:
            raise ReproError(f"trace line {lineno}: node {node} out of range")
        streams[node].append((op, value))
    return nodes, think, streams


class TraceWorkload(Workload):
    """Replay a recorded trace as a workload.

    The replay segment spans all referenced pages (plus barriers' id
    space, which needs no memory).  Addresses are rebased onto the
    allocated segment preserving page offsets *and* page-number
    low bits — home-node and page-color relationships survive rebasing
    because the segment base is aligned to the whole color period.
    """

    name = "trace"

    def __init__(self, text: str) -> None:
        nodes, think, streams = _parse(io.StringIO(text))
        self.trace_nodes = nodes
        self.think_cycles = think
        self._streams = streams
        addresses = [
            value
            for stream in streams
            for op, value in stream
            if op in (READ, WRITE, LOCK, UNLOCK)
        ]
        if not addresses:
            raise ReproError("trace contains no memory references")
        self._low = min(addresses)
        self._high = max(addresses)

    @classmethod
    def from_file(cls, path: str) -> "TraceWorkload":
        with open(path) as handle:
            return cls(handle.read())

    # ------------------------------------------------------------------
    def segment_specs(self, params: MachineParams) -> List[SegmentSpec]:
        if params.nodes < self.trace_nodes:
            raise ReproError(
                f"trace was recorded on {self.trace_nodes} nodes; machine has {params.nodes}"
            )
        page = params.page_size
        base_page = self._low // page
        last_page = self._high // page
        span = (last_page - base_page + 1) * page
        # Aligning to the color period keeps page colors as recorded.
        return [
            SegmentSpec(
                "trace",
                span,
                kind=SegmentKind.SHARED,
                alignment=params.am_way_size,
            )
        ]

    def node_stream(self, node: int, ctx: WorkloadContext) -> Iterator[Event]:
        if node >= self.trace_nodes:
            return iter(())
        segment = ctx.segment("trace")
        page = ctx.params.page_size
        rebase = segment.base - (self._low // page) * page
        return self._rebased(self._streams[node], rebase)

    @staticmethod
    def _rebased(stream: List[Event], rebase: int) -> Iterator[Event]:
        for op, value in stream:
            if op == BARRIER:
                yield op, value
            else:
                yield op, value + rebase
