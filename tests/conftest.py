"""Shared fixtures for the test suite.

Configurations are aggressively scaled down (tiny memories, 256-byte
pages) so individual tests run in milliseconds while keeping the
paper's geometry: direct-mapped write-through FLC, 4-way write-back
SLC, 4-way attraction memory, power-of-two everything.
"""

import pytest

from repro import MachineParams, Scheme, make_workload
from repro.common.address import AddressLayout


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden metrics snapshots in tests/golden/ "
             "instead of comparing against them",
    )


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")


@pytest.fixture(autouse=True)
def isolated_result_cache(tmp_path, monkeypatch):
    """Point the persistent simulation cache at a per-test directory.

    Keeps the suite from reading stale entries out of (or writing into)
    the developer's real ~/.cache/repro."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def tiny_params():
    """2 nodes, 16 KB attraction memories — protocol-level tests."""
    return MachineParams.scaled_down(factor=256, nodes=2, page_size=256)


@pytest.fixture
def small_params():
    """4 nodes, 64 KB attraction memories — system-level tests."""
    return MachineParams.scaled_down(factor=64, nodes=4, page_size=256)


@pytest.fixture
def small_layout(small_params):
    return AddressLayout.from_params(small_params)


@pytest.fixture
def tiny_layout(tiny_params):
    return AddressLayout.from_params(tiny_params)


@pytest.fixture(params=["radix", "fft", "fmm", "ocean", "raytrace", "barnes"])
def workload_name(request):
    return request.param


def make_light_workload(name: str):
    """A low-intensity instance of a registered workload for fast runs."""
    return make_workload(name, intensity=0.2)
